//! The unification contract of the shared stage pipeline: the stand-alone
//! engine, the synchronous DAG executor and the threaded DAG executor are
//! all thin adapters over the same `TickStage` implementation, so on one
//! replay they must produce **identical** snapshot sequences — and the
//! sharded pair registry must make shard count and shard-parallel close
//! invisible in every ranking.

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 0x57A6E,
        days: 45,
        docs_per_day: 80,
        n_categories: 12,
        n_descriptors: 90,
        n_entities: 60,
        n_terms: 250,
        historic_events: 4,
    })
}

fn config(shards: usize, parallel: bool) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(25)
        .min_seed_count(3)
        .top_k(10)
        .shards(shards)
        .parallel_close(parallel)
        .build()
        .unwrap()
}

/// One snapshot sequence via the stand-alone engine's replay driver.
fn engine_snapshots(config: EnBlogueConfig, docs: &[Document]) -> Vec<RankingSnapshot> {
    EnBlogueEngine::new(config).run_replay(docs)
}

/// One snapshot sequence via the DAG (`PipelineBuilder` → `EngineOp` sink).
fn dag_snapshots(
    config: EnBlogueConfig,
    archive: &NytArchive,
    threaded: bool,
) -> Vec<RankingSnapshot> {
    let builder =
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
            .with_engine("parity", config);
    let (_, handles) = if threaded { builder.run_threaded(256) } else { builder.run() }.unwrap();
    let out = handles[0].lock().unwrap().clone();
    out
}

#[test]
fn engine_and_dag_agree_on_an_nyt_replay() {
    let archive = archive();
    let from_engine = engine_snapshots(config(1, false), &archive.docs);
    let from_sync_dag = dag_snapshots(config(1, false), &archive, false);
    let from_threaded_dag = dag_snapshots(config(1, false), &archive, true);

    assert!(!from_engine.is_empty(), "the replay must close ticks");
    assert!(
        from_engine.iter().any(|s| !s.ranked.is_empty()),
        "the planted events must produce rankings"
    );
    assert_eq!(from_engine, from_sync_dag, "engine vs synchronous DAG");
    assert_eq!(from_engine, from_threaded_dag, "engine vs threaded DAG");
}

#[test]
fn shard_count_is_invisible_in_rankings() {
    let archive = archive();
    let baseline = engine_snapshots(config(1, false), &archive.docs);
    for shards in [4usize, 16] {
        let serial = engine_snapshots(config(shards, false), &archive.docs);
        assert_eq!(serial, baseline, "{shards} shards, serial close");
        let parallel = engine_snapshots(config(shards, true), &archive.docs);
        assert_eq!(parallel, baseline, "{shards} shards, parallel close");
    }
}

#[test]
fn sharded_dag_matches_unsharded_engine() {
    // The full cross product of the two axes: sharded state under the DAG
    // executors against the classic single-map engine.
    let archive = archive();
    let baseline = engine_snapshots(config(1, false), &archive.docs);
    assert_eq!(dag_snapshots(config(16, true), &archive, false), baseline, "sync DAG, 16 shards");
    assert_eq!(dag_snapshots(config(4, true), &archive, true), baseline, "threaded DAG, 4 shards");
}

#[test]
fn ingestion_mode_is_invisible_in_rankings() {
    // The ingestion-parity contract of `enblogue-ingest`: for one NYT
    // replay, rankings are byte-identical across (a) sequential
    // per-document feeding, (b) `Event::DocBatch` tick slices through the
    // DAG, and (c) the shard-parallel `IngestPipeline`, for several
    // (batch size × worker count) combinations and shard counts.
    let archive = archive();

    // (a) Sequential per-document feeding — the semantic reference.
    let baseline = engine_snapshots(config(1, false), &archive.docs);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().any(|s| !s.ranked.is_empty()));

    // (b) DocBatch DAG feeding: the replay source emits whole tick
    // slices, `EngineOp` takes the partitioned batch fast path.
    assert_eq!(dag_snapshots(config(4, true), &archive, false), baseline, "DocBatch DAG");

    // (c) The parallel ingestion pipeline across the knob grid.
    for (batch_size, workers) in [(1usize, 1usize), (64, 2), (64, 8), (512, 4), (97, 3)] {
        let mut engine = EnBlogueEngine::new(config(4, false));
        let ingest = IngestConfig { batch_size, queue_depth: 4, workers };
        let (snapshots, stats) = engine.run_replay_ingest(&archive.docs, &ingest);
        assert_eq!(snapshots, baseline, "ingest batch={batch_size} workers={workers}");
        assert_eq!(stats.docs, archive.docs.len() as u64);
        assert_eq!(stats.workers, workers);
    }

    // Shard-parallel application on top of multi-worker partitioning.
    let mut engine = EnBlogueEngine::new(config(16, true));
    let ingest = IngestConfig { batch_size: 128, queue_depth: 8, workers: 4 };
    let (snapshots, _) = engine.run_replay_ingest(&archive.docs, &ingest);
    assert_eq!(snapshots, baseline, "16 shards, parallel close, 4 ingest workers");
}

#[test]
fn rebalancing_is_invisible_in_rankings() {
    // The rebalancing contract: dynamic shard count + hot-slot migration
    // are pure execution knobs. One replay, rankings byte-identical with
    // rebalancing off (the static uniform table) and with an aggressive
    // policy that rebalances every close — across shard pools, close
    // modes, and ingest worker grids.
    let archive = archive();
    let baseline = engine_snapshots(config(1, false), &archive.docs);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().any(|s| !s.ranked.is_empty()));

    let aggressive = RebalanceConfig {
        enabled: true,
        slots_per_shard: 8,
        target_pairs_per_shard: 64,
        min_skew: 1.01,
        cap_pressure: 0.5,
        min_tracked_pairs: 1,
        cooldown_ticks: 0,
        min_active_shards: 1,
    };
    let rebalanced = |shards: usize, parallel: bool| {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(10)
            .shards(shards)
            .parallel_close(parallel)
            .rebalance(aggressive)
            .build()
            .unwrap()
    };

    for (shards, parallel) in [(4usize, false), (4, true), (16, false), (16, true)] {
        let mut engine = EnBlogueEngine::new(rebalanced(shards, parallel));
        let snapshots = engine.run_replay(&archive.docs);
        assert_eq!(snapshots, baseline, "rebalancing on, shards={shards} parallel={parallel}");
        let metrics = engine.pipeline().metrics();
        assert!(
            metrics.rebalances > 0,
            "the aggressive policy must actually migrate (shards={shards})"
        );
        assert!(metrics.routing_epoch > 0);
    }

    // Rebalancing under the parallel ingestion pipeline: partition
    // workers snapshot the routing table per batch, stale batches are
    // re-partitioned — rankings still byte-identical.
    for (batch_size, workers) in [(64usize, 2usize), (256, 4)] {
        let mut engine = EnBlogueEngine::new(rebalanced(8, true));
        let ingest = IngestConfig { batch_size, queue_depth: 4, workers };
        let (snapshots, stats) = engine.run_replay_ingest(&archive.docs, &ingest);
        assert_eq!(snapshots, baseline, "ingest batch={batch_size} workers={workers}");
        assert_eq!(stats.docs, archive.docs.len() as u64);
        assert!(engine.pipeline().metrics().rebalances > 0);
    }
}

#[test]
fn scoring_mode_is_invisible_in_rankings() {
    // The batch-kernel contract: the lane-tiled batched close (the
    // default) and the scalar reference walk are the same computation
    // down to the bit pattern, so on one replay their snapshot sequences
    // are byte-identical — across shard pools, close modes, an
    // aggressive rebalancing policy, and the parallel-ingestion grid.
    let archive = archive();

    let with_scoring = |shards: usize, parallel: bool, scoring: ScoringMode| {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(10)
            .shards(shards)
            .parallel_close(parallel)
            .scoring_mode(scoring)
            .build()
            .unwrap()
    };

    // The scalar reference is the semantic baseline; `config()` leaves
    // the knob at its default, which must be the batched path.
    assert_eq!(config(1, false).scoring_mode, ScoringMode::Batched, "batched is the default");
    let baseline = engine_snapshots(with_scoring(1, false, ScoringMode::Scalar), &archive.docs);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().any(|s| !s.ranked.is_empty()));

    for scoring in [ScoringMode::Scalar, ScoringMode::Batched] {
        for (shards, parallel) in [(1usize, false), (4, false), (4, true), (16, true)] {
            let snapshots =
                engine_snapshots(with_scoring(shards, parallel, scoring), &archive.docs);
            assert_eq!(
                snapshots, baseline,
                "scoring={scoring:?} shards={shards} parallel={parallel}"
            );
        }
    }

    // Batched scoring composed with hot-slot rebalancing: tiles regroup
    // as pairs migrate between stores, rankings untouched.
    let aggressive = RebalanceConfig {
        enabled: true,
        slots_per_shard: 8,
        target_pairs_per_shard: 64,
        min_skew: 1.01,
        cap_pressure: 0.5,
        min_tracked_pairs: 1,
        cooldown_ticks: 0,
        min_active_shards: 1,
    };
    let mut engine = EnBlogueEngine::new(
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(10)
            .shards(8)
            .parallel_close(true)
            .scoring_mode(ScoringMode::Batched)
            .rebalance(aggressive)
            .build()
            .unwrap(),
    );
    assert_eq!(engine.run_replay(&archive.docs), baseline, "batched + aggressive rebalancing");
    assert!(engine.pipeline().metrics().rebalances > 0, "the policy must actually migrate");

    // Batched scoring under the parallel ingestion pipeline.
    for (batch_size, workers) in [(64usize, 2usize), (256, 4)] {
        let mut engine = EnBlogueEngine::new(with_scoring(4, true, ScoringMode::Batched));
        let ingest = IngestConfig { batch_size, queue_depth: 4, workers };
        let (snapshots, stats) = engine.run_replay_ingest(&archive.docs, &ingest);
        assert_eq!(snapshots, baseline, "batched ingest batch={batch_size} workers={workers}");
        assert_eq!(stats.docs, archive.docs.len() as u64);
    }
}

#[test]
fn checkpoint_restore_tail_replay_is_invisible_in_rankings() {
    // The crash-recovery contract of `enblogue_core::snapshot`: on one
    // replay, (a) periodic checkpointing changes no ranking, and (b)
    // checkpoint at a tick + restore into a fresh engine + replay of the
    // tail produces byte-identical snapshot sequences to the
    // uninterrupted run — across shard pools, close modes, rebalance
    // policies, and the parallel-ingestion worker grid.
    use enblogue::core::snapshot::checkpoint_file_name;

    let archive = archive();
    let baseline = engine_snapshots(config(1, false), &archive.docs);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().any(|s| !s.ranked.is_empty()));

    // Checkpoints land at ticks 9/19/29/39 (every 10th close); resume
    // from tick 29 so the tail spans real work, rebalances included.
    let split = Tick(29);
    let split_at = baseline.iter().position(|s| s.tick == split).expect("tick 29 closes") + 1;
    let tail_from = archive
        .docs
        .iter()
        .position(|d| TickSpec::daily().tick_of(d.timestamp) > split)
        .expect("documents after the split");

    let aggressive = RebalanceConfig {
        enabled: true,
        slots_per_shard: 8,
        target_pairs_per_shard: 64,
        min_skew: 1.01,
        cap_pressure: 0.5,
        min_tracked_pairs: 1,
        cooldown_ticks: 0,
        min_active_shards: 1,
    };
    let build = |shards: usize, parallel: bool, rebalance: Option<RebalanceConfig>| {
        let mut builder = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(10)
            .shards(shards)
            .parallel_close(parallel);
        if let Some(rebalance) = rebalance {
            builder = builder.rebalance(rebalance);
        }
        builder
    };

    let grid = [
        ("1-serial-static", 1usize, false, None),
        ("4-parallel-rebalancing", 4, true, Some(aggressive)),
        ("16-serial-rebalancing", 16, false, Some(aggressive)),
        ("16-parallel-static", 16, true, None),
    ];
    for (name, shards, parallel, rebalance) in grid {
        let dir =
            std::env::temp_dir().join(format!("enblogue-parity-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // (a) The checkpointing run itself: rankings untouched.
        let checkpointing = build(shards, parallel, rebalance)
            .snapshot_every(10, dir.to_str().unwrap())
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(checkpointing);
        assert_eq!(engine.run_replay(&archive.docs), baseline, "{name}: checkpointing run");
        assert!(engine.metrics().snapshots_taken >= 4, "{name}: checkpoints written");
        assert_eq!(engine.metrics().snapshot_failures, 0, "{name}");

        // (b) Restore from the mid-stream checkpoint and replay the tail.
        // The resume config omits the snapshot section entirely — only
        // the knobs that shape state are fingerprinted.
        let resume_config = build(shards, parallel, rebalance).build().unwrap();
        let file = dir.join(checkpoint_file_name(split));
        let mut resumed = EnBlogueEngine::resume(resume_config.clone(), &file).unwrap();
        assert_eq!(resumed.metrics().restores, 1, "{name}");
        assert_eq!(resumed.metrics().ticks_closed, split_at as u64, "{name}: cursor restored");
        if rebalance.is_some() {
            assert!(
                resumed.metrics().routing_epoch > 0,
                "{name}: the routing epoch must survive the restore"
            );
        }
        let tail = resumed.run_replay(&archive.docs[tail_from..]);
        assert_eq!(tail, baseline[split_at..], "{name}: tail replay after restore");

        // (c) The same restore driven through the parallel ingestion
        // pipeline (partition workers + shard-parallel apply).
        for (batch_size, workers) in [(64usize, 2usize), (128, 4)] {
            let mut resumed = EnBlogueEngine::resume(resume_config.clone(), &file).unwrap();
            let ingest = IngestConfig { batch_size, queue_depth: 4, workers };
            let (tail, stats) = resumed.run_replay_ingest(&archive.docs[tail_from..], &ingest);
            assert_eq!(
                tail,
                baseline[split_at..],
                "{name}: ingest tail batch={batch_size} workers={workers}"
            );
            assert_eq!(stats.docs, (archive.docs.len() - tail_from) as u64);
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn telemetry_is_invisible_in_rankings() {
    // The observability contract: telemetry is a pure execution knob. One
    // replay, rankings byte-identical with the hub enabled (the default)
    // and fully disabled — including under sharding + parallel close,
    // where the per-shard close histograms record from fan-out workers.
    let archive = archive();
    let with_telemetry = |shards: usize, parallel: bool, enabled: bool| {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(10)
            .shards(shards)
            .parallel_close(parallel)
            .telemetry_enabled(enabled)
            .build()
            .unwrap()
    };

    assert!(config(1, false).telemetry.enabled, "telemetry is on by default");
    let baseline = engine_snapshots(with_telemetry(1, false, false), &archive.docs);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().any(|s| !s.ranked.is_empty()));

    for (shards, parallel) in [(1usize, false), (4, true), (16, true)] {
        for enabled in [false, true] {
            let mut engine = EnBlogueEngine::new(with_telemetry(shards, parallel, enabled));
            let snapshots = engine.run_replay(&archive.docs);
            assert_eq!(snapshots, baseline, "telemetry={enabled} shards={shards} par={parallel}");

            let telemetry = engine.telemetry();
            assert_eq!(telemetry.enabled(), enabled);
            let prom = telemetry.prometheus_text();
            if enabled {
                // The hub actually observed the run: tick spans, journal
                // events, and a well-formed Prometheus export.
                assert!(telemetry.journal().recorded() > 0, "tick closes journaled");
                let score = telemetry.registry().histogram("close.score.ns");
                assert_eq!(score.count(), baseline.len() as u64, "one score span per close");
                assert!(prom.contains("# TYPE enblogue_close_score_ns summary"));
                assert!(prom.contains("enblogue_stage_close_ns_count{stage=\"rank-emit\"}"));
            } else {
                assert!(prom.is_empty(), "a disabled hub exports nothing");
                assert_eq!(telemetry.journal().recorded(), 0);
            }
        }
    }

    // Timing views derive from the hub: populated when it is on, zero —
    // but never affecting metrics equality — when it is off.
    let mut on = EnBlogueEngine::new(with_telemetry(4, true, true));
    let mut off = EnBlogueEngine::new(with_telemetry(4, true, false));
    assert_eq!(on.run_replay(&archive.docs), off.run_replay(&archive.docs));
    assert!(on.metrics().timings.close_score_micros > 0 || on.metrics().ticks_closed == 0);
    assert_eq!(off.metrics().timings, enblogue::core::stages::EngineTimings::default());
    assert_eq!(on.metrics(), off.metrics(), "timings are excluded from metrics equality");
}

#[test]
fn batched_ingestion_matches_streamed_ingestion() {
    let archive = archive();
    let cfg = config(4, false);
    let spec = cfg.tick_spec;

    // Batched: hand each tick's slice to `process_docs`, then close —
    // including empty gap ticks, exactly like the streamed replay does,
    // so correlation histories stay tick-aligned in both runs.
    let mut engine = EnBlogueEngine::new(cfg.clone());
    let mut batched = Vec::new();
    let mut next_to_close = spec.tick_of(archive.docs[0].timestamp);
    let mut start = 0;
    while start < archive.docs.len() {
        let tick = spec.tick_of(archive.docs[start].timestamp);
        while next_to_close < tick {
            batched.push(engine.close_tick(next_to_close));
            next_to_close = next_to_close.next();
        }
        let end = archive.docs[start..]
            .iter()
            .position(|d| spec.tick_of(d.timestamp) > tick)
            .map_or(archive.docs.len(), |offset| start + offset);
        engine.process_docs(&archive.docs[start..end]);
        batched.push(engine.close_tick(tick));
        next_to_close = tick.next();
        start = end;
    }

    let streamed = engine_snapshots(cfg, &archive.docs);
    assert_eq!(batched, streamed);
}

/// The same NYT knobs with the event-time robustness layer switched on.
fn hardened_config(event: bool, guard: bool) -> EnBlogueConfig {
    let mut builder = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(25)
        .min_seed_count(3)
        .top_k(10)
        .shards(4)
        .parallel_close(false);
    if event {
        builder = builder.bounded_lateness(3);
    }
    if guard {
        // The archive is a single (anonymous) source, so the cap must sit
        // far above one source's full volume to be a pure pass-through.
        builder = builder.source_guard(SourceGuardConfig {
            enabled: true,
            dedup_window_ticks: 3,
            rate_limit_per_tick: 1e9,
            rate_burst: 0.0,
        });
    }
    builder.build().unwrap()
}

#[test]
fn event_time_layer_is_invisible_on_clean_input() {
    // The robustness layer's parity contract: on a sorted, duplicate-free,
    // within-cap stream, enabling the reorder buffer, the source guard, or
    // both changes nothing — rankings stay byte-identical, and no drop
    // counter moves.
    let archive = archive();
    let baseline = engine_snapshots(config(4, false), &archive.docs);
    for (event, guard) in [(true, false), (false, true), (true, true)] {
        let mut engine = EnBlogueEngine::new(hardened_config(event, guard));
        let snapshots = engine.run_replay(&archive.docs);
        assert_eq!(snapshots, baseline, "event={event} guard={guard} must be invisible");
        let m = engine.metrics();
        assert_eq!(m.docs_late_dropped, 0, "event={event} guard={guard}");
        assert_eq!(m.docs_buffer_overflow, 0, "event={event} guard={guard}");
        assert_eq!(m.docs_deduped, 0, "event={event} guard={guard}");
        assert_eq!(m.docs_rate_capped, 0, "event={event} guard={guard}");
        assert_eq!(m.docs_processed, archive.docs.len() as u64, "every document admitted");
    }
}

#[test]
fn event_time_batched_ingest_matches_serial_offering() {
    // With the full hardened stack on, the batched feeder (resequence +
    // shard-parallel `IngestPipeline`) and the per-arrival serial path
    // must still agree byte-for-byte — drops included.
    let archive = archive();
    let cfg = hardened_config(true, true);

    let mut serial = EnBlogueEngine::new(cfg.clone());
    let mut from_serial = Vec::new();
    for doc in &archive.docs {
        serial.offer_doc(doc, |s| from_serial.push(s));
    }
    serial.finish_stream(|s| from_serial.push(s));

    let mut batched = EnBlogueEngine::new(cfg);
    let ingest = IngestConfig { batch_size: 128, queue_depth: 4, workers: 2 };
    let (from_batched, _) = batched.run_replay_ingest(&archive.docs, &ingest);

    assert_eq!(from_batched, from_serial);
    assert_eq!(batched.metrics(), serial.metrics());
}
