//! The serving-tier parity contract: a published `TickView` answers the
//! unified `QueryView` API **byte-identically** to the engine's own
//! accessors for the same closed tick — across shard pools, close
//! modes, and rebalancing policies — and concurrent readers racing live
//! ingest never observe a torn or stale-epoch view.

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 0x57A6E,
        days: 45,
        docs_per_day: 80,
        n_categories: 12,
        n_descriptors: 90,
        n_entities: 60,
        n_terms: 250,
        historic_events: 4,
    })
}

fn config(shards: usize, parallel: bool, rebalance: Option<RebalanceConfig>) -> EnBlogueConfig {
    let mut builder = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(25)
        .min_seed_count(3)
        .top_k(10)
        .shards(shards)
        .parallel_close(parallel);
    if let Some(rebalance) = rebalance {
        builder = builder.rebalance(rebalance);
    }
    builder.build().unwrap()
}

fn aggressive_rebalance() -> RebalanceConfig {
    RebalanceConfig {
        enabled: true,
        slots_per_shard: 8,
        target_pairs_per_shard: 64,
        min_skew: 1.01,
        cap_pressure: 0.5,
        min_tracked_pairs: 1,
        cooldown_ticks: 0,
        min_active_shards: 1,
    }
}

/// Drives the replay tick by tick (gap ticks included, like
/// `run_replay`), invoking `after_close` with the engine after every
/// close so callers can compare live state against published views.
fn replay_with<F: FnMut(&EnBlogueEngine, Tick)>(
    engine: &mut EnBlogueEngine,
    docs: &[Document],
    mut after_close: F,
) {
    let spec = engine.config().tick_spec;
    let mut next_to_close = spec.tick_of(docs[0].timestamp);
    let mut start = 0;
    while start < docs.len() {
        let tick = spec.tick_of(docs[start].timestamp);
        while next_to_close < tick {
            engine.close_tick(next_to_close);
            after_close(engine, next_to_close);
            next_to_close = next_to_close.next();
        }
        let end = docs[start..]
            .iter()
            .position(|d| spec.tick_of(d.timestamp) > tick)
            .map_or(docs.len(), |offset| start + offset);
        engine.process_docs(&docs[start..end]);
        engine.close_tick(tick);
        after_close(engine, tick);
        next_to_close = tick.next();
        start = end;
    }
}

/// Every member tag of the latest ranking, plus the cross product of
/// those tags as probe pairs (covers ranked pairs, tracked-but-unranked
/// pairs, and never-tracked pairs alike).
fn probe_pairs(snapshot: &RankingSnapshot) -> Vec<TagPair> {
    let mut tags: Vec<TagId> =
        snapshot.ranked.iter().flat_map(|&(p, _)| [p.lo(), p.hi()]).collect();
    tags.sort_unstable();
    tags.dedup();
    let mut pairs = Vec::new();
    for (i, &a) in tags.iter().enumerate() {
        for &b in &tags[i + 1..] {
            pairs.push(TagPair::new(a, b));
        }
    }
    pairs
}

#[test]
fn full_detail_views_match_engine_accessors_across_the_grid() {
    let archive = archive();
    let profiles = [
        UserProfile::new("plain"),
        UserProfile::new("keyword").try_with_weighted_keyword("event", 2.0).unwrap(),
    ];
    let grid = [
        ("1-serial-static", 1usize, false, None),
        ("4-parallel-static", 4, true, None),
        ("4-serial-rebalancing", 4, false, Some(aggressive_rebalance())),
        ("16-parallel-rebalancing", 16, true, Some(aggressive_rebalance())),
    ];
    for (name, shards, parallel, rebalance) in grid {
        let mut engine = EnBlogueEngine::new(config(shards, parallel, rebalance));
        let handle = QueryHandle::attach(
            &mut engine,
            archive.interner.clone(),
            ServeConfig::default().with_detail(PublishDetail::Full),
        );
        let mut closes = 0u64;
        replay_with(&mut engine, &archive.docs, |engine, _tick| {
            closes += 1;
            assert_eq!(handle.epoch(), closes, "{name}: one publish per close");
            let view = handle.view().expect("published after first close");
            assert_eq!(view.detail(), PublishDetail::Full);

            // The five re-homed accessors, engine vs published view.
            assert_eq!(
                view.ranking().as_ref(),
                engine.pipeline().latest_snapshot(),
                "{name}: ranking"
            );
            assert_eq!(view.seeds(), engine.pipeline().current_seeds(), "{name}: seeds");
            let seeds = view.seeds();
            for &seed in seeds.iter().take(5) {
                assert!(
                    engine.pipeline().is_seed(seed) && view.is_seed(seed),
                    "{name}: seed membership"
                );
            }
            let Some(snapshot) = engine.pipeline().latest_snapshot() else { return };
            assert_eq!(view.tick(), Some(snapshot.tick), "{name}: tick");
            for pair in probe_pairs(snapshot) {
                assert_eq!(
                    view.pair_info(pair),
                    engine.pipeline().pair_info(pair),
                    "{name}: pair_info"
                );
                assert_eq!(
                    view.pair_history(pair),
                    engine.pipeline().pair_history(pair),
                    "{name}: pair_history"
                );
            }
            for &(pair, _) in &snapshot.ranked {
                for tag in [pair.lo(), pair.hi()] {
                    assert_eq!(view.tag_name(tag), archive.interner.name(tag), "{name}: tag_name");
                }
            }

            // Personalization through the published name snapshot is the
            // same computation as the engine-side pass.
            for profile in &profiles {
                assert_eq!(
                    view.personalized(profile),
                    Some(personalize(snapshot, profile, &archive.interner)),
                    "{name}: personalized"
                );
            }

            // The engine's own in-place QueryView agrees with both.
            let live = engine.query_view(archive.interner.clone());
            assert_eq!(
                live.ranking().as_ref(),
                engine.pipeline().latest_snapshot(),
                "{name}: live view"
            );
            assert_eq!(live.seeds(), view.seeds());
            assert_eq!(live.top_k(5), view.top_k(5));
            for &(pair, _) in snapshot.ranked.iter().take(3) {
                assert_eq!(live.pair_info(pair), view.pair_info(pair));
                assert_eq!(live.pairs_with_tag(pair.lo()), view.pairs_with_tag(pair.lo()));
            }
        });
        assert!(closes > 0, "{name}: the replay must close ticks");
        if rebalance.is_some() {
            assert!(
                engine.pipeline().metrics().rebalances > 0,
                "{name}: the aggressive policy must actually migrate"
            );
        }
    }
}

#[test]
fn ranked_detail_covers_the_ranking_and_answers_identically() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(config(4, true, None));
    let handle = QueryHandle::attach(&mut engine, archive.interner.clone(), ServeConfig::default());
    replay_with(&mut engine, &archive.docs, |engine, _tick| {
        let view = handle.view().expect("published after first close");
        assert_eq!(view.detail(), PublishDetail::Ranked);
        assert_eq!(view.ranking().as_ref(), engine.pipeline().latest_snapshot());
        assert_eq!(view.seeds(), engine.pipeline().current_seeds());
        let Some(snapshot) = engine.pipeline().latest_snapshot() else { return };
        // Stat columns cover exactly the ranked pairs — and answer
        // byte-identically to the engine for every one of them.
        assert_eq!(view.covered_pairs(), snapshot.ranked.len());
        for &(pair, _) in &snapshot.ranked {
            assert_eq!(view.pair_info(pair), engine.pipeline().pair_info(pair));
            assert_eq!(view.pair_history(pair), engine.pipeline().pair_history(pair));
        }
    });
}

#[test]
fn racing_readers_never_observe_torn_views() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(config(4, true, None));
    let handle = QueryHandle::attach(&mut engine, archive.interner.clone(), ServeConfig::default());

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|reader| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            let profile = UserProfile::new(format!("u{reader}"));
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(SeqCst) {
                    let Some(view) = handle.view() else { continue };
                    // Epoch is stamped inside the view: a torn read
                    // (epoch from one publish, payload from another)
                    // cannot happen, and epochs never run backwards.
                    let epoch = QueryView::epoch(&*view);
                    assert!(epoch >= 1, "views are published whole");
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                    let ranking = view.ranking().expect("every close publishes a ranking");
                    assert_eq!(view.tick(), Some(ranking.tick), "tick/ranking coherent");
                    // Each ranked pair is covered by the stat columns of
                    // the very same view (publish is all-or-nothing).
                    for &(pair, _) in ranking.ranked.iter().take(3) {
                        assert!(view.pair_info(pair).is_some(), "columns match the ranking");
                    }
                    let personalized = view.personalized(&profile).unwrap();
                    assert_eq!(personalized.ranked.len(), ranking.ranked.len());
                    reads.fetch_add(1, SeqCst);
                }
                last_epoch
            })
        })
        .collect();

    replay_with(&mut engine, &archive.docs, |_, _| {
        std::thread::yield_now();
    });
    // Keep serving the final epoch until the readers have demonstrably
    // observed plenty of views (one-CPU schedulers may starve them
    // during the replay itself), then stop.
    let mut patience = 0u64;
    while reads.load(SeqCst) < 1000 && patience < 10_000_000 {
        patience += 1;
        std::thread::yield_now();
    }
    stop.store(true, SeqCst);
    let final_epoch = handle.epoch();
    for reader in readers {
        let last_seen = reader.join().unwrap();
        assert!(last_seen <= final_epoch);
    }
    assert!(reads.load(SeqCst) >= 1000, "readers must have observed views");
    assert!(final_epoch > 0);
}

#[test]
fn subscriptions_share_the_publish_pass_and_deliver_on_change_only() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(config(1, false, None));
    let handle = QueryHandle::attach(&mut engine, archive.interner.clone(), ServeConfig::default());

    let mut subscriptions: Vec<Subscription> = (0..8)
        .map(|i| {
            handle
                .subscribe(
                    UserProfile::new(format!("user{i}"))
                        .try_with_weighted_keyword("event", 1.0 + i as f64)
                        .unwrap()
                        .try_with_alpha(0.5 + i as f64 * 0.25)
                        .unwrap(),
                )
                .with_top_k(5)
        })
        .collect();

    replay_with(&mut engine, &archive.docs, |engine, _tick| {
        let snapshot = match engine.pipeline().latest_snapshot() {
            Some(s) => s.clone(),
            None => return,
        };
        for subscription in subscriptions.iter_mut() {
            let (epoch, delivered) = subscription.poll().expect("new epoch → delivery");
            assert_eq!(epoch, handle.epoch());
            // Each subscription's delivery equals the engine-side
            // personalization pass, truncated to its top-k.
            let mut expected = personalize(&snapshot, subscription.profile(), &archive.interner);
            expected.ranked.truncate(5);
            assert_eq!(delivered, expected);
            // Edge-triggered: the same epoch is never delivered twice.
            assert!(subscription.poll().is_none());
            // Level-triggered reads still answer.
            assert_eq!(subscription.current(), Some(expected));
        }
    });
    assert!(subscriptions[0].last_epoch() > 0, "the replay must deliver");
}

#[test]
fn serve_telemetry_counts_publishes_and_queries() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(config(1, false, None));
    let handle = QueryHandle::attach(&mut engine, archive.interner.clone(), ServeConfig::default());
    let closes = engine.run_replay(&archive.docs).len() as u64;
    let _ = handle.view();
    let _ = handle.top_k(5);

    let registry = engine.telemetry().registry();
    assert_eq!(registry.histogram("serve.publish.ns").count(), closes);
    assert_eq!(registry.gauge("serve.epoch").value(), closes as i64);
    assert!(registry.counter("serve.queries").value() >= 2);
    let publishes = engine
        .telemetry()
        .journal()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ViewPublish)
        .count() as u64;
    assert!(publishes > 0, "publishes are journaled");
    let prom = engine.telemetry().prometheus_text();
    assert!(prom.contains("enblogue_serve_publish_ns"));
    assert!(prom.contains("enblogue_stage_close_ns_count{stage=\"serve-publish\"}"));
}
