//! Figure 1 as an executable assertion.
//!
//! The paper's only figure shows two tags — a popular t1 with periodic
//! peaks and a small t2 — whose individual frequencies explain nothing,
//! while a sudden growth of their intersection is the emergent topic.
//! This test builds exactly that stream and asserts the claimed
//! behaviours:
//!
//! 1. t1's solo peaks do not alarm EnBlogue,
//! 2. the intersection shift does, promptly,
//! 3. the burst baseline sees t1's peaks (false trends) but is blind to
//!    the intersection shift.

use enblogue::baseline::burst::{BaselineConfig, BurstBaseline, Trend};
use enblogue::prelude::*;

/// Builds the Figure-1 stream: 120 hourly ticks.
/// * t1: 40 docs/tick baseline with peaks of 100 at ticks 30 and 60,
/// * t2: 6 docs/tick throughout,
/// * intersection: 0 until tick 90, then 5 co-tagged docs/tick
///   (t1 and t2 volumes held constant — only the overlap moves).
fn figure1_stream(t1: TagId, t2: TagId) -> Vec<Document> {
    let mut docs = Vec::new();
    let mut id = 0;
    for tick in 0..120u64 {
        let t1_total: u64 = if tick == 30 || tick == 60 { 100 } else { 40 };
        let t2_total: u64 = 6;
        let both: u64 = if tick >= 90 { 5 } else { 0 };
        let ts = |i: u64| Timestamp::from_hours(tick).plus(i * 100); // spread inside the tick
        for i in 0..both {
            id += 1;
            docs.push(Document::builder(id, ts(i)).tags([t1, t2]).build());
        }
        for i in 0..t1_total - both {
            id += 1;
            docs.push(Document::builder(id, ts(10 + i)).tags([t1]).build());
        }
        for i in 0..t2_total - both {
            id += 1;
            docs.push(Document::builder(id, ts(200 + i)).tags([t2]).build());
        }
    }
    docs.sort_by_key(|d| (d.timestamp, d.id));
    docs
}

fn engine_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(12)
        .seed_count(5)
        .min_seed_count(3)
        .top_k(5)
        .min_pair_support(1)
        .build()
        .unwrap()
}

#[test]
fn enblogue_flags_the_shift_not_the_peaks() {
    let interner = TagInterner::new();
    let t1 = interner.intern("popular", TagKind::Hashtag);
    let t2 = interner.intern("niche", TagKind::Hashtag);
    let docs = figure1_stream(t1, t2);

    let mut engine = EnBlogueEngine::new(engine_config());
    let snapshots = engine.run_replay(&docs);
    let pair = TagPair::new(t1, t2);

    // (1) No alarm for the pair during t1's solo peaks (the pair is not
    // even tracked before co-occurrence exists).
    for snap in snapshots.iter().filter(|s| s.tick.0 < 90) {
        assert!(
            snap.rank_of(pair).is_none(),
            "pair alarmed before any co-occurrence at {}: {snap:?}",
            snap.tick
        );
    }

    // (2) The intersection shift is detected promptly and at rank 0.
    let first_hit = snapshots
        .iter()
        .find(|s| s.contains_in_top(pair, 5))
        .expect("the intersection shift must be detected");
    assert!(
        first_hit.tick.0 >= 90 && first_hit.tick.0 <= 93,
        "detection must be prompt (event at tick 90): {}",
        first_hit.tick
    );
    assert_eq!(first_hit.rank_of(pair), Some(0), "the shift is the top topic");
}

#[test]
fn baseline_sees_peaks_but_misses_the_shift() {
    let interner = TagInterner::new();
    let t1 = interner.intern("popular", TagKind::Hashtag);
    let t2 = interner.intern("niche", TagKind::Hashtag);
    let docs = figure1_stream(t1, t2);

    let mut baseline = BurstBaseline::new(BaselineConfig {
        history_ticks: 24,
        window_ticks: 6,
        gamma: 2.5,
        min_support: 5,
        group_jaccard: 0.1,
    });
    let spec = TickSpec::hourly();
    let mut open = Tick(0);
    let mut trends_by_tick: Vec<(Tick, Vec<Trend>)> = Vec::new();
    for doc in &docs {
        let tick = spec.tick_of(doc.timestamp);
        while open < tick {
            let trends = baseline.close_tick(open);
            trends_by_tick.push((open, trends));
            open = open.next();
        }
        baseline.observe_doc(doc);
    }
    trends_by_tick.push((open, baseline.close_tick(open)));

    // The baseline fires on t1's solo peaks — trends that are NOT emergent
    // topics in the paper's sense.
    let peak_trends: Vec<&Tick> = trends_by_tick
        .iter()
        .filter(|(t, trends)| {
            (t.0 == 30 || t.0 == 60) && trends.iter().any(|tr| tr.tags.contains(&t1))
        })
        .map(|(t, _)| t)
        .collect();
    assert_eq!(peak_trends.len(), 2, "baseline must flag both solo peaks of t1");

    // But the correlation shift at tick 90 is invisible to it: per-tag
    // counts never move (t1 stays 40, t2 stays 6).
    let pair_covered = trends_by_tick.iter().filter(|(t, _)| t.0 >= 88).any(|(_, trends)| {
        trends.iter().any(|tr| tr.covered_pairs().contains(&TagPair::new(t1, t2)))
    });
    assert!(!pair_covered, "burst baseline must be blind to the intersection shift");
}

#[test]
fn intersection_series_matches_figure_shape() {
    // Sanity on the generator itself: individual counts flat (except
    // peaks), intersection steps at 90 — i.e. the stream really is the
    // figure.
    let interner = TagInterner::new();
    let t1 = interner.intern("popular", TagKind::Hashtag);
    let t2 = interner.intern("niche", TagKind::Hashtag);
    let docs = figure1_stream(t1, t2);
    let spec = TickSpec::hourly();
    let mut per_tick = vec![(0u64, 0u64, 0u64); 120];
    for doc in &docs {
        let t = spec.tick_of(doc.timestamp).0 as usize;
        if doc.has_tag(t1) {
            per_tick[t].0 += 1;
        }
        if doc.has_tag(t2) {
            per_tick[t].1 += 1;
        }
        if doc.has_tag(t1) && doc.has_tag(t2) {
            per_tick[t].2 += 1;
        }
    }
    assert_eq!(per_tick[29], (40, 6, 0));
    assert_eq!(per_tick[30], (100, 6, 0), "peak does not move the intersection");
    assert_eq!(per_tick[89], (40, 6, 0));
    assert_eq!(per_tick[95], (40, 6, 5), "shift moves the intersection only");
}
