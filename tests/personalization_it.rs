//! Show Case 3 end-to-end: personalization changes what different users
//! see on the *same* stream.

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

/// An archive with events in two distinguishable "departments": we pick
/// two event category tags after generation and build profiles around
/// them.
fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 31337,
        days: 60,
        docs_per_day: 100,
        n_categories: 16,
        n_descriptors: 120,
        n_entities: 60,
        n_terms: 300,
        historic_events: 6,
    })
}

fn engine_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(25)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .unwrap()
}

#[test]
fn profiles_see_different_rankings_on_same_stream() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(engine_config());
    let snapshots = engine.run_replay(&archive.docs);

    // Find a snapshot whose ranking contains topics from two different
    // categories (rankings may also contain descriptor-only noise pairs).
    let cat_of = |pair: TagPair| {
        [pair.lo(), pair.hi()]
            .into_iter()
            .find(|&t| archive.interner.kind(t) == Some(TagKind::Category))
    };
    let (snap, cat_a, cat_b) = snapshots
        .iter()
        .rev()
        .find_map(|s| {
            let cats: Vec<TagId> = s.ranked.iter().filter_map(|&(p, _)| cat_of(p)).collect();
            let first = *cats.first()?;
            let second = cats.iter().copied().find(|&c| c != first)?;
            Some((s, first, second))
        })
        .expect("some tick must rank topics from two categories");

    let user_a = UserProfile::new("user-a").with_category(cat_a).with_alpha(5.0);
    let user_b = UserProfile::new("user-b").with_category(cat_b).with_alpha(5.0);

    let view_a = personalize(snap, &user_a, &archive.interner);
    let view_b = personalize(snap, &user_b, &archive.interner);

    assert_ne!(view_a.ranked[0].0, view_b.ranked[0].0, "different top topic per user");
    assert!(
        view_b.rank_of(view_b.ranked[0].0)
            < view_a.rank_of(view_b.ranked[0].0).or(Some(usize::MAX))
    );

    // The overlap metric reports the difference (same topics, new order,
    // or disjoint sets — either way below 1 at k=1).
    assert!(jaccard_at_k(&view_a, &view_b, 1) < 1.0);
}

#[test]
fn keyword_query_pulls_matching_topics_up() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(engine_config());
    let snapshots = engine.run_replay(&archive.docs);
    let snap = snapshots.iter().rev().find(|s| s.ranked.len() >= 2).unwrap();

    // Query for the *last*-ranked topic's descriptor name.
    let last = snap.ranked.last().unwrap().0;
    let descriptor = [last.lo(), last.hi()]
        .into_iter()
        .find(|&t| archive.interner.kind(t) == Some(TagKind::Descriptor))
        .unwrap_or(last.hi());
    let name = archive.interner.name(descriptor).unwrap();

    let searcher = UserProfile::new("searcher").with_keyword(name.as_ref()).with_alpha(10.0);
    let view = personalize(snap, &searcher, &archive.interner);
    let neutral = personalize(snap, &UserProfile::new("neutral"), &archive.interner);
    let before = neutral.rank_of(last).expect("topic is ranked");
    let after = view.rank_of(last).expect("topic stays ranked");
    assert!(after < before, "keyword match must improve the topic's rank: {before} -> {after}");
    assert!(view.ranked[0].1 > neutral.ranked[0].1 || after == 0, "boost must be visible");
}

#[test]
fn filter_only_profile_sees_only_matching_topics() {
    let archive = archive();
    let mut engine = EnBlogueEngine::new(engine_config());
    let snapshots = engine.run_replay(&archive.docs);
    let snap = snapshots.iter().rev().find(|s| s.ranked.len() >= 2).unwrap();

    let cat = snap
        .ranked
        .iter()
        .filter_map(|&(p, _)| {
            [p.lo(), p.hi()]
                .into_iter()
                .find(|&t| archive.interner.kind(t) == Some(TagKind::Category))
        })
        .next()
        .expect("some ranked topic contains a category");
    let strict = UserProfile::new("strict").with_category(cat).filter_only();
    let view = personalize(snap, &strict, &archive.interner);
    assert!(!view.ranked.is_empty());
    for &(pair, _) in &view.ranked {
        assert!(pair.contains(cat), "strict view must only contain the preferred category");
    }
    assert!(view.ranked.len() <= snap.ranked.len());
}

#[test]
fn changing_preferences_changes_the_view_immediately() {
    // "Users can change their preferences at any time and observe the
    // impact" — profiles are pure functions of (snapshot, profile), so a
    // changed profile yields the new view on the same snapshot.
    let archive = archive();
    let mut engine = EnBlogueEngine::new(engine_config());
    let snapshots = engine.run_replay(&archive.docs);
    let snap = snapshots.iter().rev().find(|s| s.ranked.len() >= 2).unwrap();

    let neutral = UserProfile::new("u");
    let before = personalize(snap, &neutral, &archive.interner);
    // Prefer a category that appears in a non-top topic but not in the
    // top one, so boosting it visibly reorders the list.
    let top = snap.ranked[0].0;
    let cat = snap
        .ranked
        .iter()
        .skip(1)
        .filter_map(|&(p, _)| {
            [p.lo(), p.hi()]
                .into_iter()
                .find(|&t| archive.interner.kind(t) == Some(TagKind::Category) && !top.contains(t))
        })
        .next()
        .expect("a later-ranked topic contains a category");
    let updated = UserProfile::new("u").with_category(cat).with_alpha(8.0);
    let after = personalize(snap, &updated, &archive.interner);
    assert_eq!(before.ranked.len(), after.ranked.len());
    assert_ne!(
        before.ranked.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
        after.ranked.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
        "order must change once preferences do"
    );
}
