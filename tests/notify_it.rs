//! The push path end-to-end: engine → broker → subscribed clients, with
//! personalised deliveries (§4.2's APE front-end, in-process).

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use std::sync::mpsc::Receiver;

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 2424,
        days: 40,
        docs_per_day: 100,
        n_categories: 16,
        n_descriptors: 100,
        n_entities: 40,
        n_terms: 200,
        historic_events: 3,
    })
}

fn engine_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(20)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .unwrap()
}

fn drain(rx: &Receiver<RankingUpdate>) -> Vec<RankingUpdate> {
    let mut updates = Vec::new();
    while let Ok(u) = rx.try_recv() {
        updates.push(u);
    }
    updates
}

#[test]
fn subscribers_receive_pushed_rankings_through_the_pipeline() {
    let archive = archive();
    let broker = PushBroker::new(archive.interner.clone());
    let rx = broker.subscribe(PushSubscription::new(UserProfile::new("visitor"), 10));

    let (_, handles) =
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
            .with_engine_and_broker("e1", engine_config(), broker.clone())
            .run()
            .unwrap();

    let updates = drain(&rx);
    assert!(!updates.is_empty(), "the events must trigger pushes");
    // Every update corresponds to a published snapshot and carries its tick.
    let snaps = handles[0].lock().unwrap();
    assert_eq!(snaps.len(), 40);
    for update in &updates {
        assert!(snaps.iter().any(|s| s.tick == update.snapshot.tick));
    }
    // Updates arrive in tick order.
    for w in updates.windows(2) {
        assert!(w[0].snapshot.tick < w[1].snapshot.tick);
    }
    let (published, delivered) = broker.stats();
    assert_eq!(published, 40, "every tick close publishes once");
    assert!(delivered >= updates.len() as u64);
}

#[test]
fn change_only_delivery_is_quieter_than_every_update() {
    let archive = archive();

    // A strict profile watching one event's category: its visible list is
    // empty most of the time and stable during the event, so change-only
    // delivery has something to skip. (An unfiltered top-10 over noisy
    // background scores legitimately changes almost every tick.)
    let watched_category = archive.script.events()[0].tag_a;
    let quiet_profile = UserProfile::new("quiet").with_category(watched_category).filter_only();
    let chatty_profile = UserProfile::new("chatty").with_category(watched_category).filter_only();

    let broker = PushBroker::new(archive.interner.clone());
    let on_change = broker.subscribe(PushSubscription::new(quiet_profile, 3));
    let always = broker.subscribe(PushSubscription::new(chatty_profile, 3).every_update());

    PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
        .with_engine_and_broker("e1", engine_config(), broker.clone())
        .run()
        .unwrap();

    let quiet = drain(&on_change).len();
    let chatty = drain(&always).len();
    assert_eq!(chatty, 40, "every-update mode gets one push per tick");
    assert!(quiet < chatty, "change-only mode must skip unchanged rankings: {quiet} vs {chatty}");
    assert!(quiet > 0);
}

#[test]
fn personalised_subscribers_get_their_own_view() {
    let archive = archive();
    // Identify two event categories to build opposing profiles.
    let events = archive.script.events();
    let cat_a = events[0].tag_a;
    let cat_b = events.iter().map(|e| e.tag_a).find(|&c| c != cat_a).unwrap_or(events[0].tag_b);

    let broker = PushBroker::new(archive.interner.clone());
    let rx_a = broker.subscribe(PushSubscription::new(
        UserProfile::new("a").with_category(cat_a).with_alpha(5.0),
        5,
    ));
    let rx_b = broker.subscribe(PushSubscription::new(
        UserProfile::new("b").with_category(cat_b).with_alpha(5.0),
        5,
    ));

    PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
        .with_engine_and_broker("e1", engine_config(), broker)
        .run()
        .unwrap();

    let a_updates = drain(&rx_a);
    let b_updates = drain(&rx_b);
    assert!(!a_updates.is_empty() && !b_updates.is_empty());
    // At some point the two users' visible toplists differ.
    let differs = a_updates.iter().any(|ua| {
        b_updates.iter().any(|ub| {
            ua.snapshot.tick == ub.snapshot.tick
                && ua.ranking.ranked.iter().map(|&(p, _)| p).collect::<Vec<_>>()
                    != ub.ranking.ranked.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        })
    });
    assert!(differs, "personalised subscribers must see different rankings at some tick");
}
