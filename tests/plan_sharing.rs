//! Multi-plan sharing (§4.1): shared operator prefixes must save work
//! without changing any plan's output.

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use std::sync::Arc;

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 5005,
        days: 15,
        docs_per_day: 60,
        n_categories: 12,
        n_descriptors: 60,
        n_entities: 60,
        n_terms: 200,
        historic_events: 2,
    })
}

fn engine_config(k: usize) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(5)
        .seed_count(15)
        .min_seed_count(2)
        .top_k(k)
        .build()
        .unwrap()
}

fn entity_tagger(archive: &NytArchive) -> Arc<EntityTagger> {
    Arc::new(EntityTagger::new(Arc::clone(&archive.universe.gazetteer)))
}

#[test]
fn shared_prefix_processes_each_event_once() {
    let archive = archive();
    let tagger = entity_tagger(&archive);
    let n_plans = 4;

    let run = |share: bool| {
        let mut builder =
            PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
                .with_entity_tagging(Arc::clone(&tagger));
        for i in 0..n_plans {
            // Different k per plan: genuinely different query plans whose
            // *prefix* (source + tagging) is identical.
            builder = builder.with_engine(format!("plan-{i}"), engine_config(5 + i));
        }
        if !share {
            builder = builder.without_sharing();
        }
        builder.run().unwrap()
    };

    let (shared_stats, shared_handles) = run(true);
    let (unshared_stats, unshared_handles) = run(false);

    // The tagger runs once vs once-per-plan.
    let shared_tagger_work: u64 =
        shared_stats.nodes.iter().filter(|n| n.name == "entity-tag").map(|n| n.processed).sum();
    let unshared_tagger_work: u64 =
        unshared_stats.nodes.iter().filter(|n| n.name == "entity-tag").map(|n| n.processed).sum();
    assert_eq!(unshared_tagger_work, n_plans as u64 * shared_tagger_work);

    // Outputs are identical plan by plan.
    for (a, b) in shared_handles.iter().zip(&unshared_handles) {
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap(), "sharing must not change results");
    }
}

#[test]
fn sharing_scales_with_plan_count() {
    let archive = archive();
    let tagger = entity_tagger(&archive);
    let work = |n_plans: usize, share: bool| {
        let mut builder =
            PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
                .with_entity_tagging(Arc::clone(&tagger));
        for i in 0..n_plans {
            builder = builder.with_engine(format!("plan-{i}"), engine_config(10));
        }
        if !share {
            builder = builder.without_sharing();
        }
        let (stats, _) = builder.run().unwrap();
        stats.total_processed()
    };
    // Unshared total work grows ~linearly in plans; shared adds only the
    // sink work per plan.
    let shared_1 = work(1, true);
    let shared_8 = work(8, true);
    let unshared_8 = work(8, false);
    assert!(unshared_8 > shared_8, "sharing saves work at 8 plans");
    let tagger_cost = shared_1 / 2; // prefix ≈ half the single-plan work
    assert!(
        unshared_8 - shared_8 >= 6 * tagger_cost,
        "≈7 duplicated prefixes must dominate the gap: gap={} tagger_cost={}",
        unshared_8 - shared_8,
        tagger_cost
    );
}

#[test]
fn different_configs_share_prefix_and_diverge_in_rankings() {
    let archive = archive();
    let tagger = entity_tagger(&archive);
    // Two plans with different measures — the demo's "compare emergent
    // topic rankings obtained from different parameter settings".
    let jaccard = engine_config(10);
    let mut overlap = engine_config(10);
    overlap.measure = MeasureKind::Set(CorrelationMeasure::Overlap);

    let (graph, handles) =
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
            .with_entity_tagging(tagger)
            .with_engine("jaccard", jaccard)
            .with_engine("overlap", overlap)
            .build()
            .unwrap();
    assert_eq!(graph.shared_hits(), 1, "tagger shared across the two plans");

    let mut graph = graph;
    run_graph(&mut graph).unwrap();
    let a = handles[0].lock().unwrap().clone();
    let b = handles[1].lock().unwrap().clone();
    assert_eq!(a.len(), b.len());
    // Same tick structure, but (in general) different scores.
    let any_difference = a.iter().zip(&b).any(|(x, y)| {
        x.ranked.iter().map(|(p, _)| p).ne(y.ranked.iter().map(|(p, _)| p))
            || x.ranked.iter().zip(&y.ranked).any(|((_, s1), (_, s2))| (s1 - s2).abs() > 1e-12)
    });
    assert!(any_difference, "different measures must visibly differ somewhere");
}
