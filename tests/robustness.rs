//! Robustness and failure injection: the engine and substrates must
//! degrade gracefully on malformed, degenerate or adversarial input.

use enblogue::prelude::*;

fn small_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(4)
        .seed_count(4)
        .min_seed_count(1)
        .top_k(3)
        .min_pair_support(1)
        .build()
        .unwrap()
}

fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
    Document::builder(id, Timestamp::from_hours(hour)).tags(tags.iter().map(|&t| TagId(t))).build()
}

#[test]
fn empty_stream_produces_empty_snapshot() {
    let mut engine = EnBlogueEngine::new(small_config());
    let snap = engine.close_tick(Tick(0));
    assert!(snap.ranked.is_empty());
    assert_eq!(engine.metrics().docs_processed, 0);
    // Closing more empty ticks stays clean.
    for t in 1..50u64 {
        assert!(engine.close_tick(Tick(t)).ranked.is_empty());
    }
}

#[test]
fn documents_without_tags_are_harmless() {
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..5u64 {
        engine.process_doc(&doc(t + 1, t, &[]));
        let snap = engine.close_tick(Tick(t));
        assert!(snap.ranked.is_empty());
    }
    assert_eq!(engine.metrics().docs_processed, 5);
    assert_eq!(engine.metrics().pairs_discovered, 0);
}

#[test]
fn single_massive_document_does_not_explode_pair_state() {
    // A document with many tags creates O(t²) candidate pairs; the cap
    // must bound tracked state.
    let mut config = small_config();
    config.max_tracked_pairs = 50;
    let mut engine = EnBlogueEngine::new(config);
    let tags: Vec<u32> = (0..60).collect();
    engine.process_doc(&doc(1, 0, &tags));
    engine.close_tick(Tick(0));
    assert!(engine.metrics().pairs_tracked <= 50, "{}", engine.metrics().pairs_tracked);
}

#[test]
fn duplicate_document_ids_are_tolerated() {
    // The engine treats ids as opaque; duplicate ids simply count twice
    // (deduplication is the ingest pipeline's job, not the tracker's).
    let mut engine = EnBlogueEngine::new(small_config());
    engine.process_doc(&doc(7, 0, &[1, 2]));
    engine.process_doc(&doc(7, 0, &[1, 2]));
    engine.close_tick(Tick(0));
    assert_eq!(engine.metrics().docs_processed, 2);
}

#[test]
fn late_documents_within_closed_ticks_fold_into_open_tick() {
    // A document whose timestamp belongs to an already-closed tick must
    // not panic or corrupt windows; it is counted into the open tick.
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..3u64 {
        engine.process_doc(&doc(t + 1, t, &[1, 2]));
        engine.close_tick(Tick(t));
    }
    // Tick 3 is open; this doc claims hour 0.
    engine.process_doc(&doc(99, 0, &[1, 2]));
    let snap = engine.close_tick(Tick(3));
    assert_eq!(snap.tick, Tick(3));
    assert_eq!(engine.metrics().docs_processed, 4);
}

#[test]
fn huge_tick_gaps_reset_windows_cleanly() {
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..4u64 {
        engine.process_doc(&doc(t + 1, t, &[1, 2]));
        engine.close_tick(Tick(t));
    }
    assert!(engine.metrics().pairs_tracked > 0);
    // Jump 10 000 ticks into the future.
    engine.process_doc(&doc(100, 10_000, &[3, 4]));
    let snap = engine.close_tick(Tick(10_000));
    assert_eq!(snap.tick, Tick(10_000));
    // Old pair state has no window support across the gap and is evicted.
    assert!(engine.pipeline().pair_info(TagPair::new(TagId(1), TagId(2))).is_none());
}

#[test]
fn extreme_configs_run() {
    // Smallest legal window and k.
    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::minutely())
        .window_ticks(2)
        .seed_count(1)
        .min_seed_count(1)
        .top_k(1)
        .min_pair_support(1)
        .build()
        .unwrap();
    let mut engine = EnBlogueEngine::new(config);
    let docs: Vec<Document> = (0..100)
        .map(|i| {
            Document::builder(i, Timestamp::from_minutes(i))
                .tags([TagId((i % 3) as u32), TagId(((i + 1) % 3) as u32)])
                .build()
        })
        .collect();
    let snapshots = engine.run_replay(&docs);
    assert_eq!(snapshots.len(), 100);
    for snap in &snapshots {
        assert!(snap.ranked.len() <= 1);
    }
}

#[test]
fn personalization_with_unknown_tags_is_neutral() {
    let interner = TagInterner::new();
    let known = interner.intern("known", TagKind::Hashtag);
    let snap = RankingSnapshot {
        tick: Tick(1),
        time: Timestamp::from_hours(1),
        ranked: vec![(TagPair::new(known, TagId(9999)), 0.5)],
    };
    // TagId(9999) was never interned: keyword matching must not panic and
    // must not match.
    let profile = UserProfile::new("u").with_keyword("whatever").with_alpha(5.0);
    let view = personalize(&snap, &profile, &interner);
    assert_eq!(view.ranked.len(), 1);
    assert_eq!(view.ranked[0].1, 0.5, "no spurious relevance for unknown tags");
}

#[test]
fn broker_survives_subscriber_churn_mid_stream() {
    let interner = TagInterner::new();
    let broker = PushBroker::new(interner.clone());
    let a = TagPair::new(TagId(1), TagId(2));
    // Subscribe, receive, drop, re-subscribe, repeat.
    for round in 0..5u64 {
        let rx = broker.subscribe(PushSubscription::new(UserProfile::new(format!("u{round}")), 5));
        broker.publish(&RankingSnapshot {
            tick: Tick(round),
            time: Timestamp::from_hours(round),
            ranked: vec![(a, 0.5 + round as f64 * 0.01)],
        });
        assert!(rx.try_recv().is_ok());
        drop(rx);
    }
    // One publish after all receivers dropped cleans the registry.
    broker.publish(&RankingSnapshot {
        tick: Tick(99),
        time: Timestamp::from_hours(99),
        ranked: vec![],
    });
    assert_eq!(broker.client_count(), 0);
}

#[test]
fn graph_rejects_malformed_plans() {
    let mut g = Graph::new(ReplaySource::new(vec![], TickSpec::hourly()));
    let a = g.attach(None, enblogue::stream::ops::PassThrough::new("a"));
    let b = g.attach(Some(a), enblogue::stream::ops::PassThrough::new("b"));
    assert!(g.connect(b, a).is_err(), "cycle must be rejected");
    assert!(g.connect(a, a).is_err(), "self-loop must be rejected");
    // The graph is still usable afterwards.
    assert!(enblogue::stream::exec::run_graph(&mut g).is_ok());
}

#[test]
fn merge_source_with_wildly_skewed_feeds() {
    // One feed with 1000 docs, one with 1: the merge must interleave by
    // time and terminate.
    let mut big: Vec<Document> = (0..1000).map(|i| doc(i, i / 100, &[1])).collect();
    big.sort_by_key(|d| d.timestamp);
    let small = vec![doc(5000, 5, &[2])];
    let merged = MergeSource::new(
        vec![
            Box::new(ReplaySource::new(big, TickSpec::hourly()))
                as Box<dyn enblogue::stream::Source>,
            Box::new(ReplaySource::new(small, TickSpec::hourly())),
        ],
        TickSpec::hourly(),
    );
    let mut g = Graph::new(merged);
    let sink = enblogue::stream::ops::CountingOp::new("c");
    let counts = sink.handle();
    g.attach(None, sink);
    enblogue::stream::exec::run_graph(&mut g).unwrap();
    let c = counts.lock().unwrap();
    assert_eq!(c.docs, 1001);
    assert_eq!(c.flushes, 1);
}

#[test]
fn interner_survives_adversarial_names() {
    let interner = TagInterner::new();
    let long_name = "a".repeat(10_000);
    let weird = ["", "   ", "\u{0}", "名字", long_name.as_str(), "\n\t"];
    for name in weird {
        let id = interner.intern(name, TagKind::Hashtag);
        assert_eq!(interner.get(name, TagKind::Hashtag), Some(id));
    }
    // Empty and whitespace-only names normalise to the same key.
    assert_eq!(
        interner.get("", TagKind::Hashtag),
        interner.get("   ", TagKind::Hashtag),
        "whitespace-only names collapse"
    );
}

// ---------------------------------------------------------------------
// Hostile arrival streams: the event-time robustness layer under attack
// (scripted by `enblogue_datagen::hostile`, drill scale).

fn hostile_config() -> enblogue_datagen::hostile::HostileConfig {
    enblogue_datagen::hostile::HostileConfig {
        hours: 24,
        docs_per_hour: 24,
        n_tags: 16,
        n_sources: 6,
        ..Default::default()
    }
}

fn replay(docs: &[Document], config: EnBlogueConfig) -> Vec<RankingSnapshot> {
    EnBlogueEngine::new(config).run_replay(docs)
}

#[test]
fn late_arrival_storm_is_neutralized_by_the_reorder_buffer() {
    use enblogue_datagen::hostile::HostileWorkload;
    let w = HostileWorkload::late_arrival_storm(&hostile_config(), 3);
    let baseline = replay(&w.clean, small_config());

    // A lateness bound covering the storm: byte-identical to the clean
    // stream, nothing dropped.
    let cfg = EnBlogueConfig { event_time: EventTimeConfig::bounded(3), ..small_config() };
    let mut engine = EnBlogueEngine::new(cfg);
    assert_eq!(engine.run_replay(&w.arrivals), baseline);
    assert_eq!(engine.metrics().docs_late_dropped, 0);
    assert_eq!(engine.metrics().docs_arrived, w.arrivals.len() as u64);

    // An *insufficient* bound degrades gracefully: the over-late slice
    // drops (counted), every tick still closes, no panic.
    let tight = EnBlogueConfig { event_time: EventTimeConfig::bounded(1), ..small_config() };
    let mut engine = EnBlogueEngine::new(tight);
    let snapshots = engine.run_replay(&w.arrivals);
    assert_eq!(snapshots.len(), baseline.len(), "every tick still closes");
    let dropped = engine.metrics().docs_late_dropped;
    assert!(dropped > 0 && dropped < w.injected, "only the over-late slice drops");
}

#[test]
fn duplicate_flood_is_neutralized_by_the_dedup_window() {
    use enblogue_datagen::hostile::HostileWorkload;
    let w = HostileWorkload::duplicate_flood(&hostile_config(), 2);
    let baseline = replay(&w.clean, small_config());

    let guard = SourceGuardConfig {
        enabled: true,
        dedup_window_ticks: 2,
        rate_limit_per_tick: 0.0,
        rate_burst: 0.0,
    };
    let cfg = EnBlogueConfig { source_guard: guard, ..small_config() };
    let mut engine = EnBlogueEngine::new(cfg);
    assert_eq!(engine.run_replay(&w.arrivals), baseline, "every copy must be invisible");
    assert_eq!(engine.metrics().docs_deduped, w.injected, "and every copy counted");
    assert_eq!(engine.metrics().docs_processed, w.clean.len() as u64);
}

#[test]
fn spam_burst_is_bounded_by_rate_caps() {
    use enblogue_datagen::hostile::HostileWorkload;
    let config = hostile_config();
    let w = HostileWorkload::spam_burst(&config, 2, 60);
    let baseline = replay(&w.clean, small_config());

    let rate = 6.0 * config.docs_per_hour as f64 / f64::from(config.n_sources);
    let guard = SourceGuardConfig {
        enabled: true,
        dedup_window_ticks: 2,
        rate_limit_per_tick: rate,
        rate_burst: 0.0,
    };

    // Honest traffic sits far below the cap: the guarded config is a
    // byte-identical no-op on the clean stream.
    let mut honest =
        EnBlogueEngine::new(EnBlogueConfig { source_guard: guard.clone(), ..small_config() });
    assert_eq!(honest.run_replay(&w.clean), baseline);
    assert_eq!(honest.metrics().docs_rate_capped, 0);
    assert_eq!(honest.metrics().docs_deduped, 0);

    // The burst trips the caps, and the admitted spam volume respects
    // the token-bucket arithmetic: at most burst + one refill per attack
    // tick, per spam source.
    let mut engine = EnBlogueEngine::new(EnBlogueConfig { source_guard: guard, ..small_config() });
    engine.run_replay(&w.arrivals);
    let capped = engine.metrics().docs_rate_capped;
    assert!(capped > 0, "the burst must trip the caps");
    let admitted = w.injected - capped;
    let attack_ticks = config.hours / 3 + 1;
    let bound = (rate * (attack_ticks + 1) as f64 * 2.0).ceil() as u64;
    assert!(admitted <= bound, "admitted spam {admitted} must respect the bucket bound {bound}");
}
