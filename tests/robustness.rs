//! Robustness and failure injection: the engine and substrates must
//! degrade gracefully on malformed, degenerate or adversarial input.

use enblogue::prelude::*;

fn small_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(4)
        .seed_count(4)
        .min_seed_count(1)
        .top_k(3)
        .min_pair_support(1)
        .build()
        .unwrap()
}

fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
    Document::builder(id, Timestamp::from_hours(hour)).tags(tags.iter().map(|&t| TagId(t))).build()
}

#[test]
fn empty_stream_produces_empty_snapshot() {
    let mut engine = EnBlogueEngine::new(small_config());
    let snap = engine.close_tick(Tick(0));
    assert!(snap.ranked.is_empty());
    assert_eq!(engine.metrics().docs_processed, 0);
    // Closing more empty ticks stays clean.
    for t in 1..50u64 {
        assert!(engine.close_tick(Tick(t)).ranked.is_empty());
    }
}

#[test]
fn documents_without_tags_are_harmless() {
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..5u64 {
        engine.process_doc(&doc(t + 1, t, &[]));
        let snap = engine.close_tick(Tick(t));
        assert!(snap.ranked.is_empty());
    }
    assert_eq!(engine.metrics().docs_processed, 5);
    assert_eq!(engine.metrics().pairs_discovered, 0);
}

#[test]
fn single_massive_document_does_not_explode_pair_state() {
    // A document with many tags creates O(t²) candidate pairs; the cap
    // must bound tracked state.
    let mut config = small_config();
    config.max_tracked_pairs = 50;
    let mut engine = EnBlogueEngine::new(config);
    let tags: Vec<u32> = (0..60).collect();
    engine.process_doc(&doc(1, 0, &tags));
    engine.close_tick(Tick(0));
    assert!(engine.metrics().pairs_tracked <= 50, "{}", engine.metrics().pairs_tracked);
}

#[test]
fn duplicate_document_ids_are_tolerated() {
    // The engine treats ids as opaque; duplicate ids simply count twice
    // (deduplication is the ingest pipeline's job, not the tracker's).
    let mut engine = EnBlogueEngine::new(small_config());
    engine.process_doc(&doc(7, 0, &[1, 2]));
    engine.process_doc(&doc(7, 0, &[1, 2]));
    engine.close_tick(Tick(0));
    assert_eq!(engine.metrics().docs_processed, 2);
}

#[test]
fn late_documents_within_closed_ticks_fold_into_open_tick() {
    // A document whose timestamp belongs to an already-closed tick must
    // not panic or corrupt windows; it is counted into the open tick.
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..3u64 {
        engine.process_doc(&doc(t + 1, t, &[1, 2]));
        engine.close_tick(Tick(t));
    }
    // Tick 3 is open; this doc claims hour 0.
    engine.process_doc(&doc(99, 0, &[1, 2]));
    let snap = engine.close_tick(Tick(3));
    assert_eq!(snap.tick, Tick(3));
    assert_eq!(engine.metrics().docs_processed, 4);
}

#[test]
fn huge_tick_gaps_reset_windows_cleanly() {
    let mut engine = EnBlogueEngine::new(small_config());
    for t in 0..4u64 {
        engine.process_doc(&doc(t + 1, t, &[1, 2]));
        engine.close_tick(Tick(t));
    }
    assert!(engine.metrics().pairs_tracked > 0);
    // Jump 10 000 ticks into the future.
    engine.process_doc(&doc(100, 10_000, &[3, 4]));
    let snap = engine.close_tick(Tick(10_000));
    assert_eq!(snap.tick, Tick(10_000));
    // Old pair state has no window support across the gap and is evicted.
    assert!(engine.pair_info(TagPair::new(TagId(1), TagId(2))).is_none());
}

#[test]
fn extreme_configs_run() {
    // Smallest legal window and k.
    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::minutely())
        .window_ticks(2)
        .seed_count(1)
        .min_seed_count(1)
        .top_k(1)
        .min_pair_support(1)
        .build()
        .unwrap();
    let mut engine = EnBlogueEngine::new(config);
    let docs: Vec<Document> = (0..100)
        .map(|i| {
            Document::builder(i, Timestamp::from_minutes(i))
                .tags([TagId((i % 3) as u32), TagId(((i + 1) % 3) as u32)])
                .build()
        })
        .collect();
    let snapshots = engine.run_replay(&docs);
    assert_eq!(snapshots.len(), 100);
    for snap in &snapshots {
        assert!(snap.ranked.len() <= 1);
    }
}

#[test]
fn personalization_with_unknown_tags_is_neutral() {
    let interner = TagInterner::new();
    let known = interner.intern("known", TagKind::Hashtag);
    let snap = RankingSnapshot {
        tick: Tick(1),
        time: Timestamp::from_hours(1),
        ranked: vec![(TagPair::new(known, TagId(9999)), 0.5)],
    };
    // TagId(9999) was never interned: keyword matching must not panic and
    // must not match.
    let profile = UserProfile::new("u").with_keyword("whatever").with_alpha(5.0);
    let view = personalize(&snap, &profile, &interner);
    assert_eq!(view.ranked.len(), 1);
    assert_eq!(view.ranked[0].1, 0.5, "no spurious relevance for unknown tags");
}

#[test]
fn broker_survives_subscriber_churn_mid_stream() {
    let interner = TagInterner::new();
    let broker = PushBroker::new(interner.clone());
    let a = TagPair::new(TagId(1), TagId(2));
    // Subscribe, receive, drop, re-subscribe, repeat.
    for round in 0..5u64 {
        let rx = broker.subscribe(PushSubscription::new(UserProfile::new(format!("u{round}")), 5));
        broker.publish(&RankingSnapshot {
            tick: Tick(round),
            time: Timestamp::from_hours(round),
            ranked: vec![(a, 0.5 + round as f64 * 0.01)],
        });
        assert!(rx.try_recv().is_ok());
        drop(rx);
    }
    // One publish after all receivers dropped cleans the registry.
    broker.publish(&RankingSnapshot {
        tick: Tick(99),
        time: Timestamp::from_hours(99),
        ranked: vec![],
    });
    assert_eq!(broker.client_count(), 0);
}

#[test]
fn graph_rejects_malformed_plans() {
    let mut g = Graph::new(ReplaySource::new(vec![], TickSpec::hourly()));
    let a = g.attach(None, enblogue::stream::ops::PassThrough::new("a"));
    let b = g.attach(Some(a), enblogue::stream::ops::PassThrough::new("b"));
    assert!(g.connect(b, a).is_err(), "cycle must be rejected");
    assert!(g.connect(a, a).is_err(), "self-loop must be rejected");
    // The graph is still usable afterwards.
    assert!(enblogue::stream::exec::run_graph(&mut g).is_ok());
}

#[test]
fn merge_source_with_wildly_skewed_feeds() {
    // One feed with 1000 docs, one with 1: the merge must interleave by
    // time and terminate.
    let mut big: Vec<Document> = (0..1000).map(|i| doc(i, i / 100, &[1])).collect();
    big.sort_by_key(|d| d.timestamp);
    let small = vec![doc(5000, 5, &[2])];
    let merged = MergeSource::new(
        vec![
            Box::new(ReplaySource::new(big, TickSpec::hourly()))
                as Box<dyn enblogue::stream::Source>,
            Box::new(ReplaySource::new(small, TickSpec::hourly())),
        ],
        TickSpec::hourly(),
    );
    let mut g = Graph::new(merged);
    let sink = enblogue::stream::ops::CountingOp::new("c");
    let counts = sink.handle();
    g.attach(None, sink);
    enblogue::stream::exec::run_graph(&mut g).unwrap();
    let c = counts.lock().unwrap();
    assert_eq!(c.docs, 1001);
    assert_eq!(c.flushes, 1);
}

#[test]
fn interner_survives_adversarial_names() {
    let interner = TagInterner::new();
    let long_name = "a".repeat(10_000);
    let weird = ["", "   ", "\u{0}", "名字", long_name.as_str(), "\n\t"];
    for name in weird {
        let id = interner.intern(name, TagKind::Hashtag);
        assert_eq!(interner.get(name, TagKind::Hashtag), Some(id));
    }
    // Empty and whitespace-only names normalise to the same key.
    assert_eq!(
        interner.get("", TagKind::Hashtag),
        interner.get("   ", TagKind::Hashtag),
        "whitespace-only names collapse"
    );
}
