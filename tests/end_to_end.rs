//! End-to-end: synthetic archives through the full pipeline, evaluated
//! against planted ground truth.

use enblogue::prelude::*;
use enblogue_datagen::eval::evaluate;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use enblogue_datagen::twitter::{TweetConfig, TweetStream};

fn nyt_config() -> NytConfig {
    NytConfig {
        seed: 1001,
        days: 60,
        docs_per_day: 120,
        n_categories: 20,
        n_descriptors: 150,
        n_entities: 80,
        n_terms: 400,
        historic_events: 4,
    }
}

fn daily_engine_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .unwrap()
}

#[test]
fn nyt_archive_events_are_detected() {
    let archive = NytArchive::generate(&nyt_config());
    let mut engine = EnBlogueEngine::new(daily_engine_config());
    let snapshots = engine.run_replay(&archive.docs);
    assert_eq!(snapshots.len(), 60, "one snapshot per day");

    let report = evaluate(&snapshots, &archive.script, 10, 2 * Timestamp::DAY);
    assert!(
        report.recall >= 0.75,
        "at least 3 of 4 planted events must reach the top-10: {:#?}",
        report.outcomes
    );
    assert!(
        report.precision_at_k > 0.3,
        "rankings during events must mostly contain truth: {}",
        report.precision_at_k
    );
    // Detection must be timely: within half an event's typical duration.
    assert!(
        report.mean_latency_ms <= (6 * Timestamp::DAY) as f64,
        "mean latency too high: {} days",
        report.mean_latency_ms / Timestamp::DAY as f64
    );
}

#[test]
fn tweet_stream_stunt_reaches_top_k() {
    let stream = TweetStream::generate(&TweetConfig {
        seed: 77,
        hours: 24,
        tweets_per_minute: 10,
        n_hashtags: 200,
        n_terms: 300,
        planted_events: 2,
        sigmod_stunt: true,
    });
    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::new(30 * Timestamp::MINUTE))
        .window_ticks(12)
        .seed_count(30)
        .min_seed_count(5)
        .top_k(10)
        .build()
        .unwrap();
    let mut engine = EnBlogueEngine::new(config);
    let snapshots = engine.run_replay(&stream.docs);

    let (sigmod, athens) = stream.stunt_pair.unwrap();
    let pair = TagPair::new(sigmod, athens);
    let detected = snapshots.iter().any(|s| s.contains_in_top(pair, 10));
    assert!(detected, "the SIGMOD-Athens stunt must reach the top-10");

    // And it must not appear before the stunt begins.
    let stunt_start =
        stream.script.events().iter().find(|e| e.name == "sigmod-athens").unwrap().start;
    let early_hit =
        snapshots.iter().filter(|s| s.time < stunt_start).any(|s| s.contains_in_top(pair, 10));
    assert!(!early_hit, "stunt pair must not rank before it exists");
}

#[test]
fn pipeline_on_stream_graph_matches_standalone_engine() {
    let archive = NytArchive::generate(&NytConfig { days: 20, docs_per_day: 60, ..nyt_config() });
    // Standalone.
    let mut engine = EnBlogueEngine::new(daily_engine_config());
    let standalone = engine.run_replay(&archive.docs);
    // Through the operator DAG.
    let (_, handles) =
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
            .with_engine("e1", daily_engine_config())
            .run()
            .unwrap();
    let piped = handles[0].lock().unwrap().clone();
    assert_eq!(standalone, piped, "both execution paths must agree exactly");
}

#[test]
fn threaded_executor_agrees_with_sync() {
    let archive = NytArchive::generate(&NytConfig { days: 15, docs_per_day: 40, ..nyt_config() });
    let build = || {
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone())
            .with_engine("e1", daily_engine_config())
            .build()
            .unwrap()
    };
    let (mut sync_graph, sync_handles) = build();
    run_graph(&mut sync_graph).unwrap();
    let (threaded_graph, threaded_handles) = build();
    run_graph_threaded(threaded_graph, 256).unwrap();
    let a = sync_handles[0].lock().unwrap().clone();
    let b = threaded_handles[0].lock().unwrap().clone();
    assert_eq!(a, b, "executors must produce identical rankings");
}

#[test]
fn engine_metrics_are_plausible_on_real_workload() {
    let archive = NytArchive::generate(&nyt_config());
    let mut engine = EnBlogueEngine::new(daily_engine_config());
    engine.run_replay(&archive.docs);
    let m = engine.metrics();
    assert_eq!(m.docs_processed as usize, archive.len());
    assert_eq!(m.ticks_closed, 60);
    assert!(m.seeds_current > 0 && m.seeds_current <= 30);
    assert!(m.pairs_discovered > 0);
    assert!(m.pairs_tracked <= 100_000);
}
