//! EnBlogue vs the TwitterMonitor-style burst baseline on the same
//! event-annotated workload (experiment P7's correctness backbone).

use enblogue::baseline::burst::{BaselineConfig, BurstBaseline};
use enblogue::prelude::*;
use enblogue_datagen::eval::evaluate;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 909,
        days: 60,
        docs_per_day: 120,
        n_categories: 20,
        n_descriptors: 150,
        n_entities: 60,
        n_terms: 300,
        historic_events: 5,
    })
}

/// Runs the baseline over the archive and converts its trends into
/// ranking snapshots (covered pairs, scored by trend strength) so both
/// systems are evaluated with the same metric.
fn baseline_snapshots(archive: &NytArchive) -> Vec<RankingSnapshot> {
    let mut baseline = BurstBaseline::new(BaselineConfig {
        history_ticks: 14,
        window_ticks: 5,
        gamma: 2.0,
        min_support: 5,
        group_jaccard: 0.05,
    });
    let spec = TickSpec::daily();
    let mut snapshots = Vec::new();
    let mut open = Tick(0);
    for doc in &archive.docs {
        let tick = spec.tick_of(doc.timestamp);
        while open < tick {
            let trends = baseline.close_tick(open);
            let mut ranked: Vec<(TagPair, f64)> = Vec::new();
            for trend in trends {
                for pair in trend.covered_pairs() {
                    ranked.push((pair, trend.score));
                }
            }
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            ranked.truncate(10);
            snapshots.push(RankingSnapshot { tick: open, time: spec.end_of(open), ranked });
            open = open.next();
        }
        baseline.observe_doc(doc);
    }
    snapshots
}

#[test]
fn enblogue_beats_burst_baseline_on_pair_events() {
    let archive = archive();

    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .unwrap();
    let mut engine = EnBlogueEngine::new(config);
    let enblogue_snaps = engine.run_replay(&archive.docs);
    let enblogue_report = evaluate(&enblogue_snaps, &archive.script, 10, 2 * Timestamp::DAY);

    let baseline_snaps = baseline_snapshots(&archive);
    let baseline_report = evaluate(&baseline_snaps, &archive.script, 10, 2 * Timestamp::DAY);

    // The paper's claim, quantified: correlation-shift detection finds the
    // pair events; single-tag burst detection largely cannot, because the
    // planted events barely move individual tag volumes.
    assert!(
        enblogue_report.recall >= 0.8,
        "enblogue recall too low: {} ({:#?})",
        enblogue_report.recall,
        enblogue_report.outcomes
    );
    assert!(
        enblogue_report.recall > baseline_report.recall,
        "enblogue ({}) must beat the baseline ({})",
        enblogue_report.recall,
        baseline_report.recall
    );
    assert!(
        baseline_report.recall <= 0.5,
        "baseline should miss most correlation-only events: {}",
        baseline_report.recall
    );
}

#[test]
fn both_systems_run_clean_on_background_only_streams() {
    // No events planted: EnBlogue should stay (almost) silent; this guards
    // against an engine that "wins" by alarming constantly.
    let quiet = NytArchive::generate(&NytConfig {
        seed: 909,
        days: 40,
        docs_per_day: 120,
        n_categories: 20,
        n_descriptors: 150,
        n_entities: 60,
        n_terms: 300,
        historic_events: 0,
    });
    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .unwrap();
    let mut engine = EnBlogueEngine::new(config);
    let snapshots = engine.run_replay(&quiet.docs);

    // Scores that do appear must be background noise: small relative to
    // the scores event streams produce (≈ 0.2+).
    let max_score = snapshots
        .iter()
        .flat_map(|s| s.ranked.iter().map(|&(_, score)| score))
        .fold(0.0f64, f64::max);
    assert!(
        max_score < 0.2,
        "background-only stream should not produce event-grade scores: {max_score}"
    );
}
