//! Reproducibility: identical seeds ⇒ identical workloads ⇒ identical
//! rankings, across every layer of the system.

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use enblogue_datagen::rss::{generate_feeds, RssConfig};
use enblogue_datagen::twitter::{TweetConfig, TweetStream};

fn nyt_config(seed: u64) -> NytConfig {
    NytConfig {
        seed,
        days: 20,
        docs_per_day: 60,
        n_categories: 12,
        n_descriptors: 60,
        n_entities: 40,
        n_terms: 200,
        historic_events: 2,
    }
}

#[test]
fn whole_stack_is_reproducible() {
    let run = || {
        let archive = NytArchive::generate(&nyt_config(42));
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(5)
            .seed_count(15)
            .min_seed_count(2)
            .top_k(10)
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(config);
        engine.run_replay(&archive.docs)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical snapshots");
}

#[test]
fn different_seeds_give_different_streams() {
    let a = NytArchive::generate(&nyt_config(1));
    let b = NytArchive::generate(&nyt_config(2));
    let differing = a.docs.iter().zip(&b.docs).filter(|(x, y)| x.tags != y.tags).count();
    assert!(differing > a.len() / 2, "seeds must actually matter: {differing} differing docs");
}

#[test]
fn tweet_and_rss_generators_are_reproducible() {
    let tweet_cfg = TweetConfig {
        seed: 7,
        hours: 3,
        tweets_per_minute: 4,
        n_hashtags: 60,
        n_terms: 100,
        planted_events: 1,
        sigmod_stunt: true,
    };
    let t1 = TweetStream::generate(&tweet_cfg);
    let t2 = TweetStream::generate(&tweet_cfg);
    assert_eq!(t1.docs, t2.docs);
    assert_eq!(t1.script.truth_pairs(), t2.script.truth_pairs());

    let rss_cfg =
        RssConfig { seed: 8, feeds: 3, hours: 5, items_per_hour: 6, n_tags: 60, theme_bias: 0.7 };
    let (f1, _, _) = generate_feeds(&rss_cfg);
    let (f2, _, _) = generate_feeds(&rss_cfg);
    for (a, b) in f1.iter().zip(&f2) {
        assert_eq!(a.docs, b.docs);
    }
}

#[test]
fn merged_multi_feed_stream_is_deterministic() {
    let rss_cfg =
        RssConfig { seed: 9, feeds: 3, hours: 8, items_per_hour: 8, n_tags: 60, theme_bias: 0.7 };
    let run = || {
        let (feeds, interner, _) = generate_feeds(&rss_cfg);
        let sources: Vec<Box<dyn enblogue::stream::Source>> = feeds
            .into_iter()
            .map(|f| {
                Box::new(ReplaySource::new(f.docs, TickSpec::hourly()))
                    as Box<dyn enblogue::stream::Source>
            })
            .collect();
        let merged = MergeSource::new(sources, TickSpec::hourly());
        let mut graph = Graph::new(merged);
        let config = EnBlogueConfig::builder()
            .window_ticks(4)
            .seed_count(10)
            .min_seed_count(2)
            .top_k(5)
            .build()
            .unwrap();
        let op = enblogue::core::ops::EngineOp::new("e1", EnBlogueEngine::new(config));
        let handle = op.handle();
        graph.attach(None, op);
        run_graph(&mut graph).unwrap();
        let out = handle.lock().unwrap().clone();
        (out, interner.len())
    };
    let (a, len_a) = run();
    let (b, len_b) = run();
    assert_eq!(a, b);
    assert_eq!(len_a, len_b);
    assert!(!a.is_empty());
}
