//! Show Case 2 — live data with the "SIGMOD Athens" stunt.
//!
//! Simulates the demo's live-tweet scenario: background hashtag chatter
//! plus planted events, including the paper's attempt to push a topic
//! about SIGMOD and Athens into the top ranks. A time-lapse view shows the
//! pair's rank trajectory as the stunt unfolds, and the ranking is pushed
//! to a subscriber through the broker (the APE front-end substitute).
//!
//! Run with: `cargo run --release --example live_stream`

use enblogue::prelude::*;
use enblogue_datagen::twitter::{TweetConfig, TweetStream};

fn main() {
    let config = TweetConfig {
        seed: 0x51_60_0d,
        hours: 48,
        tweets_per_minute: 15,
        n_hashtags: 400,
        n_terms: 800,
        planted_events: 3,
        sigmod_stunt: true,
    };
    println!(
        "Generating {}h tweet stream at {} tweets/min …",
        config.hours, config.tweets_per_minute
    );
    let stream = TweetStream::generate(&config);
    let (sigmod, athens) = stream.stunt_pair.expect("stunt enabled");
    let stunt_pair = TagPair::new(sigmod, athens);
    println!(
        "{} tweets; stunt: #sigmod + #athens rising from hour {}\n",
        stream.len(),
        config.hours / 2
    );

    // The demo's "time lapse view over a sliding window of the past couple
    // of days": half-hour ticks, 12h correlation window.
    let engine_config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::new(30 * Timestamp::MINUTE))
        .window_ticks(24)
        .seed_count(40)
        .min_seed_count(5)
        .top_k(10)
        .build()
        .expect("valid config");

    // Subscribe a client before the stream runs: updates arrive by push.
    let broker = PushBroker::new(stream.interner.clone());
    let inbox = broker.subscribe(PushSubscription::new(UserProfile::new("attendee"), 5));

    let (_, handles) =
        PipelineBuilder::new(stream.docs.clone(), engine_config.tick_spec, stream.interner.clone())
            .with_engine_and_broker("live", engine_config, broker.clone())
            .run()
            .expect("pipeline runs");
    let snapshots = handles[0].lock().unwrap().clone();

    // Rank trajectory of the stunt pair (time lapse, one row per 2 hours).
    println!("time lapse — rank of [#sigmod + #athens] (top-10, '-' = unranked):");
    for snap in snapshots.iter().filter(|s| s.tick.0 % 4 == 0) {
        let hours = snap.time.as_millis() / Timestamp::HOUR;
        let marker = match snap.rank_of(stunt_pair) {
            Some(rank) => format!("#{:<2} {}", rank + 1, "■".repeat(10usize.saturating_sub(rank))),
            None => "-".to_string(),
        };
        println!("  h{hours:<3} {marker}");
    }

    let best = snapshots
        .iter()
        .filter_map(|s| s.rank_of(stunt_pair).map(|r| (s.tick, r)))
        .min_by_key(|&(_, r)| r);
    match best {
        Some((tick, rank)) => println!(
            "\nThe stunt topic peaked at rank #{} (tick {tick}) — \"we may be able to see a topic \
             regarding SIGMOD and Athens in a highly ranked position\" ✓",
            rank + 1
        ),
        None => println!("\nThe stunt topic never ranked — increase its rate or lower k."),
    }

    // What the subscribed client actually received, push-based.
    let mut updates = 0;
    let mut saw_stunt = false;
    while let Ok(update) = inbox.try_recv() {
        updates += 1;
        if update.ranking.ranked.iter().any(|&(p, _)| p == stunt_pair) {
            saw_stunt = true;
        }
    }
    let (published, delivered) = broker.stats();
    println!(
        "\nPush broker: {published} snapshots published, {delivered} updates delivered; \
         this client received {updates} (stunt visible: {saw_stunt})"
    );
}
