//! Show Case 3 — personalization: different users, different topics.
//!
//! Runs one NYT-style archive through the engine **with the serving
//! tier attached**: every tick close publishes an immutable,
//! epoch-versioned `TickView` through a lock-free `QueryHandle`, and all
//! user-facing reads — drill-down, keyword search, per-desk rankings —
//! go through that handle's `QueryView` API instead of poking the
//! engine. Persistent `Subscription`s show the multi-tenant contract:
//! the engine pass happens once per publish, each subscription only
//! re-ranks the shared snapshot against its profile.
//!
//! Run with: `cargo run --release --example personalization`

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};
use std::sync::Arc;

fn show(view: &PersonalizedRanking, interner: &TagInterner, label: &str) {
    println!("{label}:");
    if view.ranked.is_empty() {
        println!("  (nothing matches this profile right now)");
    }
    for (rank, &(pair, score)) in view.ranked.iter().take(5).enumerate() {
        println!(
            "  #{} [{} + {}]  score {:.3}",
            rank + 1,
            interner.display(pair.lo()),
            interner.display(pair.hi()),
            score
        );
    }
    println!();
}

fn main() {
    let archive = NytArchive::generate(&NytConfig {
        seed: 3,
        days: 90,
        docs_per_day: 150,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 100,
        n_terms: 500,
        historic_events: 6,
    });
    let mut engine = EnBlogueEngine::new(
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .expect("valid config"),
    );
    // Attach the serving tier before the stream starts: from here on,
    // every tick close atomically publishes a view readers can query
    // concurrently — no locks, no waiting for ingest.
    let handle = QueryHandle::attach(&mut engine, archive.interner.clone(), ServeConfig::default());

    // Replay the archive day by day. Mid-stream we grab (and *hold*) the
    // first published view whose ranking spans two distinct categories —
    // the demo's "pre-defined topic categories" need something to
    // disagree on. The held `Arc<TickView>` is immutable: ingest keeps
    // running and publishing new epochs past it, and it never changes.
    let cat_of = |pair: TagPair| {
        [pair.lo(), pair.hi()]
            .into_iter()
            .find(|&t| archive.interner.kind(t) == Some(TagKind::Category))
    };
    let spec = TickSpec::daily();
    let mut held: Option<(Arc<TickView>, TagId, TagId)> = None;
    let mut start = 0;
    while start < archive.docs.len() {
        let tick = spec.tick_of(archive.docs[start].timestamp);
        let end = archive.docs[start..]
            .iter()
            .position(|d| spec.tick_of(d.timestamp) != tick)
            .map_or(archive.docs.len(), |n| start + n);
        engine.process_docs(&archive.docs[start..end]);
        engine.close_tick(tick);
        start = end;
        if held.is_none() {
            if let Some(view) = handle.view() {
                let cats: Vec<TagId> = view
                    .ranking()
                    .filter(|s| s.ranked.len() >= 3)
                    .map(|s| s.ranked.iter().filter_map(|&(p, _)| cat_of(p)).collect())
                    .unwrap_or_default();
                if let Some(&a) = cats.first() {
                    if let Some(b) = cats.iter().copied().find(|&c| c != a) {
                        held = Some((view, a, b));
                    }
                }
            }
        }
    }
    let (snap, cat_a, cat_b) = held.expect("some tick ranks topics from two categories");
    println!(
        "Held view: epoch {} (tick {}), {} topics — the server has moved on to epoch {}.\n",
        QueryView::epoch(&*snap),
        snap.tick().expect("held view has a closed tick"),
        snap.ranking().map_or(0, |s| s.ranked.len()),
        handle.epoch(),
    );
    let neutral = snap.personalized(&UserProfile::new("visitor")).expect("view has a ranking");
    show(&neutral, &archive.interner, "anonymous visitor (no profile)");

    let desk_a = UserProfile::new("desk-a")
        .with_category(cat_a)
        .try_with_alpha(4.0)
        .expect("alpha is finite and non-negative");
    let desk_b = UserProfile::new("desk-b")
        .with_category(cat_b)
        .try_with_alpha(4.0)
        .expect("alpha is finite and non-negative");
    let view_a = snap.personalized(&desk_a).expect("view has a ranking");
    let view_b = snap.personalized(&desk_b).expect("view has a ranking");
    show(
        &view_a,
        &archive.interner,
        &format!("desk A (prefers `{}`)", archive.interner.display(cat_a)),
    );
    show(
        &view_b,
        &archive.interner,
        &format!("desk B (prefers `{}`)", archive.interner.display(cat_b)),
    );
    println!(
        "overlap of the two desks' top-3: jaccard = {:.2}\n",
        jaccard_at_k(&view_a, &view_b, 3)
    );

    // Per-tag drill-down, straight off the held view ("click a tag"):
    // which ranked topics contain desk A's category, and how did the
    // best one's correlation develop?
    let drill = snap.pairs_with_tag(cat_a);
    println!(
        "drill-down on `{}`: {} ranked topic(s)",
        archive.interner.display(cat_a),
        drill.len()
    );
    if let Some(&(pair, _)) = drill.first() {
        let history = snap.pair_history(pair).expect("ranked pairs carry history");
        println!(
            "  [{} + {}] correlation history (oldest → newest): {}\n",
            archive.interner.display(pair.lo()),
            archive.interner.display(pair.hi()),
            history.iter().map(|h| format!("{h:.3}")).collect::<Vec<_>>().join(" → ")
        );
    }

    // A continuous keyword query ("term based descriptions of their field
    // of interest"), strict: only matching topics are shown. This one is
    // a live `Subscription` on the handle — it follows the stream head,
    // edge-triggered, and shares each publish's engine pass with every
    // other subscriber.
    let live = handle.view().expect("the stream has closed ticks");
    let live_ranked = live.ranking().expect("live view has a ranking").ranked;
    let keyword = archive.interner.display(live_ranked[live_ranked.len() - 1].0.hi());
    let mut searcher = handle
        .subscribe(
            UserProfile::new("searcher")
                .try_with_weighted_keyword(&keyword, 1.0)
                .expect("keyword weight is finite and non-negative")
                .try_with_alpha(8.0)
                .expect("alpha is finite and non-negative")
                .filter_only(),
        )
        .with_top_k(5);
    let (epoch, view_s) = searcher.poll().expect("a view is published");
    println!("continuous query `{keyword}` delivered at epoch {epoch} (strict):");
    show(&view_s, &archive.interner, "  matches");
    assert!(searcher.poll().is_none(), "edge-triggered: the same epoch is delivered once");

    // "Users can change their preferences at any time and observe the
    // impact" — subscribe the changed profile, and the very next read
    // reflects it.
    let changed = handle.subscribe(
        UserProfile::new("desk-a")
            .with_category(cat_b)
            .try_with_alpha(4.0)
            .expect("alpha is finite and non-negative"),
    );
    let view_changed = changed.current().expect("a view is published");
    let live_a = handle.personalized(&desk_a).expect("a view is published");
    println!(
        "desk A switches preference to `{}` — top topic changes from [{} + {}] to [{} + {}]",
        archive.interner.display(cat_b),
        archive.interner.display(live_a.ranked[0].0.lo()),
        archive.interner.display(live_a.ranked[0].0.hi()),
        archive.interner.display(view_changed.ranked[0].0.lo()),
        archive.interner.display(view_changed.ranked[0].0.hi()),
    );
}
