//! Show Case 3 — personalization: different users, different topics.
//!
//! Runs one NYT-style archive through the engine and shows how keyword
//! queries and category preferences give three users "completely different
//! or just differently ordered emergent topics" — and how changing
//! preferences takes effect immediately.
//!
//! Run with: `cargo run --release --example personalization`

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn show(view: &PersonalizedRanking, interner: &TagInterner, label: &str) {
    println!("{label}:");
    if view.ranked.is_empty() {
        println!("  (nothing matches this profile right now)");
    }
    for (rank, &(pair, score)) in view.ranked.iter().take(5).enumerate() {
        println!(
            "  #{} [{} + {}]  score {:.3}",
            rank + 1,
            interner.display(pair.lo()),
            interner.display(pair.hi()),
            score
        );
    }
    println!();
}

fn main() {
    let archive = NytArchive::generate(&NytConfig {
        seed: 3,
        days: 90,
        docs_per_day: 150,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 100,
        n_terms: 500,
        historic_events: 6,
    });
    let mut engine = EnBlogueEngine::new(
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .expect("valid config"),
    );
    let snapshots = engine.run_replay(&archive.docs);
    // Pick a snapshot whose ranking spans two distinct categories (the
    // demo's "pre-defined topic categories" need something to disagree on).
    let cat_of = |pair: TagPair| {
        [pair.lo(), pair.hi()]
            .into_iter()
            .find(|&t| archive.interner.kind(t) == Some(TagKind::Category))
    };
    let (snap, cat_a, cat_b) = snapshots
        .iter()
        .rev()
        .filter(|s| s.ranked.len() >= 3)
        .find_map(|s| {
            let cats: Vec<TagId> = s.ranked.iter().filter_map(|&(p, _)| cat_of(p)).collect();
            let first = *cats.first()?;
            let second = cats.iter().copied().find(|&c| c != first)?;
            Some((s, first, second))
        })
        .expect("some tick ranks topics from two categories");
    println!("Global ranking at {} ({} topics):\n", snap.tick, snap.ranked.len());
    let neutral = personalize(snap, &UserProfile::new("visitor"), &archive.interner);
    show(&neutral, &archive.interner, "anonymous visitor (no profile)");

    let desk_a = UserProfile::new("desk-a").with_category(cat_a).with_alpha(4.0);
    let desk_b = UserProfile::new("desk-b").with_category(cat_b).with_alpha(4.0);
    let view_a = personalize(snap, &desk_a, &archive.interner);
    let view_b = personalize(snap, &desk_b, &archive.interner);
    show(
        &view_a,
        &archive.interner,
        &format!("desk A (prefers `{}`)", archive.interner.display(cat_a)),
    );
    show(
        &view_b,
        &archive.interner,
        &format!("desk B (prefers `{}`)", archive.interner.display(cat_b)),
    );
    println!(
        "overlap of the two desks' top-3: jaccard = {:.2}\n",
        jaccard_at_k(&view_a, &view_b, 3)
    );

    // A continuous keyword query ("term based descriptions of their field
    // of interest"), strict: only matching topics are shown.
    let keyword = archive.interner.display(snap.ranked[snap.ranked.len() - 1].0.hi());
    let searcher =
        UserProfile::new("searcher").with_keyword(&keyword).with_alpha(8.0).filter_only();
    let view_s = personalize(snap, &searcher, &archive.interner);
    show(&view_s, &archive.interner, &format!("continuous query `{keyword}` (strict)"));

    // "Users can change their preferences at any time and observe the
    // impact" — same snapshot, new profile, new view.
    let changed = UserProfile::new("desk-a").with_category(cat_b).with_alpha(4.0);
    let view_changed = personalize(snap, &changed, &archive.interner);
    println!(
        "desk A switches preference to `{}` — top topic changes from [{} + {}] to [{} + {}]",
        archive.interner.display(cat_b),
        archive.interner.display(view_a.ranked[0].0.lo()),
        archive.interner.display(view_a.ranked[0].0.hi()),
        archive.interner.display(view_changed.ranked[0].0.lo()),
        archive.interner.display(view_changed.ranked[0].0.hi()),
    );
}
