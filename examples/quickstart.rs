//! Quickstart: detect an emergent topic in a hand-rolled stream.
//!
//! Recreates the paper's motivating example: the eruption of
//! Eyjafjallajökull suddenly correlates the `volcano` tag with the
//! `air traffic` tag — a pair no taxonomy had a category for.
//!
//! Run with: `cargo run --example quickstart`

use enblogue::prelude::*;

fn main() {
    let interner = TagInterner::new();
    let volcano = interner.intern("volcano", TagKind::Hashtag);
    let air_traffic = interner.intern("air traffic", TagKind::Hashtag);
    let weather = interner.intern("weather", TagKind::Hashtag);
    let football = interner.intern("football", TagKind::Hashtag);

    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(8)
        .seed_count(10)
        .min_seed_count(2)
        .top_k(5)
        .build()
        .expect("valid config");
    let mut engine = EnBlogueEngine::new(config);

    // 36 hours of stream: ordinary chatter, then at hour 30 the eruption —
    // `volcano` posts suddenly also talk about air traffic.
    let mut id = 0;
    let mut docs = Vec::new();
    for hour in 0..36u64 {
        for minute_slot in 0..12u64 {
            id += 1;
            let ts = Timestamp::from_hours(hour).plus(minute_slot * 5 * Timestamp::MINUTE);
            let tags: Vec<TagId> = match minute_slot % 4 {
                0 => vec![weather, volcano],
                1 if hour >= 30 => vec![volcano, air_traffic], // the emergent pair
                1 => vec![air_traffic],
                2 => vec![football],
                _ => vec![weather],
            };
            docs.push(Document::builder(id, ts).tags(tags).build());
        }
    }

    let snapshots = engine.run_replay(&docs);

    println!("EnBlogue quickstart — emergent topics over {} hourly ticks\n", snapshots.len());
    for snap in snapshots.iter().filter(|s| s.tick.0 % 6 == 5 || !s.ranked.is_empty()) {
        if snap.ranked.is_empty() {
            println!("{:>4}  (no emergent topics)", snap.tick.to_string());
            continue;
        }
        print!("{:>4}  ", snap.tick.to_string());
        for (rank, &(pair, score)) in snap.ranked.iter().enumerate() {
            print!(
                "{}[{} + {}] score {:.3}  ",
                if rank == 0 { "→ " } else { "" },
                interner.display(pair.lo()),
                interner.display(pair.hi()),
                score
            );
        }
        println!();
    }

    let last = snapshots.last().expect("stream is non-empty");
    let top = last.ranked.first().expect("the eruption must rank");
    println!(
        "\nTop emergent topic at the end: [{} + {}] (score {:.3})",
        interner.display(top.0.lo()),
        interner.display(top.0.hi()),
        top.1
    );
    assert_eq!(top.0, TagPair::new(volcano, air_traffic));
    println!(
        "As expected: the volcano/air-traffic correlation shift, not any popular tag by itself."
    );
}
