//! Quickstart: detect an emergent topic in a hand-rolled stream.
//!
//! Recreates the paper's motivating example: the eruption of
//! Eyjafjallajökull suddenly correlates the `volcano` tag with the
//! `air traffic` tag — a pair no taxonomy had a category for.
//!
//! Also shows the serving tier: a `QueryHandle` attached before the
//! stream answers top-k, seed-membership, and drill-down queries from
//! lock-free published views — the way a web frontend would read the
//! engine, concurrent with ingest.
//!
//! Run with: `cargo run --example quickstart`

use enblogue::prelude::*;

fn main() {
    let interner = TagInterner::new();
    let volcano = interner.intern("volcano", TagKind::Hashtag);
    let air_traffic = interner.intern("air traffic", TagKind::Hashtag);
    let weather = interner.intern("weather", TagKind::Hashtag);
    let football = interner.intern("football", TagKind::Hashtag);

    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(8)
        .seed_count(10)
        .min_seed_count(2)
        .top_k(5)
        .build()
        .expect("valid config");
    let mut engine = EnBlogueEngine::new(config);
    // The serving tier: attach once, before the stream. Every tick close
    // publishes an immutable view; the handle (cheap-clone, Send + Sync)
    // answers queries from it without ever locking against ingest.
    let serve = QueryHandle::attach(&mut engine, interner.clone(), ServeConfig::default());

    // 36 hours of stream: ordinary chatter, then at hour 30 the eruption —
    // `volcano` posts suddenly also talk about air traffic.
    let mut id = 0;
    let mut docs = Vec::new();
    for hour in 0..36u64 {
        for minute_slot in 0..12u64 {
            id += 1;
            let ts = Timestamp::from_hours(hour).plus(minute_slot * 5 * Timestamp::MINUTE);
            let tags: Vec<TagId> = match minute_slot % 4 {
                0 => vec![weather, volcano],
                1 if hour >= 30 => vec![volcano, air_traffic], // the emergent pair
                1 => vec![air_traffic],
                2 => vec![football],
                _ => vec![weather],
            };
            docs.push(Document::builder(id, ts).tags(tags).build());
        }
    }

    let snapshots = engine.run_replay(&docs);

    println!("EnBlogue quickstart — emergent topics over {} hourly ticks\n", snapshots.len());
    for snap in snapshots.iter().filter(|s| s.tick.0 % 6 == 5 || !s.ranked.is_empty()) {
        if snap.ranked.is_empty() {
            println!("{:>4}  (no emergent topics)", snap.tick.to_string());
            continue;
        }
        print!("{:>4}  ", snap.tick.to_string());
        for (rank, &(pair, score)) in snap.ranked.iter().enumerate() {
            print!(
                "{}[{} + {}] score {:.3}  ",
                if rank == 0 { "→ " } else { "" },
                interner.display(pair.lo()),
                interner.display(pair.hi()),
                score
            );
        }
        println!();
    }

    // Read the result the way a serving frontend would: through the
    // published view, not the engine. `QueryView` is the one API for
    // top-k, seed membership, and per-pair drill-down.
    let &(top, score) = serve.top_k(1).first().expect("the eruption must rank");
    println!(
        "\nTop emergent topic at the end (epoch {}): [{} + {}] (score {:.3})",
        serve.epoch(),
        serve.tag_name(top.lo()).expect("ranked tags carry names"),
        serve.tag_name(top.hi()).expect("ranked tags carry names"),
        score
    );
    assert_eq!(top, TagPair::new(volcano, air_traffic));
    assert_eq!(serve.epoch(), snapshots.len() as u64, "one published view per closed tick");
    assert!(serve.is_seed(volcano), "the eruption made `volcano` a seed");
    let history = serve.pair_history(top).expect("ranked pairs carry history");
    println!(
        "Its correlation history (oldest → newest): {}",
        history.iter().map(|h| format!("{h:.3}")).collect::<Vec<_>>().join(" → ")
    );
    println!(
        "As expected: the volcano/air-traffic correlation shift, not any popular tag by itself."
    );
}
