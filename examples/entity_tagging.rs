//! Entity tagging end-to-end: gazetteer, redirects, ontology filter, and
//! tag/entity mixture topics.
//!
//! Demonstrates §3's entity pipeline: a ≤4-term sliding window over the
//! text matched against article titles, redirects mapping aliases to one
//! unique name, and a YAGO-style type filter — then a full pipeline where
//! an *entity* pairs with a regular tag to form the emergent topic.
//!
//! Run with: `cargo run --release --example entity_tagging`

use enblogue::prelude::*;
use enblogue_core::ops::{EngineOp, EntityTagOp};
use enblogue_datagen::entities::{EntityClass, EntityUniverse};
use std::sync::Arc;

fn main() {
    // A synthetic Wikipedia/YAGO substitute: titles, aliases, type DAG.
    let universe = EntityUniverse::generate(300, 99);
    println!(
        "Entity universe: {} entities, {} dictionary phrases ({} redirects)\n",
        universe.gazetteer.entity_count(),
        universe.gazetteer.phrase_count(),
        universe.gazetteer.redirect_count(),
    );

    // 1. Plain tagging with redirect resolution.
    let tagger = Arc::new(EntityTagger::new(Arc::clone(&universe.gazetteer)));
    let person = universe
        .of_class(EntityClass::Person)
        .find(|e| !e.aliases.is_empty())
        .expect("aliased person");
    let place = universe.of_class(EntityClass::Place).next().expect("a place");
    let text = format!(
        "breaking: {} was seen near {} yesterday — {} declined to comment",
        person.name, place.name, person.aliases[0]
    );
    println!("text: {text}");
    for mention in tagger.tag_text(&text) {
        println!(
            "  tokens {}..{} → `{}`",
            mention.token_start,
            mention.token_start + mention.token_len,
            mention.name
        );
    }
    println!("  (note: the alias `{}` resolved to the canonical name)\n", person.aliases[0]);

    // 2. Ontology-filtered tagging: "focus on particular entity types".
    let person_type = universe.type_of_class(EntityClass::Person);
    let people_only = EntityTagger::new(Arc::clone(&universe.gazetteer))
        .with_ontology(Arc::clone(&universe.ontology))
        .with_type_filter(vec![person_type]);
    let filtered = people_only.tag_text(&text);
    println!("people-only filter finds {} mention(s):", filtered.len());
    for mention in &filtered {
        println!("  `{}`", mention.name);
    }

    // 3. Tag/entity mixtures as emergent topics: a stream where the
    // `protest` hashtag suddenly co-occurs with one specific person.
    let interner = TagInterner::new();
    let protest = interner.intern("protest", TagKind::Hashtag);
    let chatter = interner.intern("chatter", TagKind::Hashtag);
    let mut docs = Vec::new();
    let mut id = 0;
    for hour in 0..24u64 {
        for slot in 0..10u64 {
            id += 1;
            let ts = Timestamp::from_hours(hour).plus(slot * 6 * Timestamp::MINUTE);
            let mention_person = hour >= 18 && slot % 2 == 0;
            let body = if mention_person {
                format!("crowds gather as {} arrives", person.name)
            } else {
                format!("nothing happening near {}", place.name)
            };
            let tag = if slot % 3 == 0 { chatter } else { protest };
            docs.push(Document::builder(id, ts).tag(tag).text(body).build());
        }
    }

    let engine_config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(8)
        .seed_count(10)
        .min_seed_count(2)
        .top_k(5)
        .build()
        .expect("valid config");
    let mut graph = Graph::new(ReplaySource::new(docs, TickSpec::hourly()));
    let tag_node = graph.attach(None, EntityTagOp::new(Arc::clone(&tagger), interner.clone()));
    let engine_op = EngineOp::new("mixtures", EnBlogueEngine::new(engine_config));
    let handle = engine_op.handle();
    graph.attach(Some(tag_node), engine_op);
    run_graph(&mut graph).expect("pipeline runs");

    let snaps = handle.lock().unwrap();
    let last = snaps.last().expect("stream closed at least one tick");
    println!("\nEmergent topics after the hour-18 shift (tag/entity mixtures):");
    for (rank, &(pair, score)) in last.ranked.iter().enumerate() {
        let kind = |t: TagId| interner.kind(t).map(|k| k.label()).unwrap_or("?");
        println!(
            "  #{} [{} ({}) + {} ({})]  score {:.3}",
            rank + 1,
            interner.display(pair.lo()),
            kind(pair.lo()),
            interner.display(pair.hi()),
            kind(pair.hi()),
            score
        );
    }
    let person_entity = interner.get(&person.name, TagKind::Entity).expect("entity was interned");
    let mixture = TagPair::new(protest, person_entity);
    assert!(last.rank_of(mixture).is_some(), "the protest/person mixture must rank: {last:?}");
    println!("\nThe hashtag–person pair ranked — a topic no single-tag view could name.");
}
