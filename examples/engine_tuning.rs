//! Comparing parameter settings in real time via multi-plan sharing.
//!
//! §4.1: the engine "allows us to compare emergent topic rankings obtained
//! from different parameter settings in real-time" because parallel query
//! plans share their common prefix. This example runs four differently
//! configured engines over one stream in a single graph and prints how
//! their rankings (and the work saved by sharing) differ.
//!
//! Run with: `cargo run --release --example engine_tuning`

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn main() {
    let archive = NytArchive::generate(&NytConfig {
        seed: 11,
        days: 60,
        docs_per_day: 150,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 80,
        n_terms: 400,
        historic_events: 4,
    });
    println!("Workload: {} docs over 60 days, 4 planted events\n", archive.len());

    let base = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(5);

    let variants: Vec<(&str, EnBlogueConfig)> = vec![
        ("jaccard+ewma", base.clone().build().unwrap()),
        (
            "overlap+ewma",
            base.clone().measure(MeasureKind::Set(CorrelationMeasure::Overlap)).build().unwrap(),
        ),
        ("jaccard+holt", base.clone().predictor(PredictorKind::Holt(0.4, 0.2)).build().unwrap()),
        (
            "jaccard+relerr",
            base.clone().normalization(ErrorNormalization::Relative).build().unwrap(),
        ),
    ];

    let mut builder =
        PipelineBuilder::new(archive.docs.clone(), TickSpec::daily(), archive.interner.clone());
    for (name, config) in &variants {
        builder = builder.with_engine(*name, config.clone());
    }
    let (stats, handles) = builder.run().expect("pipeline runs");

    println!(
        "One source drove {} plans; total operator events processed: {}\n",
        variants.len(),
        stats.total_processed()
    );

    // Show each plan's final top-3 side by side.
    for ((name, _), handle) in variants.iter().zip(&handles) {
        let snaps = handle.lock().unwrap();
        let last = snaps.last().expect("ticks closed");
        print!("{name:<16}");
        for &(pair, score) in last.ranked.iter().take(3) {
            print!(
                " [{} + {}] {:.3} |",
                archive.interner.display(pair.lo()),
                archive.interner.display(pair.hi()),
                score
            );
        }
        println!();
    }

    // Agreement matrix at k=5 across variants, averaged over all ticks.
    println!("\nmean top-5 agreement (jaccard) across all ticks:");
    let all: Vec<Vec<RankingSnapshot>> =
        handles.iter().map(|h| h.lock().unwrap().clone()).collect();
    print!("{:<16}", "");
    for (name, _) in &variants {
        print!("{name:>16}");
    }
    println!();
    for (i, (name_i, _)) in variants.iter().enumerate() {
        print!("{name_i:<16}");
        for (j, _) in variants.iter().enumerate() {
            let mut total = 0.0;
            let mut n = 0;
            for (a, b) in all[i].iter().zip(&all[j]) {
                let ka: std::collections::HashSet<TagPair> =
                    a.ranked.iter().take(5).map(|&(p, _)| p).collect();
                let kb: std::collections::HashSet<TagPair> =
                    b.ranked.iter().take(5).map(|&(p, _)| p).collect();
                if ka.is_empty() && kb.is_empty() {
                    continue;
                }
                total += ka.intersection(&kb).count() as f64 / ka.union(&kb).count() as f64;
                n += 1;
            }
            print!("{:>16.2}", if n == 0 { 1.0 } else { total / n as f64 });
        }
        println!();
    }
    println!(
        "\nDifferent measures/predictors agree on the strong events and diverge on the \
         borderline topics — the comparison the demo runs live."
    );
}
