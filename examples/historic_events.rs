//! Show Case 1 — revisiting historic events on an NYT-style archive.
//!
//! Generates a synthetic archive with scripted events (elections,
//! hurricanes, sport finals…), replays it through EnBlogue, and reports
//! the ranking around each event date plus the aggregate quality metrics
//! against the planted ground truth.
//!
//! Run with: `cargo run --release --example historic_events`

use enblogue::prelude::*;
use enblogue_datagen::eval::evaluate;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn main() {
    let config = NytConfig {
        seed: 20110612, // the conference date
        days: 120,
        docs_per_day: 200,
        n_categories: 24,
        n_descriptors: 200,
        n_entities: 150,
        n_terms: 600,
        historic_events: 6,
    };
    println!(
        "Generating NYT-style archive: {} days × {} docs/day …",
        config.days, config.docs_per_day
    );
    let archive = NytArchive::generate(&config);
    println!("{} documents, {} scripted historic events\n", archive.len(), archive.script.len());

    let engine_config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(40)
        .min_seed_count(3)
        .top_k(10)
        .build()
        .expect("valid config");
    let mut engine = EnBlogueEngine::new(engine_config);
    let snapshots = engine.run_replay(&archive.docs);

    // Per-event report: what did the ranking look like mid-event?
    println!(
        "{:<16} {:<28} {:>10} {:>12} {:>10}",
        "event", "pair", "start", "peak rank", "latency"
    );
    println!("{}", "-".repeat(80));
    let report = evaluate(&snapshots, &archive.script, 10, 2 * Timestamp::DAY);
    for (event, outcome) in archive.script.events().iter().zip(&report.outcomes) {
        let pair_names = format!(
            "{} + {}",
            archive.interner.display(event.tag_a),
            archive.interner.display(event.tag_b)
        );
        println!(
            "{:<16} {:<28} {:>10} {:>12} {:>10}",
            event.name,
            pair_names,
            format!("day {}", event.start.as_millis() / Timestamp::DAY),
            outcome.best_rank.map_or("miss".into(), |r| format!("#{}", r + 1)),
            outcome
                .latency_ms
                .map_or("-".into(), |ms| format!("{:.1} d", ms as f64 / Timestamp::DAY as f64)),
        );
    }

    println!("\nAggregate quality vs planted ground truth (top-10):");
    println!("  recall          {:>6.2}", report.recall);
    println!("  precision@k     {:>6.2}", report.precision_at_k);
    println!("  mean latency    {:>6.2} days", report.mean_latency_ms / Timestamp::DAY as f64);

    // "Users can specify their own time ranges": show the ranking on the
    // day the first event was detected.
    let event = &archive.script.events()[0];
    let detection_day = event.start.as_millis() / Timestamp::DAY
        + report.outcomes[0].latency_ms.unwrap_or(0) / Timestamp::DAY;
    if let Some(snap) = snapshots.iter().find(|s| s.tick.0 == detection_day) {
        println!(
            "\nTop emergent topics the day `{}` was detected (day {detection_day}):",
            event.name
        );
        for (rank, &(pair, score)) in snap.ranked.iter().take(5).enumerate() {
            println!(
                "  #{} [{} + {}]  score {:.3}",
                rank + 1,
                archive.interner.display(pair.lo()),
                archive.interner.display(pair.hi()),
                score
            );
        }
    }

    let m = engine.metrics();
    println!(
        "\nEngine: {} docs, {} ticks, {} pairs discovered, {} tracked at end, {} seeds",
        m.docs_processed, m.ticks_closed, m.pairs_discovered, m.pairs_tracked, m.seeds_current
    );
}
