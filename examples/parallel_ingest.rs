//! Shard-partitioned parallel ingestion, end to end.
//!
//! Replays a synthetic NYT archive through the `enblogue-ingest`
//! subsystem: documents are cut into per-tick batches, tokenized and
//! pair-partitioned on a bounded-queue worker pool, and applied to the
//! engine's sharded pair state one worker per shard. The run is compared
//! against a classic sequential replay — rankings are byte-identical;
//! only the wall clock changes — and a small worker sweep prints the
//! throughput picture.
//!
//! Run with: `cargo run --release --example parallel_ingest`

use enblogue::prelude::*;
use enblogue_datagen::nyt::{NytArchive, NytConfig};

fn main() {
    let archive = NytArchive::generate(&NytConfig {
        seed: 0x1E6E57,
        days: 90,
        docs_per_day: 200,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 120,
        n_terms: 500,
        historic_events: 5,
    });
    println!("NYT archive: {} docs over 90 days\n", archive.docs.len());

    let config = || {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .expect("valid config")
    };

    // The reference: classic one-document-at-a-time feeding.
    let start = std::time::Instant::now();
    let mut sequential = EnBlogueEngine::new(config());
    let baseline = sequential.run_replay(&archive.docs);
    let sequential_secs = start.elapsed().as_secs_f64();
    println!(
        "sequential replay: {:>8.0} docs/s ({} snapshots)",
        archive.docs.len() as f64 / sequential_secs,
        baseline.len()
    );

    // The same replay through the ingestion pipeline at several worker
    // counts. Worker count 0 = the engine's `ingest_workers` default
    // (derived from available_parallelism).
    println!("\nIngestPipeline (batch 256, queue depth 8):");
    for workers in [1usize, 2, 4, 0] {
        let mut engine = EnBlogueEngine::new(config());
        let ingest = IngestConfig { batch_size: 256, queue_depth: 8, workers };
        let (snapshots, stats) = engine.run_replay_ingest(&archive.docs, &ingest);
        assert_eq!(snapshots, baseline, "parallel ingestion changed the rankings!");
        let label =
            if workers == 0 { format!("auto({})", stats.workers) } else { workers.to_string() };
        println!(
            "  workers {label:>8}: {:>8.0} docs/s | {} batches, {} tick closes, {} queue stalls",
            stats.docs_per_sec(),
            stats.batches,
            stats.tick_closes,
            stats.queue_full_stalls,
        );
    }
    println!("\nrankings verified byte-identical to sequential feeding in every run");

    // What the stream actually found, for flavour.
    if let Some(snapshot) = baseline.iter().rev().find(|s| !s.ranked.is_empty()) {
        println!("\nlast non-empty ranking (tick {}):", snapshot.tick.0);
        for (pair, score) in snapshot.ranked.iter().take(5) {
            let name = |t: TagId| {
                archive.interner.name(t).map_or_else(|| format!("tag-{}", t.0), |n| n.to_string())
            };
            println!("  {:>6.3}  {} + {}", score, name(pair.lo()), name(pair.hi()));
        }
    }
}
