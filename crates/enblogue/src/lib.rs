//! # EnBlogue — emergent topic detection in Web 2.0 streams
//!
//! A complete Rust implementation of the EnBlogue system (Alvanaki,
//! Michel, Ramamritham, Weikum — SIGMOD 2011): continuous monitoring of
//! document streams for *emergent topics*, i.e. sudden, unpredictable
//! shifts in the correlation of tag pairs — as opposed to mere single-tag
//! burstiness.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `enblogue-types` | documents, tags, pairs, ticks, rankings |
//! | [`window`] | `enblogue-window` | sliding windows, sketches, decay, top-k |
//! | [`stats`] | `enblogue-stats` | correlation measures, divergences, predictors |
//! | [`stream`] | `enblogue-stream` | push-based operator DAG + executors |
//! | [`telemetry`] | `enblogue-telemetry` | metrics registry, latency histograms, span tracing, exporters |
//! | [`ingest`] | `enblogue-ingest` | shard-partitioned, batched, backpressured ingestion |
//! | [`entity`] | `enblogue-entity` | gazetteer + ontology entity tagging |
//! | [`core`] | `enblogue-core` | the EnBlogue engine, personalization, push broker |
//! | [`serve`] | `enblogue-serve` | epoch-versioned read snapshots, lock-free concurrent query handle |
//! | [`datagen`] | `enblogue-datagen` | synthetic NYT / Twitter / RSS workloads |
//! | [`baseline`] | `enblogue-baseline` | TwitterMonitor-style burst baseline |
//!
//! The [`prelude`] pulls in the names needed by typical applications; see
//! the `examples/` directory for runnable end-to-end scenarios
//! (`quickstart`, `historic_events`, `live_stream`, `personalization`,
//! `entity_tagging`, `engine_tuning`).
//!
//! # Architecture: one stage pipeline, many surfaces
//!
//! EnBlogue's systems contribution is *shared shift computation*: however
//! many query plans or personalization subscriptions are registered, the
//! expensive per-tick loop runs once. The workspace enforces that with a
//! single implementation of the tick semantics and thin adapters above it:
//!
//! ```text
//!     EnBlogueEngine          EngineOp (DAG sink)        IngestPipeline
//!     (process_doc[s] /       (Event::Doc / DocBatch /   (bounded queue →
//!      close_tick)             TickBoundary, sync or      partition workers →
//!           │                  threaded executor)         re-sequenced apply)
//!           │                        │                          │
//!           └────────────┬──────────┴──────────────────────────┘
//!                        ▼
//!        enblogue_core::stages::StagePipeline
//!   seed-select → term-window → pair-count → shift-score → rank-emit
//!                        │
//!                        ▼
//!        ShardedPairRegistry (pool of hash-shard stores)
//!   versioned RoutingTable: key ──mix──► slot ──assignment──► store
//!   store 0 … store N−1: pair states + windowed pair counts
//!   ingest and close fan out via enblogue_stream::exec::fanout;
//!   a load-aware rebalancer may re-target slots at tick close
//! ```
//!
//! **Which layer owns what:**
//!
//! * `enblogue-types` owns the shard *routing* contract: the versioned
//!   slot → shard [`types::RoutingTable`] behind a [`types::SharedRouting`]
//!   handle (keys hash onto the fixed slot grid with
//!   [`types::shard_of_packed`]); every layer that partitions pair state
//!   consults the same table, and rebalances are published as new epochs.
//! * `enblogue-window` owns sharded *storage*
//!   ([`window::ShardedWindowedCounter`]): per-shard windowed pair counts,
//!   exact because each key lives in exactly one shard.
//! * `enblogue-stats` owns the scoring math; `stats::ShiftScorer` is
//!   statically asserted `Send + Sync` so one instance is shared by
//!   reference across shard workers.
//! * `enblogue-stream` owns *execution*: the operator DAG with structural
//!   plan sharing, the synchronous and threaded executors, and the
//!   [`stream::exec::fanout`] primitive that drives shard-parallel close.
//! * `enblogue-ingest` owns the *feed path*: the pure partitioning
//!   pre-pass ([`ingest::partition_docs`] buckets each batch's pair
//!   observations by shard) and the backpressured
//!   [`ingest::IngestPipeline`] (bounded work queue, partitioning worker
//!   pool, deterministic re-sequencing). `enblogue-core` implements the
//!   sink side over the stage pipeline, so both surfaces ingest in
//!   shard-partitioned batches.
//! * `enblogue-core` owns the *semantics*: the five
//!   [`core::stages::TickStage`]s, the
//!   [`core::pairs::ShardedPairRegistry`], and the two adapters
//!   ([`core::engine::EnBlogueEngine`], [`core::ops::EngineOp`]).
//!   Personalization re-ranks the shared snapshot at delivery time — it
//!   never re-runs the pipeline. The [`core::query::QueryView`] trait is
//!   the one read API over closed-tick results: top-k, drill-down, pair
//!   stats/history, seeds, personalization.
//! * `enblogue-serve` owns the *concurrent read path*: an installed
//!   publish stage exports each closed tick into an immutable,
//!   epoch-versioned [`serve::TickView`] behind a lock-free cell;
//!   [`serve::QueryHandle`] clones answer `QueryView` queries from any
//!   number of threads while ingest continues, and per-user
//!   [`serve::Subscription`]s share each publish's engine pass.
//!
//! Sharding (`EnBlogueConfig::shards`), shard-parallel close
//! (`EnBlogueConfig::parallel_close`), load-aware rebalancing
//! (`EnBlogueConfig::rebalance`) and the entire ingestion subsystem
//! (batch size, queue depth, worker count) are pure execution knobs:
//! rankings are byte-identical for any setting (enforced by
//! `tests/stage_parity.rs`). Batched ingestion
//! ([`core::engine::EnBlogueEngine::process_docs`], or
//! [`core::engine::EnBlogueEngine::run_replay_ingest`] for the fully
//! parallel path) is the hot entry point for replay drivers; defaults for
//! the execution knobs are derived from `available_parallelism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use enblogue_baseline as baseline;
pub use enblogue_core as core;
pub use enblogue_datagen as datagen;
pub use enblogue_entity as entity;
pub use enblogue_ingest as ingest;
pub use enblogue_serve as serve;
pub use enblogue_stats as stats;
pub use enblogue_stream as stream;
pub use enblogue_telemetry as telemetry;
pub use enblogue_types as types;
pub use enblogue_window as window;

/// The names most applications need.
pub mod prelude {
    pub use enblogue_core::config::{
        EnBlogueConfig, EventTimeConfig, MeasureKind, SeedStrategy, SnapshotConfig,
        SourceGuardConfig, TelemetryConfig,
    };
    pub use enblogue_core::engine::{EnBlogueEngine, EngineMetrics};
    pub use enblogue_core::ingest::ReplayIngest;
    pub use enblogue_core::notify::{PushBroker, PushSubscription, RankingUpdate};
    pub use enblogue_core::ops::{EngineOp, EntityTagOp};
    pub use enblogue_core::pairs::{
        RebalanceConfig, RegistryStats, ScoringMode, ShardedPairRegistry,
    };
    pub use enblogue_core::personalization::{
        jaccard_at_k, personalize, personalize_shared, resolve_ranked_names, PersonalizedRanking,
        UserProfile,
    };
    pub use enblogue_core::pipeline::PipelineBuilder;
    pub use enblogue_core::query::{EngineQuery, PublishDetail, QueryView, ViewData};
    pub use enblogue_core::rankdiff::{
        diff as ranking_diff, kendall_tau, RankChange, RankingHistory,
    };
    pub use enblogue_core::snapshot::{latest_checkpoint, list_checkpoints, SnapshotStats};
    pub use enblogue_core::stages::{StagePipeline, TickStage};
    pub use enblogue_entity::gazetteer::{Gazetteer, GazetteerBuilder};
    pub use enblogue_entity::ontology::{Ontology, OntologyBuilder};
    pub use enblogue_entity::tagger::EntityTagger;
    pub use enblogue_ingest::partition::{partition_docs, PartitionSpec, PartitionedBatch};
    pub use enblogue_ingest::pipeline::{IngestConfig, IngestPipeline, IngestSink, IngestStats};
    pub use enblogue_serve::{QueryHandle, ServeConfig, Subscription, TickView};
    pub use enblogue_stats::correlation::CorrelationMeasure;
    pub use enblogue_stats::predict::PredictorKind;
    pub use enblogue_stats::shift::ErrorNormalization;
    pub use enblogue_stream::exec::{run_graph, run_graph_threaded};
    pub use enblogue_stream::graph::Graph;
    pub use enblogue_stream::source::{MergeSource, ReplaySource};
    pub use enblogue_telemetry::{EventKind, Telemetry};
    pub use enblogue_types::{
        Document, RankingSnapshot, SourceId, TagId, TagInterner, TagKind, TagPair, Tick, TickSpec,
        Timestamp,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reaches_everything() {
        use crate::prelude::*;
        let interner = TagInterner::new();
        let _ = interner.intern("smoke", TagKind::Hashtag);
        let config = EnBlogueConfig::builder().build().unwrap();
        let _ = EnBlogueEngine::new(config);
    }
}
