//! Entity tagging substrate for EnBlogue.
//!
//! From §3 of the paper: "When a document arrives, we scan its text content
//! with a sliding window of up to 4 successive terms, and check whether
//! substrings of these match the title of a Wikipedia article. These checks
//! also consider Wikipedia redirects which we use to map different namings
//! of a single entity to one unique name. In addition, we have implemented
//! a second filter consisting of lookups in an ontology (e.g., YAGO), which
//! allows us to focus on particular entity types."
//!
//! * [`mod@tokenize`] — text → normalised term sequence,
//! * [`gazetteer`] — the title dictionary with redirect canonicalisation
//!   (the Wikipedia substitute; populated synthetically by
//!   `enblogue-datagen`),
//! * [`ontology`] — a typed DAG with transitive subtype filtering (the
//!   YAGO substitute),
//! * [`tagger`] — the sliding-window longest-match tagger combining all
//!   three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gazetteer;
pub mod ontology;
pub mod tagger;
pub mod tokenize;

pub use gazetteer::{EntityId, Gazetteer, GazetteerBuilder};
pub use ontology::{Ontology, OntologyBuilder, TypeId};
pub use tagger::{EntityTagger, Mention};
pub use tokenize::tokenize;
