//! Text tokenisation for the entity tagger.

/// A token with its character span in the original text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalised (lowercased) token text.
    pub text: String,
    /// Byte offset of the token start in the original text.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Splits `text` into lowercase alphanumeric tokens with byte spans.
///
/// Everything that is not alphanumeric separates tokens; apostrophes inside
/// words are dropped ("O'Brien" → `obrien`) so dictionary lookups are
/// robust to typographic variation. This matches the normalisation used by
/// the gazetteer, which is what makes the ≤4-term window lookups hit.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        if ch.is_alphanumeric() {
            if current.is_empty() {
                start = i;
            }
            for lower in ch.to_lowercase() {
                // Lowercasing can expand into combining marks (e.g. Turkish
                // 'İ' → "i\u{307}"); keep only alphanumeric output so that
                // normalisation is idempotent and dictionary keys stay
                // mark-free.
                if lower.is_alphanumeric() {
                    current.push(lower);
                }
            }
        } else if ch == '\'' && !current.is_empty() {
            // Swallow intra-word apostrophes without splitting.
            continue;
        } else if !current.is_empty() {
            tokens.push(Token { text: std::mem::take(&mut current), start, end: i });
        }
    }
    if !current.is_empty() {
        tokens.push(Token { text: current, start, end: text.len() });
    }
    tokens
}

/// Normalises a phrase the same way [`tokenize`] normalises text: lowercase
/// tokens joined by single spaces.
///
/// Gazetteer keys are built with this, guaranteeing that a title matches
/// its own occurrence in text.
pub fn normalize_phrase(phrase: &str) -> String {
    let tokens = tokenize(phrase);
    let mut out = String::with_capacity(phrase.len());
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let tokens = tokenize("Eyjafjallajokull erupts; air-traffic halted!");
        assert_eq!(texts(&tokens), vec!["eyjafjallajokull", "erupts", "air", "traffic", "halted"]);
    }

    #[test]
    fn lowercases_unicode() {
        let tokens = tokenize("Eyjafjallajökull ERUPTS");
        assert_eq!(texts(&tokens), vec!["eyjafjallajökull", "erupts"]);
    }

    #[test]
    fn keeps_numbers() {
        let tokens = tokenize("hurricane season 2007");
        assert_eq!(texts(&tokens), vec!["hurricane", "season", "2007"]);
    }

    #[test]
    fn spans_point_into_original_text() {
        let text = "Iceland: volcano";
        let tokens = tokenize(text);
        assert_eq!(&text[tokens[0].start..tokens[0].end], "Iceland");
        assert_eq!(&text[tokens[1].start..tokens[1].end], "volcano");
    }

    #[test]
    fn apostrophes_do_not_split_words() {
        let tokens = tokenize("O'Brien's book");
        assert_eq!(texts(&tokens), vec!["obriens", "book"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ...").is_empty());
    }

    #[test]
    fn normalize_phrase_is_canonical() {
        assert_eq!(normalize_phrase("Barack  OBAMA"), "barack obama");
        assert_eq!(normalize_phrase("air-traffic control"), "air traffic control");
        assert_eq!(normalize_phrase(""), "");
        // Idempotent.
        assert_eq!(normalize_phrase("barack obama"), "barack obama");
    }
}
