//! The title dictionary: the Wikipedia substitute.
//!
//! Maps normalised phrases of up to [`Gazetteer::MAX_NGRAM`] terms to
//! canonical entities. Redirects ("map different namings of a single entity
//! to one unique name", §3) are first-class: an alias phrase resolves to
//! the same [`EntityId`] as its canonical title.

use crate::tokenize::normalize_phrase;
use enblogue_types::FxHashMap;
use std::sync::Arc;

/// Identifier of a canonical entity within a [`Gazetteer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Immutable phrase → entity dictionary with redirects.
#[derive(Debug, Clone)]
pub struct Gazetteer {
    /// normalised phrase → entity. Contains titles *and* redirect aliases.
    phrases: FxHashMap<String, EntityId>,
    /// Canonical names by entity id.
    canonical: Vec<Arc<str>>,
    /// Longest phrase (in tokens) present; lookups never probe beyond this.
    max_phrase_len: usize,
    redirect_count: usize,
}

impl Gazetteer {
    /// The paper's sliding-window bound: titles of up to 4 successive terms.
    pub const MAX_NGRAM: usize = 4;

    /// Starts building a gazetteer.
    pub fn builder() -> GazetteerBuilder {
        GazetteerBuilder::default()
    }

    /// Number of canonical entities.
    pub fn entity_count(&self) -> usize {
        self.canonical.len()
    }

    /// Number of redirect aliases.
    pub fn redirect_count(&self) -> usize {
        self.redirect_count
    }

    /// Number of lookup keys (titles + redirects).
    pub fn phrase_count(&self) -> usize {
        self.phrases.len()
    }

    /// Longest phrase length in tokens (≤ [`Self::MAX_NGRAM`]).
    pub fn max_phrase_len(&self) -> usize {
        self.max_phrase_len
    }

    /// The canonical name of `id`.
    pub fn canonical_name(&self, id: EntityId) -> Option<Arc<str>> {
        self.canonical.get(id.index()).cloned()
    }

    /// Looks up an already-normalised phrase (tokens joined by single
    /// spaces, lowercase). Resolves through redirects.
    pub fn lookup_normalized(&self, phrase: &str) -> Option<EntityId> {
        self.phrases.get(phrase).copied()
    }

    /// Looks up an arbitrary phrase, normalising it first.
    pub fn lookup(&self, phrase: &str) -> Option<EntityId> {
        self.lookup_normalized(&normalize_phrase(phrase))
    }

    /// Iterates canonical names with their ids.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &Arc<str>)> {
        self.canonical.iter().enumerate().map(|(i, name)| (EntityId(i as u32), name))
    }
}

/// Builder for [`Gazetteer`].
#[derive(Debug, Default)]
pub struct GazetteerBuilder {
    phrases: FxHashMap<String, EntityId>,
    canonical: Vec<Arc<str>>,
    max_phrase_len: usize,
    redirect_count: usize,
}

impl GazetteerBuilder {
    /// Adds a canonical article title, returning its entity id.
    ///
    /// Titles longer than [`Gazetteer::MAX_NGRAM`] tokens are rejected:
    /// the tagger's window never probes them, so accepting them would
    /// create dead dictionary weight.
    ///
    /// Adding the same title twice returns the existing id.
    ///
    /// # Panics
    /// Panics if the title normalises to an empty phrase or exceeds the
    /// n-gram bound.
    pub fn add_title(&mut self, title: &str) -> EntityId {
        let normalized = normalize_phrase(title);
        assert!(!normalized.is_empty(), "entity title must contain at least one token");
        let token_len = normalized.split(' ').count();
        assert!(
            token_len <= Gazetteer::MAX_NGRAM,
            "title `{title}` has {token_len} tokens, max is {}",
            Gazetteer::MAX_NGRAM
        );
        if let Some(&id) = self.phrases.get(&normalized) {
            return id;
        }
        let id = EntityId(u32::try_from(self.canonical.len()).expect("too many entities"));
        self.canonical.push(Arc::from(normalized.as_str()));
        self.phrases.insert(normalized, id);
        self.max_phrase_len = self.max_phrase_len.max(token_len);
        id
    }

    /// Adds a redirect: `alias` resolves to the entity of `canonical`.
    ///
    /// The canonical title is added implicitly if absent (Wikipedia dumps
    /// list redirects independent of page order).
    ///
    /// # Panics
    /// Panics on empty or over-long aliases, like [`Self::add_title`].
    pub fn add_redirect(&mut self, alias: &str, canonical: &str) -> EntityId {
        let id = self.add_title(canonical);
        let alias_norm = normalize_phrase(alias);
        assert!(!alias_norm.is_empty(), "redirect alias must contain at least one token");
        let token_len = alias_norm.split(' ').count();
        assert!(
            token_len <= Gazetteer::MAX_NGRAM,
            "alias `{alias}` has {token_len} tokens, max is {}",
            Gazetteer::MAX_NGRAM
        );
        // An alias that is already a canonical title keeps its own entity
        // (titles win over redirects, as in Wikipedia).
        if let std::collections::hash_map::Entry::Vacant(e) = self.phrases.entry(alias_norm) {
            e.insert(id);
            self.redirect_count += 1;
            self.max_phrase_len = self.max_phrase_len.max(token_len);
        }
        id
    }

    /// Finalises the dictionary.
    pub fn build(self) -> Gazetteer {
        Gazetteer {
            phrases: self.phrases,
            canonical: self.canonical,
            max_phrase_len: self.max_phrase_len,
            redirect_count: self.redirect_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titles_resolve_to_themselves() {
        let mut b = Gazetteer::builder();
        let obama = b.add_title("Barack Obama");
        let g = b.build();
        assert_eq!(g.lookup("barack obama"), Some(obama));
        assert_eq!(g.lookup("Barack  OBAMA"), Some(obama));
        assert_eq!(g.canonical_name(obama).as_deref(), Some("barack obama"));
        assert_eq!(g.entity_count(), 1);
    }

    #[test]
    fn redirects_resolve_to_canonical() {
        let mut b = Gazetteer::builder();
        let id = b.add_redirect("Obama", "Barack Obama");
        let g = b.build();
        assert_eq!(g.lookup("obama"), Some(id));
        assert_eq!(g.lookup("barack obama"), Some(id));
        assert_eq!(g.entity_count(), 1, "redirect does not create an entity");
        assert_eq!(g.redirect_count(), 1);
        assert_eq!(g.phrase_count(), 2);
    }

    #[test]
    fn duplicate_titles_are_idempotent() {
        let mut b = Gazetteer::builder();
        let a = b.add_title("Iceland");
        let b2 = b.add_title("iceland");
        assert_eq!(a, b2);
        assert_eq!(b.build().entity_count(), 1);
    }

    #[test]
    fn titles_win_over_redirects() {
        let mut b = Gazetteer::builder();
        let georgia_state = b.add_title("Georgia");
        let _usa = b.add_redirect("Georgia", "United States"); // conflicting alias
        let g = b.build();
        assert_eq!(g.lookup("georgia"), Some(georgia_state), "existing title is not overwritten");
        assert_eq!(g.redirect_count(), 0);
    }

    #[test]
    fn unknown_phrases_miss() {
        let mut b = Gazetteer::builder();
        b.add_title("volcano");
        let g = b.build();
        assert_eq!(g.lookup("volcanoes"), None);
        assert_eq!(g.lookup(""), None);
    }

    #[test]
    fn max_phrase_len_tracks_longest() {
        let mut b = Gazetteer::builder();
        b.add_title("iceland");
        assert_eq!(b.max_phrase_len, 1);
        b.add_title("icelandic air traffic control");
        let g = b.build();
        assert_eq!(g.max_phrase_len(), 4);
    }

    #[test]
    #[should_panic(expected = "max is 4")]
    fn overlong_title_rejected() {
        let mut b = Gazetteer::builder();
        b.add_title("one two three four five");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_title_rejected() {
        let mut b = Gazetteer::builder();
        b.add_title("!!!");
    }

    #[test]
    fn entities_iterator_is_complete() {
        let mut b = Gazetteer::builder();
        b.add_title("a");
        b.add_title("b");
        b.add_redirect("c", "a");
        let g = b.build();
        let names: Vec<String> = g.entities().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
