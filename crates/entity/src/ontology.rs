//! A YAGO-style ontology: typed entities over a subtype DAG.
//!
//! The paper's second filter: "lookups in an ontology (e.g., YAGO), which
//! allows us to focus on particular entity types." Types form a DAG
//! (`politician ⊑ person`, `city ⊑ location`); an entity passes a type
//! filter if any of its direct types is a (transitive) subtype of any
//! allowed type.

use crate::gazetteer::EntityId;
use enblogue_types::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// Identifier of a type within an [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct TypeNode {
    name: Arc<str>,
    parents: Vec<TypeId>,
}

/// Immutable type DAG + entity typing.
#[derive(Debug, Clone)]
pub struct Ontology {
    types: Vec<TypeNode>,
    by_name: FxHashMap<String, TypeId>,
    /// Direct types per entity.
    entity_types: FxHashMap<EntityId, Vec<TypeId>>,
    /// Transitive supertype closure per type (includes the type itself).
    closure: Vec<FxHashSet<TypeId>>,
}

impl Ontology {
    /// Starts building an ontology.
    pub fn builder() -> OntologyBuilder {
        OntologyBuilder::default()
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Resolves a type name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(&name.trim().to_lowercase()).copied()
    }

    /// The name of `id`.
    pub fn type_name(&self, id: TypeId) -> Option<Arc<str>> {
        self.types.get(id.index()).map(|t| t.name.clone())
    }

    /// Whether `sub` is `sup` or a transitive subtype of it.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.closure.get(sub.index()).is_some_and(|c| c.contains(&sup))
    }

    /// The direct types of `entity` (empty if untyped).
    pub fn types_of(&self, entity: EntityId) -> &[TypeId] {
        self.entity_types.get(&entity).map_or(&[], |v| v.as_slice())
    }

    /// All types of `entity` including transitive supertypes.
    pub fn all_types_of(&self, entity: EntityId) -> FxHashSet<TypeId> {
        let mut out = FxHashSet::default();
        for &t in self.types_of(entity) {
            out.extend(self.closure[t.index()].iter().copied());
        }
        out
    }

    /// Whether `entity` has `wanted` among its types, transitively.
    pub fn entity_has_type(&self, entity: EntityId, wanted: TypeId) -> bool {
        self.types_of(entity).iter().any(|&t| self.is_subtype(t, wanted))
    }

    /// Whether `entity` matches *any* of `allowed` (transitively).
    ///
    /// An empty `allowed` slice means "no filter" and admits everything —
    /// including untyped entities.
    pub fn passes_filter(&self, entity: EntityId, allowed: &[TypeId]) -> bool {
        if allowed.is_empty() {
            return true;
        }
        allowed.iter().any(|&wanted| self.entity_has_type(entity, wanted))
    }
}

/// Builder for [`Ontology`].
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    types: Vec<TypeNode>,
    by_name: FxHashMap<String, TypeId>,
    entity_types: FxHashMap<EntityId, Vec<TypeId>>,
}

impl OntologyBuilder {
    /// Adds (or finds) a root type.
    pub fn add_type(&mut self, name: &str) -> TypeId {
        self.add_subtype(name, &[])
    }

    /// Adds (or finds) a type with the given parent types.
    ///
    /// Parents must already exist; re-adding a type merges parent lists.
    ///
    /// # Panics
    /// Panics if the name is empty or a parent id is unknown.
    pub fn add_subtype(&mut self, name: &str, parents: &[TypeId]) -> TypeId {
        let key = name.trim().to_lowercase();
        assert!(!key.is_empty(), "type name must not be empty");
        for p in parents {
            assert!(p.index() < self.types.len(), "unknown parent type {p:?}");
        }
        if let Some(&id) = self.by_name.get(&key) {
            for &p in parents {
                assert_ne!(p, id, "type `{key}` cannot be its own parent");
                if !self.types[id.index()].parents.contains(&p) {
                    self.types[id.index()].parents.push(p);
                }
            }
            return id;
        }
        let id = TypeId(u32::try_from(self.types.len()).expect("too many types"));
        self.types.push(TypeNode { name: Arc::from(key.as_str()), parents: parents.to_vec() });
        self.by_name.insert(key, id);
        id
    }

    /// Declares that `entity` has direct type `type_id`.
    ///
    /// # Panics
    /// Panics if `type_id` is unknown.
    pub fn assign(&mut self, entity: EntityId, type_id: TypeId) {
        assert!(type_id.index() < self.types.len(), "unknown type {type_id:?}");
        let types = self.entity_types.entry(entity).or_default();
        if !types.contains(&type_id) {
            types.push(type_id);
        }
    }

    /// Finalises the ontology, computing the supertype closure.
    ///
    /// # Panics
    /// Panics if the parent relation contains a cycle (a type DAG is
    /// acyclic by construction in YAGO; a cycle is a data bug).
    pub fn build(self) -> Ontology {
        let n = self.types.len();
        let mut closure: Vec<FxHashSet<TypeId>> = vec![FxHashSet::default(); n];
        // Depth-first closure with cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            White,
            Grey,
            Black,
        }
        let mut state = vec![State::White; n];
        fn visit(
            i: usize,
            types: &[TypeNode],
            state: &mut [State],
            closure: &mut [FxHashSet<TypeId>],
        ) {
            match state[i] {
                State::Black => return,
                State::Grey => panic!("cycle in type hierarchy at `{}`", types[i].name),
                State::White => {}
            }
            state[i] = State::Grey;
            let mut acc = FxHashSet::default();
            acc.insert(TypeId(i as u32));
            let parents = types[i].parents.clone();
            for p in parents {
                visit(p.index(), types, state, closure);
                acc.extend(closure[p.index()].iter().copied());
            }
            closure[i] = acc;
            state[i] = State::Black;
        }
        for i in 0..n {
            visit(i, &self.types, &mut state, &mut closure);
        }
        Ontology {
            types: self.types,
            by_name: self.by_name,
            entity_types: self.entity_types,
            closure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ontology, TypeId, TypeId, TypeId, TypeId) {
        let mut b = Ontology::builder();
        let person = b.add_type("person");
        let politician = b.add_subtype("politician", &[person]);
        let location = b.add_type("location");
        let city = b.add_subtype("city", &[location]);
        b.assign(EntityId(0), politician); // obama
        b.assign(EntityId(1), city); // athens
        (b.build(), person, politician, location, city)
    }

    #[test]
    fn subtype_is_reflexive_and_transitive() {
        let mut b = Ontology::builder();
        let a = b.add_type("a");
        let bb = b.add_subtype("b", &[a]);
        let c = b.add_subtype("c", &[bb]);
        let ont = b.build();
        assert!(ont.is_subtype(c, c), "reflexive");
        assert!(ont.is_subtype(c, bb));
        assert!(ont.is_subtype(c, a), "transitive");
        assert!(!ont.is_subtype(a, c), "not symmetric");
    }

    #[test]
    fn multiple_inheritance_closure() {
        let mut b = Ontology::builder();
        let person = b.add_type("person");
        let artist = b.add_subtype("artist", &[person]);
        let politician = b.add_subtype("politician", &[person]);
        let actor_politician = b.add_subtype("actor politician", &[artist, politician]);
        let ont = b.build();
        assert!(ont.is_subtype(actor_politician, artist));
        assert!(ont.is_subtype(actor_politician, politician));
        assert!(ont.is_subtype(actor_politician, person));
    }

    #[test]
    fn entity_typing_and_filters() {
        let (ont, person, politician, location, _city) = sample();
        assert!(ont.entity_has_type(EntityId(0), politician));
        assert!(ont.entity_has_type(EntityId(0), person), "via closure");
        assert!(!ont.entity_has_type(EntityId(0), location));

        assert!(ont.passes_filter(EntityId(0), &[person]));
        assert!(!ont.passes_filter(EntityId(1), &[person]));
        assert!(ont.passes_filter(EntityId(1), &[location, person]));
        assert!(ont.passes_filter(EntityId(99), &[]), "empty filter admits untyped entities");
        assert!(
            !ont.passes_filter(EntityId(99), &[person]),
            "typed filter rejects untyped entities"
        );
    }

    #[test]
    fn all_types_of_includes_closure() {
        let (ont, person, politician, _, _) = sample();
        let all = ont.all_types_of(EntityId(0));
        assert!(all.contains(&politician));
        assert!(all.contains(&person));
        assert_eq!(ont.types_of(EntityId(0)), &[politician], "direct types stay direct");
    }

    #[test]
    fn names_resolve_case_insensitively() {
        let (ont, person, ..) = sample();
        assert_eq!(ont.type_id("Person"), Some(person));
        assert_eq!(ont.type_id(" PERSON "), Some(person));
        assert_eq!(ont.type_id("nonexistent"), None);
        assert_eq!(ont.type_name(person).as_deref(), Some("person"));
    }

    #[test]
    fn readding_type_merges_parents() {
        let mut b = Ontology::builder();
        let a = b.add_type("a");
        let c = b.add_type("c");
        let x1 = b.add_subtype("x", &[a]);
        let x2 = b.add_subtype("x", &[c]);
        assert_eq!(x1, x2);
        let ont = b.build();
        assert!(ont.is_subtype(x1, a));
        assert!(ont.is_subtype(x1, c));
    }

    #[test]
    #[should_panic(expected = "cycle in type hierarchy")]
    fn cycles_panic_at_build() {
        let mut b = Ontology::builder();
        let a = b.add_type("a");
        let bb = b.add_subtype("b", &[a]);
        // Force a cycle by re-adding `a` with parent `b`.
        b.add_subtype("a", &[bb]);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "unknown parent type")]
    fn unknown_parent_panics() {
        let mut b = Ontology::builder();
        b.add_subtype("x", &[TypeId(42)]);
    }
}
