//! The sliding-window entity tagger.
//!
//! §3: "we scan its text content with a sliding window of up to 4
//! successive terms, and check whether substrings of these match the title
//! of a Wikipedia article", with redirect canonicalisation and an optional
//! ontology type filter.

use crate::gazetteer::{EntityId, Gazetteer};
use crate::ontology::{Ontology, TypeId};
use crate::tokenize::tokenize;
use std::sync::Arc;

/// One recognised entity occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// The canonical entity.
    pub entity: EntityId,
    /// Canonical name (post-redirect).
    pub name: Arc<str>,
    /// Index of the first matched token.
    pub token_start: usize,
    /// Number of matched tokens (1..=4).
    pub token_len: usize,
}

/// Sliding-window, longest-match entity tagger.
///
/// At each token position the tagger probes the dictionary with the
/// longest window first (up to min(4, dictionary max)); on a hit it emits
/// the mention and continues *after* it (mentions never overlap), matching
/// the greedy behaviour of dictionary annotators. An optional ontology
/// filter restricts output "to focus on particular entity types".
#[derive(Debug, Clone)]
pub struct EntityTagger {
    gazetteer: Arc<Gazetteer>,
    ontology: Option<Arc<Ontology>>,
    type_filter: Vec<TypeId>,
}

impl EntityTagger {
    /// A tagger over `gazetteer` with no type filtering.
    pub fn new(gazetteer: Arc<Gazetteer>) -> Self {
        EntityTagger { gazetteer, ontology: None, type_filter: Vec::new() }
    }

    /// Attaches an ontology (needed before [`Self::with_type_filter`]).
    #[must_use]
    pub fn with_ontology(mut self, ontology: Arc<Ontology>) -> Self {
        self.ontology = Some(ontology);
        self
    }

    /// Restricts output to entities matching any of `allowed` types
    /// (transitively).
    ///
    /// # Panics
    /// Panics if no ontology is attached.
    #[must_use]
    pub fn with_type_filter(mut self, allowed: Vec<TypeId>) -> Self {
        assert!(self.ontology.is_some(), "a type filter requires an ontology");
        self.type_filter = allowed;
        self
    }

    /// The underlying dictionary.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    fn admits(&self, entity: EntityId) -> bool {
        match (&self.ontology, self.type_filter.is_empty()) {
            (_, true) => true,
            (Some(ont), false) => ont.passes_filter(entity, &self.type_filter),
            (None, false) => {
                unreachable!("type filter without ontology is rejected at construction")
            }
        }
    }

    /// Tags raw text, returning non-overlapping mentions left to right.
    pub fn tag_text(&self, text: &str) -> Vec<Mention> {
        let tokens = tokenize(text);
        self.tag_tokens(&tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>())
    }

    /// Tags an already-tokenised term sequence (terms must be normalised
    /// lowercase, as produced by [`crate::tokenize::tokenize`]).
    pub fn tag_tokens(&self, tokens: &[&str]) -> Vec<Mention> {
        let mut mentions = Vec::new();
        let max_window = Gazetteer::MAX_NGRAM.min(self.gazetteer.max_phrase_len());
        if max_window == 0 {
            return mentions;
        }
        let mut phrase = String::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let longest = max_window.min(tokens.len() - i);
            let mut matched = 0usize;
            for window in (1..=longest).rev() {
                phrase.clear();
                for (j, token) in tokens[i..i + window].iter().enumerate() {
                    if j > 0 {
                        phrase.push(' ');
                    }
                    phrase.push_str(token);
                }
                if let Some(entity) = self.gazetteer.lookup_normalized(&phrase) {
                    if self.admits(entity) {
                        let name =
                            self.gazetteer.canonical_name(entity).expect("id from this gazetteer");
                        mentions.push(Mention { entity, name, token_start: i, token_len: window });
                        matched = window;
                        break;
                    }
                    // A filtered-out entity does not block shorter matches
                    // at the same position (e.g. "new york city" typed as
                    // location vs "new york" typed as newspaper).
                }
            }
            i += if matched > 0 { matched } else { 1 };
        }
        mentions
    }

    /// Distinct canonical entities mentioned in `text`, sorted by id.
    pub fn distinct_entities(&self, text: &str) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self.tag_text(text).into_iter().map(|m| m.entity).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::GazetteerBuilder;

    fn gaz() -> (Arc<Gazetteer>, EntityId, EntityId, EntityId) {
        let mut b = GazetteerBuilder::default();
        let obama = b.add_title("Barack Obama");
        b.add_redirect("Obama", "Barack Obama");
        let iceland = b.add_title("Iceland");
        let volcano_name = b.add_title("Eyjafjallajokull");
        b.add_redirect("Eyjafjallajoekull volcano", "Eyjafjallajokull");
        (Arc::new(b.build()), obama, iceland, volcano_name)
    }

    #[test]
    fn finds_multiword_entities() {
        let (g, obama, ..) = gaz();
        let tagger = EntityTagger::new(g);
        let mentions = tagger.tag_text("President Barack Obama spoke today.");
        assert_eq!(mentions.len(), 1);
        assert_eq!(mentions[0].entity, obama);
        assert_eq!(mentions[0].token_start, 1);
        assert_eq!(mentions[0].token_len, 2);
        assert_eq!(&*mentions[0].name, "barack obama");
    }

    #[test]
    fn redirects_map_to_canonical_entity() {
        let (g, obama, ..) = gaz();
        let tagger = EntityTagger::new(g);
        let mentions = tagger.tag_text("Obama visited Iceland");
        assert_eq!(mentions[0].entity, obama);
        assert_eq!(&*mentions[0].name, "barack obama", "alias resolves to unique name");
    }

    #[test]
    fn longest_match_wins() {
        let mut b = GazetteerBuilder::default();
        let ny = b.add_title("New York");
        let nyc = b.add_title("New York City");
        let tagger = EntityTagger::new(Arc::new(b.build()));
        let mentions = tagger.tag_text("I love New York City!");
        assert_eq!(mentions.len(), 1);
        assert_eq!(mentions[0].entity, nyc);
        let mentions = tagger.tag_text("I love New York!");
        assert_eq!(mentions[0].entity, ny);
    }

    #[test]
    fn mentions_do_not_overlap() {
        let mut b = GazetteerBuilder::default();
        b.add_title("air traffic");
        b.add_title("traffic control");
        let tagger = EntityTagger::new(Arc::new(b.build()));
        let mentions = tagger.tag_text("air traffic control");
        // Greedy: "air traffic" consumes tokens 0-1; "traffic control"
        // cannot start inside it, and token 2 alone matches nothing.
        assert_eq!(mentions.len(), 1);
        assert_eq!(&*mentions[0].name, "air traffic");
    }

    #[test]
    fn multiple_mentions_in_order() {
        let (g, obama, iceland, volcano) = gaz();
        let tagger = EntityTagger::new(g);
        let mentions = tagger.tag_text("Obama on Eyjafjallajokull: Iceland suffers.");
        let ids: Vec<EntityId> = mentions.iter().map(|m| m.entity).collect();
        assert_eq!(ids, vec![obama, volcano, iceland]);
    }

    #[test]
    fn distinct_entities_dedups() {
        let (g, obama, ..) = gaz();
        let tagger = EntityTagger::new(g);
        let ids = tagger.distinct_entities("Obama, Obama, Barack Obama!");
        assert_eq!(ids, vec![obama]);
    }

    #[test]
    fn type_filter_restricts_output() {
        let (g, obama, iceland, _) = gaz();
        let mut ob = Ontology::builder();
        let person = ob.add_type("person");
        let location = ob.add_type("location");
        ob.assign(obama, person);
        ob.assign(iceland, location);
        let ont = Arc::new(ob.build());

        let people_only = EntityTagger::new(Arc::clone(&g))
            .with_ontology(Arc::clone(&ont))
            .with_type_filter(vec![person]);
        let ids = people_only.distinct_entities("Obama visited Iceland");
        assert_eq!(ids, vec![obama]);

        let everything = EntityTagger::new(g).with_ontology(ont);
        let ids = everything.distinct_entities("Obama visited Iceland");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn filtered_long_match_falls_back_to_shorter() {
        let mut b = GazetteerBuilder::default();
        let nyc = b.add_title("New York City");
        let ny = b.add_title("New York");
        let mut ob = Ontology::builder();
        let newspaper = ob.add_type("newspaper");
        let location = ob.add_type("location");
        ob.assign(nyc, location);
        ob.assign(ny, newspaper);
        let tagger = EntityTagger::new(Arc::new(b.build()))
            .with_ontology(Arc::new(ob.build()))
            .with_type_filter(vec![newspaper]);
        let mentions = tagger.tag_text("read it in New York City pages");
        assert_eq!(mentions.len(), 1);
        assert_eq!(mentions[0].entity, ny, "filtered NYC yields the shorter NY match");
    }

    #[test]
    fn empty_inputs_yield_nothing() {
        let (g, ..) = gaz();
        let tagger = EntityTagger::new(g);
        assert!(tagger.tag_text("").is_empty());
        assert!(tagger.tag_text("nothing matches here").is_empty());
        let empty = EntityTagger::new(Arc::new(GazetteerBuilder::default().build()));
        assert!(empty.tag_text("Barack Obama").is_empty());
    }

    #[test]
    #[should_panic(expected = "requires an ontology")]
    fn type_filter_without_ontology_panics() {
        let (g, ..) = gaz();
        let _ = EntityTagger::new(g).with_type_filter(vec![TypeId(0)]);
    }
}
