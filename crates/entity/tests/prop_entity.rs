//! Property-based tests for the entity-tagging substrate.

use enblogue_entity::gazetteer::GazetteerBuilder;
use enblogue_entity::tagger::EntityTagger;
use enblogue_entity::tokenize::{normalize_phrase, tokenize};
use proptest::prelude::*;
use std::sync::Arc;

/// Words drawn from a small alphabet so collisions/multi-word phrases occur.
fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    ])
    .prop_map(str::to_string)
}

fn phrase(max_words: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..=max_words).prop_map(|ws| ws.join(" "))
}

proptest! {
    /// Tokenisation is idempotent through normalisation, and spans always
    /// slice the input without panicking.
    #[test]
    fn tokenize_spans_valid(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        for t in &tokens {
            prop_assert!(t.start <= t.end);
            prop_assert!(t.end <= text.len());
            // Spans must lie on char boundaries.
            prop_assert!(text.is_char_boundary(t.start));
            prop_assert!(text.is_char_boundary(t.end));
        }
        // Normalising twice equals normalising once.
        let once = normalize_phrase(&text);
        prop_assert_eq!(normalize_phrase(&once), once);
    }

    /// Every title inserted into the gazetteer is found in a text that
    /// contains it verbatim (surrounded by non-dictionary noise).
    #[test]
    fn planted_titles_are_found(titles in prop::collection::hash_set(phrase(4), 1..10)) {
        let mut b = GazetteerBuilder::default();
        for t in &titles {
            b.add_title(t);
        }
        let tagger = EntityTagger::new(Arc::new(b.build()));
        for t in &titles {
            let text = format!("zzz0 {t} zzz1");
            let mentions = tagger.tag_text(&text);
            // The planted phrase may be subsumed by a longer inserted title
            // or split differently by greedy matching, but something must
            // match and every mention must be a dictionary phrase.
            prop_assert!(!mentions.is_empty(), "no mention for planted `{}`", t);
        }
    }

    /// Mentions never overlap and appear in strictly increasing token order.
    #[test]
    fn mentions_are_disjoint_and_ordered(
        titles in prop::collection::hash_set(phrase(3), 1..8),
        body in prop::collection::vec(word(), 0..40),
    ) {
        let mut b = GazetteerBuilder::default();
        for t in &titles {
            b.add_title(t);
        }
        let tagger = EntityTagger::new(Arc::new(b.build()));
        let text = body.join(" ");
        let mentions = tagger.tag_text(&text);
        for w in mentions.windows(2) {
            prop_assert!(w[0].token_start + w[0].token_len <= w[1].token_start, "overlap");
        }
        for m in &mentions {
            prop_assert!(m.token_len >= 1 && m.token_len <= 4);
        }
    }

    /// Redirect aliases resolve to the same entity as their canonical
    /// title, wherever they occur.
    #[test]
    fn redirects_are_equivalent(canon in phrase(3), alias in phrase(3)) {
        prop_assume!(normalize_phrase(&canon) != normalize_phrase(&alias));
        let mut b = GazetteerBuilder::default();
        let id = b.add_redirect(&alias, &canon);
        let tagger = EntityTagger::new(Arc::new(b.build()));
        let via_alias = tagger.tag_text(&format!("zzz {alias} zzz"));
        let via_canon = tagger.tag_text(&format!("zzz {canon} zzz"));
        prop_assert!(!via_alias.is_empty());
        prop_assert!(!via_canon.is_empty());
        prop_assert_eq!(via_alias[0].entity, id);
        prop_assert_eq!(via_canon[0].entity, id);
        prop_assert_eq!(&via_alias[0].name, &via_canon[0].name, "one unique name");
    }
}
