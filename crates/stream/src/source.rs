//! Stream sources: "wrappers that either consume live streams or replay
//! existing datasets for experiments" (§4.1).

use crate::event::Event;
use enblogue_types::{Document, Tick, TickSpec, Timestamp};
use std::collections::VecDeque;

/// A pull-based event producer driven by the executor.
///
/// Sources yield events one at a time; returning `None` ends the stream
/// (the executor then injects a final [`Event::Flush`] if the source did
/// not emit one itself).
pub trait Source: Send {
    /// The next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<Event>;

    /// Human-readable name for metrics.
    fn name(&self) -> &str {
        "source"
    }
}

/// Replays a dataset of documents, batching each tick into one
/// [`Event::DocBatch`] followed by its [`Event::TickBoundary`].
///
/// Documents must be supplied in timestamp order. Tick extents are found
/// in a single forward scan (O(n) over the whole replay — no per-event
/// re-scanning), and each tick's slice is drained out of the backing
/// buffer without copying the remainder. A time-lapse replay is simply a
/// replay under a different [`TickSpec`]: stream time is data time, so no
/// wall-clock pacing is involved.
pub struct ReplaySource {
    docs: VecDeque<Document>,
    tick_spec: TickSpec,
    /// Boundary owed for the tick whose batch was just delivered.
    pending_boundary: Option<Tick>,
    flushed: bool,
    last_ts: Timestamp,
}

impl ReplaySource {
    /// A replay of `docs` (must be sorted by timestamp) under `tick_spec`.
    ///
    /// # Panics
    /// Panics at iteration time if documents are out of order.
    pub fn new(docs: Vec<Document>, tick_spec: TickSpec) -> Self {
        ReplaySource {
            docs: docs.into(),
            tick_spec,
            pending_boundary: None,
            flushed: false,
            last_ts: Timestamp::ZERO,
        }
    }
}

impl Source for ReplaySource {
    fn next_event(&mut self) -> Option<Event> {
        // A delivered batch is always followed by its tick's boundary.
        if let Some(tick) = self.pending_boundary.take() {
            return Some(Event::TickBoundary(tick));
        }
        if self.docs.is_empty() {
            if self.flushed {
                return None;
            }
            self.flushed = true;
            return Some(Event::Flush);
        }
        // One forward scan to the end of the current tick's run.
        let tick = self.tick_spec.tick_of(self.docs[0].timestamp);
        let mut len = 0;
        while len < self.docs.len() {
            let ts = self.docs[len].timestamp;
            if self.tick_spec.tick_of(ts) != tick {
                break;
            }
            assert!(ts >= self.last_ts, "replay documents must be sorted by timestamp");
            self.last_ts = ts;
            len += 1;
        }
        let batch: Vec<Document> = self.docs.drain(..len).collect();
        // Out-of-order documents across tick boundaries would produce an
        // *earlier* tick next; the assertion above only sees docs inside a
        // run, so check the successor explicitly.
        if let Some(next) = self.docs.front() {
            assert!(next.timestamp >= self.last_ts, "replay documents must be sorted by timestamp");
        }
        self.pending_boundary = Some(tick);
        Some(Event::DocBatch(batch))
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// Wraps a closure producing events; the "live wrapper" building block.
pub struct GeneratorSource<F: FnMut() -> Option<Event> + Send> {
    f: F,
    name: String,
}

impl<F: FnMut() -> Option<Event> + Send> GeneratorSource<F> {
    /// A source pulling events from `f` until it returns `None`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        GeneratorSource { f, name: name.into() }
    }
}

impl<F: FnMut() -> Option<Event> + Send> Source for GeneratorSource<F> {
    fn next_event(&mut self) -> Option<Event> {
        (self.f)()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Merges several timestamp-sorted document sources into one ordered
/// stream, re-deriving tick boundaries and re-batching per tick.
///
/// Models the demo's multi-feed setting (Twitter + several RSS feeds feeding
/// one engine). Inner sources' own boundaries/flushes are discarded; the
/// merge emits its own [`Event::DocBatch`] per tick (ties broken by source
/// index, so the merged order is deterministic).
pub struct MergeSource {
    /// Per-source lookahead documents (inner batches are buffered here).
    heads: Vec<VecDeque<Document>>,
    sources: Vec<Box<dyn Source>>,
    tick_spec: TickSpec,
    pending_boundary: Option<Tick>,
    flushed: bool,
}

impl MergeSource {
    /// Merges `sources` under `tick_spec`.
    pub fn new(sources: Vec<Box<dyn Source>>, tick_spec: TickSpec) -> Self {
        let heads = sources.iter().map(|_| VecDeque::new()).collect();
        MergeSource { heads, sources, tick_spec, pending_boundary: None, flushed: false }
    }

    fn refill(&mut self, i: usize) {
        while self.heads[i].is_empty() {
            match self.sources[i].next_event() {
                Some(Event::Doc(doc)) => self.heads[i].push_back(doc),
                Some(Event::DocBatch(docs)) => self.heads[i].extend(docs),
                Some(_) => continue, // skip inner punctuation
                None => break,
            }
        }
    }

    /// Index of the source whose next document is earliest, if any.
    fn min_source(&mut self) -> Option<usize> {
        for i in 0..self.sources.len() {
            self.refill(i);
        }
        self.heads
            .iter()
            .enumerate()
            .filter_map(|(i, head)| head.front().map(|d| (i, d.timestamp)))
            .min_by_key(|&(_, ts)| ts)
            .map(|(i, _)| i)
    }
}

impl Source for MergeSource {
    fn next_event(&mut self) -> Option<Event> {
        if let Some(tick) = self.pending_boundary.take() {
            return Some(Event::TickBoundary(tick));
        }
        let Some(first) = self.min_source() else {
            if self.flushed {
                return None;
            }
            self.flushed = true;
            return Some(Event::Flush);
        };
        // Pop timestamp-ordered documents while they stay in this tick.
        let tick = self.tick_spec.tick_of(self.heads[first].front().expect("refilled").timestamp);
        let mut batch = vec![self.heads[first].pop_front().expect("refilled")];
        while let Some(i) = self.min_source() {
            let head = self.heads[i].front().expect("min_source saw a head");
            if self.tick_spec.tick_of(head.timestamp) != tick {
                break;
            }
            batch.push(self.heads[i].pop_front().expect("checked non-empty"));
        }
        self.pending_boundary = Some(tick);
        Some(Event::DocBatch(batch))
    }

    fn name(&self) -> &str {
        "merge"
    }
}

/// Wraps a source with wall-clock pacing: stream time runs `speedup`
/// times faster than real time.
///
/// The demo's "time lapse view over a sliding window of the past couple of
/// days" replays archived data accelerated; live demos replay at 1×. The
/// executor blocks in `next_event` until each document's scaled due time,
/// so downstream operators experience realistic per-arrival pacing:
/// incoming [`Event::DocBatch`]es are unbundled and delivered as
/// individual [`Event::Doc`]s, each at its own due time — delivering a
/// whole tick at its end would replace the arrival process with one burst
/// per tick. Benches and tests use the unpaced (batched) sources; this
/// wrapper exists for interactive replays, where per-document latency is
/// the point and batch throughput is not.
pub struct PacedSource<S: Source> {
    inner: S,
    speedup: f64,
    started: Option<std::time::Instant>,
    stream_epoch: Option<u64>,
    /// Unbundled batch members awaiting their due times.
    pending: VecDeque<Document>,
}

impl<S: Source> PacedSource<S> {
    /// Paces `inner` so that `speedup` milliseconds of stream time pass
    /// per millisecond of wall-clock time.
    ///
    /// # Panics
    /// Panics if `speedup` is not finite and positive.
    pub fn new(inner: S, speedup: f64) -> Self {
        assert!(speedup.is_finite() && speedup > 0.0, "speedup must be positive");
        PacedSource { inner, speedup, started: None, stream_epoch: None, pending: VecDeque::new() }
    }

    /// Sleeps until `doc`'s scaled due time, then hands it out.
    fn pace(&mut self, doc: Document) -> Event {
        let now = std::time::Instant::now();
        let started = *self.started.get_or_insert(now);
        let epoch = *self.stream_epoch.get_or_insert(doc.timestamp.as_millis());
        let stream_elapsed = doc.timestamp.as_millis().saturating_sub(epoch) as f64;
        let due = std::time::Duration::from_secs_f64(stream_elapsed / self.speedup / 1_000.0);
        let elapsed = now.duration_since(started);
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        Event::Doc(doc)
    }
}

impl<S: Source> Source for PacedSource<S> {
    fn next_event(&mut self) -> Option<Event> {
        loop {
            if let Some(doc) = self.pending.pop_front() {
                return Some(self.pace(doc));
            }
            match self.inner.next_event()? {
                Event::Doc(doc) => return Some(self.pace(doc)),
                Event::DocBatch(docs) => self.pending.extend(docs), // re-loop (may be empty)
                other => return Some(other),
            }
        }
    }

    fn name(&self) -> &str {
        "paced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn doc(id: u64, hour: u64) -> Document {
        Document::builder(id, Timestamp::from_hours(hour)).build()
    }

    fn drain(mut source: impl Source) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(e) = source.next_event() {
            events.push(e);
        }
        events
    }

    fn labels(events: &[Event]) -> Vec<String> {
        events
            .iter()
            .map(|e| match e {
                Event::Doc(d) => format!("d{}", d.id),
                Event::DocBatch(docs) => {
                    let ids: Vec<String> = docs.iter().map(|d| d.id.to_string()).collect();
                    format!("B[{}]", ids.join(","))
                }
                Event::TickBoundary(t) => format!("b{}", t.0),
                Event::Flush => "f".into(),
            })
            .collect()
    }

    fn doc_ids(events: &[Event]) -> Vec<u64> {
        events.iter().flat_map(|e| e.docs().iter().map(|d| d.id)).collect()
    }

    #[test]
    fn replay_batches_ticks_and_inserts_boundaries() {
        let source =
            ReplaySource::new(vec![doc(1, 0), doc(2, 0), doc(3, 1), doc(4, 3)], TickSpec::hourly());
        let events = drain(source);
        assert_eq!(labels(&events), vec!["B[1,2]", "b0", "B[3]", "b1", "B[4]", "b3", "f"]);
    }

    #[test]
    fn replay_of_empty_dataset_just_flushes() {
        let events = drain(ReplaySource::new(vec![], TickSpec::hourly()));
        assert_eq!(events, vec![Event::Flush]);
    }

    #[test]
    fn replay_single_tick_closes_it() {
        let events = drain(ReplaySource::new(vec![doc(1, 5)], TickSpec::hourly()));
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].doc_count(), 1);
        assert!(matches!(events[1], Event::TickBoundary(Tick(5))));
        assert!(events[2].is_flush());
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn replay_rejects_unsorted_input() {
        let source = ReplaySource::new(vec![doc(1, 5), doc(2, 3)], TickSpec::hourly());
        let _ = drain(source);
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn replay_rejects_unsorted_input_within_a_tick() {
        // Both docs land in tick 0 of a daily spec but are out of order.
        let docs = vec![doc(1, 5), doc(2, 3)];
        let source = ReplaySource::new(docs, TickSpec::daily());
        let _ = drain(source);
    }

    #[test]
    fn generator_source_pulls_until_none() {
        let mut remaining = 3u32;
        let source = GeneratorSource::new("gen", move || {
            if remaining == 0 {
                None
            } else {
                remaining -= 1;
                Some(Event::Flush)
            }
        });
        assert_eq!(drain(source).len(), 3);
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let a = ReplaySource::new(vec![doc(1, 0), doc(3, 2)], TickSpec::hourly());
        let b = ReplaySource::new(vec![doc(2, 1), doc(4, 2)], TickSpec::hourly());
        let merged = MergeSource::new(vec![Box::new(a), Box::new(b)], TickSpec::hourly());
        let events = drain(merged);
        assert_eq!(doc_ids(&events), vec![1, 2, 3, 4]);
        // One batch + boundary per tick 0, 1, 2, plus one flush.
        assert_eq!(labels(&events), vec!["B[1]", "b0", "B[2]", "b1", "B[3,4]", "b2", "f"]);
    }

    #[test]
    fn merge_rebatches_one_tick_across_sources() {
        // Docs of the same tick from different feeds coalesce into one
        // batch, ordered by timestamp with ties broken by source index.
        let a = ReplaySource::new(vec![doc(1, 0), doc(3, 0)], TickSpec::hourly());
        let b = ReplaySource::new(vec![doc(2, 0)], TickSpec::hourly());
        let merged = MergeSource::new(vec![Box::new(a), Box::new(b)], TickSpec::hourly());
        let events = drain(merged);
        assert_eq!(labels(&events), vec!["B[1,3,2]", "b0", "f"]);
    }

    #[test]
    fn merge_with_empty_member() {
        let a = ReplaySource::new(vec![doc(1, 0)], TickSpec::hourly());
        let b = ReplaySource::new(vec![], TickSpec::hourly());
        let merged = MergeSource::new(vec![Box::new(a), Box::new(b)], TickSpec::hourly());
        let events = drain(merged);
        assert_eq!(doc_ids(&events), vec![1]);
    }

    #[test]
    fn paced_source_unbundles_batches_and_paces_per_doc() {
        // Two docs 100 stream-ms apart at 10x speedup arrive in one hourly
        // batch from the replay; the paced wrapper must deliver them one
        // at a time, the second ≥10ms of wall time after the first.
        let docs = vec![
            Document::builder(1, Timestamp(0)).build(),
            Document::builder(2, Timestamp(100)).build(),
        ];
        let inner = ReplaySource::new(docs, TickSpec::hourly());
        let paced = PacedSource::new(inner, 10.0);
        let start = std::time::Instant::now();
        let events = drain(paced);
        let elapsed = start.elapsed();
        assert_eq!(doc_ids(&events), vec![1, 2], "pacing must not change the stream");
        assert!(
            events.iter().all(|e| !matches!(e, Event::DocBatch(_))),
            "paced delivery is per document, not per batch"
        );
        assert!(events[2].is_tick_boundary(), "punctuation follows the unbundled docs: {events:?}");
        assert!(elapsed >= std::time::Duration::from_millis(9), "pacing too fast: {elapsed:?}");
        assert!(elapsed < std::time::Duration::from_millis(500), "pacing too slow: {elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn paced_rejects_zero_speedup() {
        let _ = PacedSource::new(ReplaySource::new(vec![], TickSpec::hourly()), 0.0);
    }
}
