//! Stream sources: "wrappers that either consume live streams or replay
//! existing datasets for experiments" (§4.1).

use crate::event::Event;
use enblogue_types::{Document, Tick, TickSpec};

/// A pull-based event producer driven by the executor.
///
/// Sources yield events one at a time; returning `None` ends the stream
/// (the executor then injects a final [`Event::Flush`] if the source did
/// not emit one itself).
pub trait Source: Send {
    /// The next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<Event>;

    /// Human-readable name for metrics.
    fn name(&self) -> &str {
        "source"
    }
}

/// Replays a dataset of documents, inserting tick boundaries.
///
/// Documents must be supplied in timestamp order. A time-lapse replay is
/// simply a replay under a different [`TickSpec`]: stream time is data
/// time, so no wall-clock pacing is involved.
pub struct ReplaySource {
    docs: std::vec::IntoIter<Document>,
    tick_spec: TickSpec,
    pending: Option<Document>,
    current_tick: Option<Tick>,
    flushed: bool,
    last_ts: u64,
}

impl ReplaySource {
    /// A replay of `docs` (must be sorted by timestamp) under `tick_spec`.
    ///
    /// # Panics
    /// Panics at iteration time if documents are out of order.
    pub fn new(docs: Vec<Document>, tick_spec: TickSpec) -> Self {
        ReplaySource {
            docs: docs.into_iter(),
            tick_spec,
            pending: None,
            current_tick: None,
            flushed: false,
            last_ts: 0,
        }
    }
}

impl Source for ReplaySource {
    fn next_event(&mut self) -> Option<Event> {
        // Deliver a buffered document (held back to emit a boundary first).
        if let Some(doc) = self.pending.take() {
            self.current_tick = Some(self.tick_spec.tick_of(doc.timestamp));
            return Some(Event::Doc(doc));
        }
        match self.docs.next() {
            Some(doc) => {
                assert!(
                    doc.timestamp.as_millis() >= self.last_ts,
                    "replay documents must be sorted by timestamp"
                );
                self.last_ts = doc.timestamp.as_millis();
                let tick = self.tick_spec.tick_of(doc.timestamp);
                match self.current_tick {
                    Some(current) if tick > current => {
                        // Close the current tick before the next document.
                        self.pending = Some(doc);
                        self.current_tick = Some(current.next());
                        Some(Event::TickBoundary(current))
                    }
                    None => {
                        self.current_tick = Some(tick);
                        Some(Event::Doc(doc))
                    }
                    _ => Some(Event::Doc(doc)),
                }
            }
            None => {
                // Close the last tick, then flush exactly once.
                if let Some(current) = self.current_tick.take() {
                    return Some(Event::TickBoundary(current));
                }
                if self.flushed {
                    None
                } else {
                    self.flushed = true;
                    Some(Event::Flush)
                }
            }
        }
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// Wraps a closure producing events; the "live wrapper" building block.
pub struct GeneratorSource<F: FnMut() -> Option<Event> + Send> {
    f: F,
    name: String,
}

impl<F: FnMut() -> Option<Event> + Send> GeneratorSource<F> {
    /// A source pulling events from `f` until it returns `None`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        GeneratorSource { f, name: name.into() }
    }
}

impl<F: FnMut() -> Option<Event> + Send> Source for GeneratorSource<F> {
    fn next_event(&mut self) -> Option<Event> {
        (self.f)()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Merges several timestamp-sorted document sources into one ordered
/// stream, re-deriving tick boundaries.
///
/// Models the demo's multi-feed setting (Twitter + several RSS feeds feeding
/// one engine). Inner sources' own boundaries/flushes are discarded; the
/// merge emits its own.
pub struct MergeSource {
    /// Per-source lookahead document.
    heads: Vec<Option<Document>>,
    sources: Vec<Box<dyn Source>>,
    tick_spec: TickSpec,
    pending: Option<Document>,
    current_tick: Option<Tick>,
    flushed: bool,
}

impl MergeSource {
    /// Merges `sources` under `tick_spec`.
    pub fn new(sources: Vec<Box<dyn Source>>, tick_spec: TickSpec) -> Self {
        let heads = vec![None; sources.len()];
        MergeSource { heads, sources, tick_spec, pending: None, current_tick: None, flushed: false }
    }

    fn refill(&mut self, i: usize) {
        while self.heads[i].is_none() {
            match self.sources[i].next_event() {
                Some(Event::Doc(doc)) => self.heads[i] = Some(doc),
                Some(_) => continue, // skip inner punctuation
                None => break,
            }
        }
    }

    fn pop_min(&mut self) -> Option<Document> {
        for i in 0..self.sources.len() {
            self.refill(i);
        }
        let min_idx = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, head)| head.as_ref().map(|d| (i, d.timestamp)))
            .min_by_key(|&(_, ts)| ts)
            .map(|(i, _)| i)?;
        self.heads[min_idx].take()
    }
}

impl Source for MergeSource {
    fn next_event(&mut self) -> Option<Event> {
        if let Some(doc) = self.pending.take() {
            self.current_tick = Some(self.tick_spec.tick_of(doc.timestamp));
            return Some(Event::Doc(doc));
        }
        match self.pop_min() {
            Some(doc) => {
                let tick = self.tick_spec.tick_of(doc.timestamp);
                match self.current_tick {
                    Some(current) if tick > current => {
                        self.pending = Some(doc);
                        self.current_tick = Some(current.next());
                        Some(Event::TickBoundary(current))
                    }
                    None => {
                        self.current_tick = Some(tick);
                        Some(Event::Doc(doc))
                    }
                    _ => Some(Event::Doc(doc)),
                }
            }
            None => {
                if let Some(current) = self.current_tick.take() {
                    return Some(Event::TickBoundary(current));
                }
                if self.flushed {
                    None
                } else {
                    self.flushed = true;
                    Some(Event::Flush)
                }
            }
        }
    }

    fn name(&self) -> &str {
        "merge"
    }
}

/// Wraps a source with wall-clock pacing: stream time runs `speedup`
/// times faster than real time.
///
/// The demo's "time lapse view over a sliding window of the past couple of
/// days" replays archived data accelerated; live demos replay at 1×. The
/// executor blocks in `next_event` until each document's scaled due time,
/// so downstream operators experience realistic arrival pacing. Benches
/// and tests use the unpaced sources; this wrapper exists for interactive
/// replays.
pub struct PacedSource<S: Source> {
    inner: S,
    speedup: f64,
    started: Option<std::time::Instant>,
    stream_epoch: Option<u64>,
}

impl<S: Source> PacedSource<S> {
    /// Paces `inner` so that `speedup` milliseconds of stream time pass
    /// per millisecond of wall-clock time.
    ///
    /// # Panics
    /// Panics if `speedup` is not finite and positive.
    pub fn new(inner: S, speedup: f64) -> Self {
        assert!(speedup.is_finite() && speedup > 0.0, "speedup must be positive");
        PacedSource { inner, speedup, started: None, stream_epoch: None }
    }
}

impl<S: Source> Source for PacedSource<S> {
    fn next_event(&mut self) -> Option<Event> {
        let event = self.inner.next_event()?;
        if let Event::Doc(doc) = &event {
            let now = std::time::Instant::now();
            let started = *self.started.get_or_insert(now);
            let epoch = *self.stream_epoch.get_or_insert(doc.timestamp.as_millis());
            let stream_elapsed = doc.timestamp.as_millis().saturating_sub(epoch) as f64;
            let due = std::time::Duration::from_secs_f64(stream_elapsed / self.speedup / 1_000.0);
            let elapsed = now.duration_since(started);
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        Some(event)
    }

    fn name(&self) -> &str {
        "paced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn doc(id: u64, hour: u64) -> Document {
        Document::builder(id, Timestamp::from_hours(hour)).build()
    }

    fn drain(mut source: impl Source) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(e) = source.next_event() {
            events.push(e);
        }
        events
    }

    #[test]
    fn replay_inserts_boundaries_between_ticks() {
        let source =
            ReplaySource::new(vec![doc(1, 0), doc(2, 0), doc(3, 1), doc(4, 3)], TickSpec::hourly());
        let events = drain(source);
        let labels: Vec<String> = events
            .iter()
            .map(|e| match e {
                Event::Doc(d) => format!("d{}", d.id),
                Event::TickBoundary(t) => format!("b{}", t.0),
                Event::Flush => "f".into(),
            })
            .collect();
        assert_eq!(labels, vec!["d1", "d2", "b0", "d3", "b1", "d4", "b3", "f"]);
    }

    #[test]
    fn replay_of_empty_dataset_just_flushes() {
        let events = drain(ReplaySource::new(vec![], TickSpec::hourly()));
        assert_eq!(events, vec![Event::Flush]);
    }

    #[test]
    fn replay_single_tick_closes_it() {
        let events = drain(ReplaySource::new(vec![doc(1, 5)], TickSpec::hourly()));
        assert_eq!(events.len(), 3);
        assert!(matches!(events[1], Event::TickBoundary(Tick(5))));
        assert!(events[2].is_flush());
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn replay_rejects_unsorted_input() {
        let source = ReplaySource::new(vec![doc(1, 5), doc(2, 3)], TickSpec::hourly());
        let _ = drain(source);
    }

    #[test]
    fn generator_source_pulls_until_none() {
        let mut remaining = 3u32;
        let source = GeneratorSource::new("gen", move || {
            if remaining == 0 {
                None
            } else {
                remaining -= 1;
                Some(Event::Flush)
            }
        });
        assert_eq!(drain(source).len(), 3);
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let a = ReplaySource::new(vec![doc(1, 0), doc(3, 2)], TickSpec::hourly());
        let b = ReplaySource::new(vec![doc(2, 1), doc(4, 2)], TickSpec::hourly());
        let merged = MergeSource::new(vec![Box::new(a), Box::new(b)], TickSpec::hourly());
        let events = drain(merged);
        let doc_ids: Vec<u64> = events.iter().filter_map(|e| e.as_doc().map(|d| d.id)).collect();
        assert_eq!(doc_ids, vec![1, 2, 3, 4]);
        // Boundaries for ticks 0, 1, 2 plus one flush.
        let boundaries = events.iter().filter(|e| e.is_tick_boundary()).count();
        assert_eq!(boundaries, 3);
        assert!(events.last().unwrap().is_flush());
    }

    #[test]
    fn merge_with_empty_member() {
        let a = ReplaySource::new(vec![doc(1, 0)], TickSpec::hourly());
        let b = ReplaySource::new(vec![], TickSpec::hourly());
        let merged = MergeSource::new(vec![Box::new(a), Box::new(b)], TickSpec::hourly());
        let events = drain(merged);
        let doc_ids: Vec<u64> = events.iter().filter_map(|e| e.as_doc().map(|d| d.id)).collect();
        assert_eq!(doc_ids, vec![1]);
    }

    #[test]
    fn paced_source_preserves_content_and_paces() {
        // Two docs 100 stream-ms apart at 10x speedup: ≥10ms wall time.
        let docs = vec![
            Document::builder(1, Timestamp(0)).build(),
            Document::builder(2, Timestamp(100)).build(),
        ];
        let inner = ReplaySource::new(docs, TickSpec::hourly());
        let paced = PacedSource::new(inner, 10.0);
        let start = std::time::Instant::now();
        let events = drain(paced);
        let elapsed = start.elapsed();
        let doc_ids: Vec<u64> = events.iter().filter_map(|e| e.as_doc().map(|d| d.id)).collect();
        assert_eq!(doc_ids, vec![1, 2], "pacing must not change the stream");
        assert!(elapsed >= std::time::Duration::from_millis(9), "pacing too fast: {elapsed:?}");
        assert!(elapsed < std::time::Duration::from_millis(500), "pacing too slow: {elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn paced_rejects_zero_speedup() {
        let _ = PacedSource::new(ReplaySource::new(vec![], TickSpec::hourly()), 0.0);
    }
}
