//! The operator DAG with structural plan sharing.

use crate::operator::Operator;
use crate::source::Source;
use enblogue_types::EnBlogueError;

/// Identifies a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

pub(crate) struct Node {
    pub(crate) op: Box<dyn Operator>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) signature: String,
}

/// An operator DAG rooted at one source.
///
/// §4.1: "The system allows executing multiple query plans in parallel,
/// where overlapping parts, like data sources, sketching operators, entity
/// tagging, and statistics operators are shared for efficiency."
///
/// Plans are attached with [`Graph::attach`] / [`Graph::attach_chain`]:
/// when the new operator's [signature](Operator::signature) matches an
/// existing child of the same parent, the existing node is reused and
/// [`Graph::shared_hits`] is incremented — experiment P2 measures the
/// saved work.
pub struct Graph {
    source: Box<dyn Source>,
    /// Children of the source.
    pub(crate) roots: Vec<NodeId>,
    pub(crate) nodes: Vec<Node>,
    shared_hits: usize,
}

impl Graph {
    /// An empty graph fed by `source`.
    pub fn new(source: impl Source + 'static) -> Self {
        Graph { source: Box::new(source), roots: Vec::new(), nodes: Vec::new(), shared_hits: 0 }
    }

    /// Number of operator nodes (excluding the source).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many attach calls were satisfied by an existing shared node.
    pub fn shared_hits(&self) -> usize {
        self.shared_hits
    }

    /// The name of the operator at `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.nodes[node.0].op.name()
    }

    fn push_node(&mut self, op: Box<dyn Operator>) -> NodeId {
        let signature = op.signature();
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { op, children: Vec::new(), signature });
        id
    }

    /// Attaches `op` below `parent` (`None` = directly below the source),
    /// sharing an existing structurally-equal child if present.
    pub fn attach(&mut self, parent: Option<NodeId>, op: impl Operator + 'static) -> NodeId {
        self.attach_boxed(parent, Box::new(op))
    }

    /// [`Graph::attach`] for boxed operators.
    pub fn attach_boxed(&mut self, parent: Option<NodeId>, op: Box<dyn Operator>) -> NodeId {
        let signature = op.signature();
        let siblings = match parent {
            Some(p) => &self.nodes[p.0].children,
            None => &self.roots,
        };
        if let Some(&existing) = siblings.iter().find(|&&c| self.nodes[c.0].signature == signature)
        {
            self.shared_hits += 1;
            return existing;
        }
        let id = self.push_node(op);
        match parent {
            Some(p) => self.nodes[p.0].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Attaches `op` below `parent` *without* sharing, even if an equal
    /// sibling exists (the unshared baseline of experiment P2).
    pub fn attach_unshared(
        &mut self,
        parent: Option<NodeId>,
        op: impl Operator + 'static,
    ) -> NodeId {
        let id = self.push_node(Box::new(op));
        match parent {
            Some(p) => self.nodes[p.0].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Attaches a chain of operators, sharing each step; returns the id of
    /// the last node.
    ///
    /// # Panics
    /// Panics if `ops` is empty.
    pub fn attach_chain(&mut self, parent: Option<NodeId>, ops: Vec<Box<dyn Operator>>) -> NodeId {
        assert!(!ops.is_empty(), "attach_chain requires at least one operator");
        let mut cursor = parent;
        let mut last = NodeId(0);
        for op in ops {
            last = self.attach_boxed(cursor, op);
            cursor = Some(last);
        }
        last
    }

    /// Adds an extra edge `parent → child` (fan-in), validating that no
    /// cycle is created.
    pub fn connect(&mut self, parent: NodeId, child: NodeId) -> Result<(), EnBlogueError> {
        if parent == child || self.reaches(child, parent) {
            return Err(EnBlogueError::PlanError(format!(
                "edge {} -> {} would create a cycle",
                parent.0, child.0
            )));
        }
        if !self.nodes[parent.0].children.contains(&child) {
            self.nodes[parent.0].children.push(child);
        }
        Ok(())
    }

    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n.0], true) {
                continue;
            }
            stack.extend(self.nodes[n.0].children.iter().copied());
        }
        false
    }

    /// Borrows the source mutably (used by executors).
    pub(crate) fn source_mut(&mut self) -> &mut dyn Source {
        self.source.as_mut()
    }

    /// Splits the graph into source and nodes (used by the threaded
    /// executor, which moves operators into worker threads).
    pub(crate) fn into_parts(self) -> (Box<dyn Source>, Vec<NodeId>, Vec<Node>) {
        (self.source, self.roots, self.nodes)
    }

    /// Nodes in a topological order (parents before children).
    ///
    /// # Errors
    /// Returns a plan error if the graph contains a cycle (only possible
    /// via bugs, since [`Graph::connect`] validates, but executors check
    /// defensively).
    pub fn topological_order(&self) -> Result<Vec<NodeId>, EnBlogueError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for node in &self.nodes {
            for child in &node.children {
                indegree[child.0] += 1;
            }
        }
        // Roots reachable from the source start the order; orphan nodes
        // (indegree 0, not roots) are included too — they just never
        // receive events.
        let mut queue: std::collections::VecDeque<NodeId> =
            (0..n).filter(|&i| indegree[i] == 0).map(NodeId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = queue.pop_front() {
            order.push(node);
            for &child in &self.nodes[node.0].children {
                indegree[child.0] -= 1;
                if indegree[child.0] == 0 {
                    queue.push_back(child);
                }
            }
        }
        if order.len() != n {
            return Err(EnBlogueError::PlanError("cycle detected in operator graph".into()));
        }
        Ok(order)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("roots", &self.roots.len())
            .field("shared_hits", &self.shared_hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::operator::EventSink;
    use crate::source::ReplaySource;
    use enblogue_types::TickSpec;

    struct Named(&'static str);
    impl Operator for Named {
        fn name(&self) -> &str {
            self.0
        }
        fn signature(&self) -> String {
            self.0.to_string()
        }
        fn process(&mut self, event: Event, out: &mut dyn EventSink) {
            out.emit(event);
        }
    }

    fn empty_graph() -> Graph {
        Graph::new(ReplaySource::new(vec![], TickSpec::hourly()))
    }

    #[test]
    fn attach_shares_equal_signatures() {
        let mut g = empty_graph();
        let a1 = g.attach(None, Named("tagger"));
        let a2 = g.attach(None, Named("tagger"));
        assert_eq!(a1, a2, "same signature under same parent is shared");
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.shared_hits(), 1);

        let b = g.attach(None, Named("stats"));
        assert_ne!(a1, b);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn sharing_is_per_parent() {
        let mut g = empty_graph();
        let a = g.attach(None, Named("x"));
        let b = g.attach(None, Named("y"));
        let xa = g.attach(Some(a), Named("z"));
        let xb = g.attach(Some(b), Named("z"));
        assert_ne!(xa, xb, "same signature under different parents is distinct state");
        assert_eq!(g.shared_hits(), 0);
    }

    #[test]
    fn attach_unshared_always_creates() {
        let mut g = empty_graph();
        let a1 = g.attach_unshared(None, Named("tagger"));
        let a2 = g.attach_unshared(None, Named("tagger"));
        assert_ne!(a1, a2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.shared_hits(), 0);
    }

    #[test]
    fn chains_share_prefixes() {
        let mut g = empty_graph();
        let end1 = g.attach_chain(
            None,
            vec![Box::new(Named("a")), Box::new(Named("b")), Box::new(Named("c"))],
        );
        let end2 = g.attach_chain(
            None,
            vec![Box::new(Named("a")), Box::new(Named("b")), Box::new(Named("d"))],
        );
        assert_ne!(end1, end2);
        assert_eq!(g.node_count(), 4, "a and b shared; c and d distinct");
        assert_eq!(g.shared_hits(), 2);
    }

    #[test]
    fn connect_rejects_cycles() {
        let mut g = empty_graph();
        let a = g.attach(None, Named("a"));
        let b = g.attach(Some(a), Named("b"));
        let c = g.attach(Some(b), Named("c"));
        assert!(g.connect(c, a).is_err(), "back edge");
        assert!(g.connect(a, a).is_err(), "self loop");
        assert!(g.connect(a, c).is_ok(), "forward shortcut is a DAG edge");
    }

    #[test]
    fn connect_is_idempotent() {
        let mut g = empty_graph();
        let a = g.attach(None, Named("a"));
        let b = g.attach(None, Named("b"));
        g.connect(a, b).unwrap();
        g.connect(a, b).unwrap();
        assert_eq!(g.nodes[a.0].children.len(), 1);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = empty_graph();
        let a = g.attach(None, Named("a"));
        let b = g.attach(Some(a), Named("b"));
        let c = g.attach(Some(a), Named("c"));
        let d = g.attach(Some(b), Named("d"));
        g.connect(c, d).unwrap();
        let order = g.topological_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }
}
