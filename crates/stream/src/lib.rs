//! Push-based stream-processing substrate for EnBlogue.
//!
//! Reimplements the paper's "core engine" (§4.1): "the implementation …
//! follows the standard concepts of a push-based architecture for stream
//! processing. At the data source level, it consists of several wrappers
//! that either consume live streams or replay existing datasets … Data is
//! represented in form of a tuple … consumed by stream operators and pushed
//! along producer-consumer edges in query-processing plans."
//!
//! * [`event::Event`] — the unit flowing along edges: a document, a tick
//!   boundary punctuation, or an end-of-stream flush,
//! * [`operator::Operator`] — the pluggable stage interface ("plug-in
//!   options for sketching operators … statistics operators, shift
//!   prediction operators, etc."),
//! * [`graph::Graph`] — the operator DAG with **structural plan sharing**:
//!   "multiple query plans in parallel, where overlapping parts, like data
//!   sources, sketching operators, entity tagging, and statistics operators
//!   are shared for efficiency",
//! * [`source::Source`] — stream wrappers (replay, generator, merge),
//! * [`exec`] — a deterministic synchronous executor and a threaded
//!   pipeline executor (one thread per operator, crossbeam channels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod exec;
pub mod graph;
pub mod operator;
pub mod ops;
pub mod source;

pub use event::Event;
pub use exec::{default_parallelism, fanout, run_graph, run_graph_threaded, ExecutionStats};
pub use graph::{Graph, NodeId};
pub use operator::{EventSink, Operator};
pub use source::{GeneratorSource, MergeSource, PacedSource, ReplaySource, Source};
