//! Executors: deterministic synchronous push, threaded pipeline, and the
//! shard fan-out primitive used for parallel tick close.

use crate::event::Event;
use crate::graph::{Graph, NodeId};
use crate::operator::EventSink;
use enblogue_types::{EnBlogueError, Tick};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-node execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// Operator name.
    pub name: String,
    /// Events processed by the node.
    pub processed: u64,
    /// Events emitted downstream by the node.
    pub emitted: u64,
}

/// Counters for one graph execution.
///
/// `total_processed` is the work measure used by the plan-sharing ablation
/// (P2): with sharing, overlapping plan prefixes process each event once
/// instead of once per plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Events produced by the source.
    pub source_events: u64,
    /// Documents produced by the source.
    pub source_docs: u64,
    /// Per-node counters, in node-id order.
    pub nodes: Vec<NodeStats>,
}

impl ExecutionStats {
    /// Total events processed across all operator nodes.
    pub fn total_processed(&self) -> u64 {
        self.nodes.iter().map(|n| n.processed).sum()
    }
}

/// Punctuation-deduplication state per node.
///
/// With fan-in, a node would receive the same tick boundary once per
/// parent; operators are written against "exactly one boundary per tick",
/// so executors filter duplicates here.
#[derive(Debug, Clone, Copy, Default)]
struct PunctState {
    last_boundary: Option<Tick>,
    flushed: bool,
}

impl PunctState {
    /// Whether `event` should be delivered to the node.
    fn admit(&mut self, event: &Event) -> bool {
        match event {
            Event::TickBoundary(tick) => {
                if self.last_boundary.is_some_and(|last| *tick <= last) {
                    false
                } else {
                    self.last_boundary = Some(*tick);
                    true
                }
            }
            Event::Flush => !std::mem::replace(&mut self.flushed, true),
            Event::Doc(_) | Event::DocBatch(_) => !self.flushed,
        }
    }
}

/// The machine's available parallelism (≥ 1) — the benched default for
/// execution knobs like shard counts, shard-parallel close and ingest
/// worker pools.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the graph to completion on the calling thread.
///
/// Events are dispatched breadth-first in node order, so execution is fully
/// deterministic — the mode used by all correctness tests and experiments.
pub fn run_graph(graph: &mut Graph) -> Result<ExecutionStats, EnBlogueError> {
    graph.topological_order()?; // validates acyclicity up front
    let n = graph.nodes.len();
    let mut processed = vec![0u64; n];
    let mut emitted = vec![0u64; n];
    let mut punct = vec![PunctState::default(); n];
    let mut stats = ExecutionStats::default();

    let mut queue: VecDeque<(NodeId, Event)> = VecDeque::new();
    let mut scratch: Vec<Event> = Vec::new();
    let mut saw_flush = false;

    loop {
        let event = match graph.source_mut().next_event() {
            Some(e) => e,
            None if saw_flush => break,
            None => Event::Flush, // source ended without explicit flush
        };
        stats.source_events += 1;
        stats.source_docs += event.doc_count();
        if event.is_flush() {
            saw_flush = true;
        }
        let is_flush = event.is_flush();

        for &root in &graph.roots {
            queue.push_back((root, event.clone()));
        }
        while let Some((node, event)) = queue.pop_front() {
            if !punct[node.0].admit(&event) {
                continue;
            }
            processed[node.0] += 1;
            scratch.clear();
            graph.nodes[node.0].op.process(event, &mut scratch);
            emitted[node.0] += scratch.len() as u64;
            let children = &graph.nodes[node.0].children;
            if children.is_empty() {
                continue;
            }
            for out_event in scratch.drain(..) {
                // Clone for all children but the last, which takes ownership.
                let (&last, rest) = children.split_last().expect("children checked non-empty");
                for &child in rest {
                    queue.push_back((child, out_event.clone()));
                }
                queue.push_back((last, out_event));
            }
        }
        if is_flush {
            break;
        }
    }

    stats.nodes = (0..n)
        .map(|i| NodeStats {
            name: graph.nodes[i].op.name().to_string(),
            processed: processed[i],
            emitted: emitted[i],
        })
        .collect();
    Ok(stats)
}

/// Runs `work` once per item, optionally fanned out over scoped threads.
///
/// This is the executor primitive behind shard-parallel tick close: the
/// sharded pair registry hands one mutable shard to each worker, so the
/// threaded execution mode drives *shards* instead of whole plans. The
/// work function must be deterministic per item — results may be produced
/// in any order, but each item sees exactly one call with its own index,
/// so serial (`parallel = false`) and threaded runs are observationally
/// identical. Panics in workers propagate to the caller.
///
/// Worker count is capped at the machine's available parallelism: with
/// more items than cores, items are processed in contiguous chunks, one
/// thread per chunk, so 16 shards on a 4-core box spawn 4 threads, not 16.
pub fn fanout<T, F>(items: &mut [T], parallel: bool, work: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if !parallel || items.len() < 2 {
        for (index, item) in items.iter_mut().enumerate() {
            work(index, item);
        }
        return;
    }
    let workers = default_parallelism().min(items.len());
    let chunk_len = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(workers);
        for (chunk_index, chunk) in items.chunks_mut(chunk_len).enumerate() {
            let base = chunk_index * chunk_len;
            handles.push(scope.spawn(move || {
                for (offset, item) in chunk.iter_mut().enumerate() {
                    work(base + offset, item);
                }
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

struct ChannelSink {
    senders: Vec<crossbeam::channel::Sender<Event>>,
    emitted: u64,
}

impl EventSink for ChannelSink {
    fn emit(&mut self, event: Event) {
        self.emitted += 1;
        if let Some((last, rest)) = self.senders.split_last() {
            for s in rest {
                // A receiver hanging up mid-stream only loses that
                // branch's events; ignore.
                let _ = s.send(event.clone());
            }
            let _ = last.send(event);
        }
    }
}

/// Runs the graph with one worker thread per operator, connected by
/// bounded crossbeam channels (the throughput mode; benches P1/P2).
///
/// Event order is preserved along every edge; nodes with multiple parents
/// see an interleaving, with duplicate punctuation removed. The graph is
/// consumed: operators move into their threads.
pub fn run_graph_threaded(
    graph: Graph,
    channel_capacity: usize,
) -> Result<ExecutionStats, EnBlogueError> {
    graph.topological_order()?;
    let (mut source, roots, nodes) = graph.into_parts();
    let n = nodes.len();

    // indegree[i] counts stream parents (source counts for roots).
    let mut indegree = vec![0usize; n];
    for &root in &roots {
        indegree[root.0] += 1;
    }
    for node in &nodes {
        for &child in &node.children {
            indegree[child.0] += 1;
        }
    }

    let processed: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let emitted: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());

    let mut senders: Vec<crossbeam::channel::Sender<Event>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<crossbeam::channel::Receiver<Event>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = crossbeam::channel::bounded(channel_capacity.max(1));
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let names: Vec<String> = nodes.iter().map(|node| node.op.name().to_string()).collect();

    let mut handles = Vec::with_capacity(n);
    for (i, node) in nodes.into_iter().enumerate() {
        let rx = receivers[i].take().expect("receiver taken once");
        let child_senders: Vec<_> = node.children.iter().map(|c| senders[c.0].clone()).collect();
        let mut op = node.op;
        let parents = indegree[i].max(1);
        let processed = Arc::clone(&processed);
        let emitted = Arc::clone(&emitted);
        handles.push(std::thread::spawn(move || {
            let mut sink = ChannelSink { senders: child_senders, emitted: 0 };
            let mut punct = PunctState::default();
            let mut flushes_seen = 0usize;
            while let Ok(event) = rx.recv() {
                if event.is_flush() {
                    flushes_seen += 1;
                    // Wait for every parent branch to finish before the
                    // final flush is processed and forwarded.
                    if flushes_seen < parents {
                        continue;
                    }
                }
                if !punct.admit(&event) {
                    continue;
                }
                let done = event.is_flush();
                processed[i].fetch_add(1, Ordering::Relaxed);
                op.process(event, &mut sink);
                if done {
                    break;
                }
            }
            emitted[i].store(sink.emitted, Ordering::Relaxed);
            // Senders drop here, closing downstream channels.
        }));
    }
    // Main thread drives the source.
    let mut stats = ExecutionStats { source_events: 0, source_docs: 0, nodes: Vec::new() };
    let root_senders: Vec<_> = roots.iter().map(|r| senders[r.0].clone()).collect();
    drop(senders);
    let mut saw_flush = false;
    loop {
        let event = match source.next_event() {
            Some(e) => e,
            None if saw_flush => break,
            None => Event::Flush,
        };
        stats.source_events += 1;
        stats.source_docs += event.doc_count();
        if event.is_flush() {
            saw_flush = true;
        }
        let is_flush = event.is_flush();
        for tx in &root_senders {
            let _ = tx.send(event.clone());
        }
        if is_flush {
            break;
        }
    }
    drop(root_senders);
    for handle in handles {
        handle.join().map_err(|_| EnBlogueError::PlanError("operator thread panicked".into()))?;
    }
    stats.nodes = (0..n)
        .map(|i| NodeStats {
            name: names[i].clone(),
            processed: processed[i].load(Ordering::Relaxed),
            emitted: emitted[i].load(Ordering::Relaxed),
        })
        .collect();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CollectSink, CountingOp, FilterDocs, PassThrough};
    use crate::source::ReplaySource;
    use enblogue_types::{Document, TagId, TickSpec, Timestamp};

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    fn sample_docs() -> Vec<Document> {
        vec![doc(1, 0, &[1]), doc(2, 0, &[2]), doc(3, 1, &[1, 2]), doc(4, 2, &[3])]
    }

    #[test]
    fn sync_executor_delivers_everything_in_order() {
        let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
        let sink = CollectSink::new("s1");
        let handle = sink.handle();
        g.attach(None, sink);
        let stats = run_graph(&mut g).unwrap();
        assert_eq!(stats.source_docs, 4);
        let collected = handle.lock().unwrap();
        let ids: Vec<u64> = collected.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn filters_drop_documents() {
        let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
        let filter =
            g.attach(None, FilterDocs::new("has-tag-1", |d: &Document| d.has_tag(TagId(1))));
        let sink = CollectSink::new("s1");
        let handle = sink.handle();
        g.attach(Some(filter), sink);
        run_graph(&mut g).unwrap();
        let ids: Vec<u64> = handle.lock().unwrap().iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn fanout_duplicates_docs_but_not_punctuation() {
        let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
        let a = g.attach(None, PassThrough::new("a"));
        let b = g.attach(None, PassThrough::new("b"));
        let counter = CountingOp::new("join");
        let counts = counter.handle();
        let join = g.attach(Some(a), counter);
        g.connect(b, join).unwrap();
        run_graph(&mut g).unwrap();
        let c = counts.lock().unwrap();
        // Docs arrive twice (once per parent); boundaries and flush once.
        assert_eq!(c.docs, 8);
        assert_eq!(c.boundaries, 3, "ticks 0,1,2 deduplicated");
        assert_eq!(c.flushes, 1);
    }

    #[test]
    fn stats_count_per_node_work() {
        let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
        let a = g.attach(None, PassThrough::new("a"));
        g.attach(Some(a), FilterDocs::new("none", |_| false));
        let stats = run_graph(&mut g).unwrap();
        // 3 tick batches + 3 boundaries + 1 flush = 7 events into each node.
        assert_eq!(stats.source_docs, 4, "batching does not change doc counts");
        assert_eq!(stats.nodes[0].processed, 7);
        assert_eq!(stats.nodes[0].emitted, 7);
        assert_eq!(stats.nodes[1].processed, 7);
        // Filter forwards punctuation but drops all doc batches.
        assert_eq!(stats.nodes[1].emitted, 4);
        assert_eq!(stats.total_processed(), 14);
    }

    #[test]
    fn threaded_executor_matches_sync_results() {
        let build = |shared: bool| {
            let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
            let f = if shared {
                g.attach(None, FilterDocs::new("has-tag-2", |d: &Document| d.has_tag(TagId(2))))
            } else {
                g.attach_unshared(
                    None,
                    FilterDocs::new("has-tag-2", |d: &Document| d.has_tag(TagId(2))),
                )
            };
            let sink = CollectSink::new("s1");
            let handle = sink.handle();
            g.attach(Some(f), sink);
            (g, handle)
        };

        let (mut g1, h1) = build(true);
        run_graph(&mut g1).unwrap();
        let (g2, h2) = build(true);
        run_graph_threaded(g2, 64).unwrap();

        let ids1: Vec<u64> = h1.lock().unwrap().iter().map(|d| d.id).collect();
        let ids2: Vec<u64> = h2.lock().unwrap().iter().map(|d| d.id).collect();
        assert_eq!(ids1, ids2);
        assert_eq!(ids1, vec![2, 3]);
    }

    #[test]
    fn threaded_executor_reports_stats() {
        let mut g = Graph::new(ReplaySource::new(sample_docs(), TickSpec::hourly()));
        let a = g.attach(None, PassThrough::new("a"));
        g.attach(Some(a), PassThrough::new("b"));
        let stats = run_graph_threaded(g, 8).unwrap();
        assert_eq!(stats.source_docs, 4);
        assert_eq!(stats.nodes[0].processed, 7);
        assert_eq!(stats.nodes[1].processed, 7);
    }

    #[test]
    fn empty_stream_still_flushes_sinks() {
        let mut g = Graph::new(ReplaySource::new(vec![], TickSpec::hourly()));
        let counter = CountingOp::new("c");
        let counts = counter.handle();
        g.attach(None, counter);
        run_graph(&mut g).unwrap();
        let c = counts.lock().unwrap();
        assert_eq!(c.docs, 0);
        assert_eq!(c.flushes, 1);
    }

    struct ExplodingSource;
    impl crate::source::Source for ExplodingSource {
        fn next_event(&mut self) -> Option<Event> {
            None // ends immediately without flushing
        }
    }

    #[test]
    fn executor_injects_flush_when_source_forgets() {
        let mut g = Graph::new(ExplodingSource);
        let counter = CountingOp::new("c");
        let counts = counter.handle();
        g.attach(None, counter);
        run_graph(&mut g).unwrap();
        assert_eq!(counts.lock().unwrap().flushes, 1);
    }

    #[test]
    fn fanout_serial_and_parallel_agree() {
        let run = |parallel: bool| {
            let mut items: Vec<(usize, u64)> = (0..8).map(|i| (0usize, i as u64)).collect();
            fanout(&mut items, parallel, |index, item| {
                item.0 = index;
                item.1 = item.1 * 10 + 1;
            });
            items
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial, parallel);
        for (i, &(index, value)) in serial.iter().enumerate() {
            assert_eq!(index, i, "each item sees its own index");
            assert_eq!(value, i as u64 * 10 + 1, "work applied exactly once");
        }
    }

    #[test]
    fn fanout_single_item_stays_serial() {
        let mut items = [5u64];
        fanout(&mut items, true, |_, item| *item += 1);
        assert_eq!(items, [6]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn fanout_propagates_worker_panics() {
        let mut items = [0u64, 1];
        fanout(&mut items, true, |index, _| {
            if index == 1 {
                panic!("worker boom");
            }
        });
    }
}
