//! Built-in operators: filters, maps, meters and sinks.
//!
//! Domain-specific operators (entity tagging, tick statistics, shift
//! detection) live in their own crates; these are the generic plumbing
//! stages every plan needs. By convention every operator **forwards
//! punctuation** ([`Event::TickBoundary`], [`Event::Flush`]) unchanged so
//! downstream stages stay tick-aligned.

use crate::event::Event;
use crate::operator::{EventSink, Operator};
use enblogue_types::{Document, Tick};
use std::sync::{Arc, Mutex};

/// Forwards everything unchanged. Useful as an explicit plan stage (e.g. a
/// named share point) and in tests.
pub struct PassThrough {
    name: String,
}

impl PassThrough {
    /// A pass-through stage named `name` (the name participates in the
    /// sharing signature).
    pub fn new(name: impl Into<String>) -> Self {
        PassThrough { name: name.into() }
    }
}

impl Operator for PassThrough {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> String {
        format!("pass:{}", self.name)
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        out.emit(event);
    }
}

/// Keeps only documents matching a predicate; punctuation passes through.
pub struct FilterDocs<F: Fn(&Document) -> bool + Send> {
    token: String,
    predicate: F,
}

impl<F: Fn(&Document) -> bool + Send> FilterDocs<F> {
    /// A filter whose sharing identity is `token` — closures cannot be
    /// compared, so two filters share iff their tokens match.
    pub fn new(token: impl Into<String>, predicate: F) -> Self {
        FilterDocs { token: token.into(), predicate }
    }
}

impl<F: Fn(&Document) -> bool + Send> Operator for FilterDocs<F> {
    fn name(&self) -> &str {
        &self.token
    }

    fn signature(&self) -> String {
        format!("filter:{}", self.token)
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        match event {
            Event::Doc(doc) => {
                if (self.predicate)(&doc) {
                    out.emit(Event::Doc(doc));
                }
            }
            Event::DocBatch(docs) => {
                let kept: Vec<Document> =
                    docs.into_iter().filter(|d| (self.predicate)(d)).collect();
                // A fully filtered batch carries nothing — emit no event,
                // matching the per-doc behaviour.
                if !kept.is_empty() {
                    out.emit(Event::DocBatch(kept));
                }
            }
            other => out.emit(other),
        }
    }
}

/// Transforms documents with a function; punctuation passes through.
pub struct MapDocs<F: FnMut(Document) -> Document + Send> {
    token: String,
    f: F,
}

impl<F: FnMut(Document) -> Document + Send> MapDocs<F> {
    /// A map whose sharing identity is `token`.
    pub fn new(token: impl Into<String>, f: F) -> Self {
        MapDocs { token: token.into(), f }
    }
}

impl<F: FnMut(Document) -> Document + Send> Operator for MapDocs<F> {
    fn name(&self) -> &str {
        &self.token
    }

    fn signature(&self) -> String {
        format!("map:{}", self.token)
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        match event {
            Event::Doc(doc) => out.emit(Event::Doc((self.f)(doc))),
            Event::DocBatch(docs) => {
                out.emit(Event::DocBatch(docs.into_iter().map(&mut self.f).collect()))
            }
            other => out.emit(other),
        }
    }
}

/// Measures per-tick document rates; forwards everything.
///
/// The paper's front-end displays how topic activity evolves; this meter is
/// also the workhorse of the throughput benches.
pub struct RateMeter {
    name: String,
    current_tick: Option<Tick>,
    current_count: u64,
    rates: Arc<Mutex<Vec<(Tick, u64)>>>,
}

impl RateMeter {
    /// A rate meter named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        RateMeter {
            name: name.into(),
            current_tick: None,
            current_count: 0,
            rates: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the measured `(tick, docs)` series.
    pub fn handle(&self) -> Arc<Mutex<Vec<(Tick, u64)>>> {
        Arc::clone(&self.rates)
    }
}

impl Operator for RateMeter {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> String {
        // Includes the handle address: two meters are the same node only if
        // they are literally the same instance, since output goes to a
        // caller-held handle.
        format!("rate:{}:{:p}", self.name, Arc::as_ptr(&self.rates))
    }

    fn process(&mut self, event: Event, out: &mut dyn EventSink) {
        match &event {
            Event::Doc(_) | Event::DocBatch(_) => self.current_count += event.doc_count(),
            Event::TickBoundary(tick) => {
                self.rates.lock().unwrap().push((*tick, self.current_count));
                self.current_tick = Some(*tick);
                self.current_count = 0;
            }
            Event::Flush => {
                if self.current_count > 0 {
                    let tick = self.current_tick.map_or(Tick::ZERO, Tick::next);
                    self.rates.lock().unwrap().push((tick, self.current_count));
                }
            }
        }
        out.emit(event);
    }
}

/// Terminal sink collecting all documents.
pub struct CollectSink {
    name: String,
    docs: Arc<Mutex<Vec<Document>>>,
}

impl CollectSink {
    /// A collecting sink named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CollectSink { name: name.into(), docs: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Handle to the collected documents.
    pub fn handle(&self) -> Arc<Mutex<Vec<Document>>> {
        Arc::clone(&self.docs)
    }
}

impl Operator for CollectSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> String {
        format!("collect:{}:{:p}", self.name, Arc::as_ptr(&self.docs))
    }

    fn process(&mut self, event: Event, _out: &mut dyn EventSink) {
        match event {
            Event::Doc(doc) => self.docs.lock().unwrap().push(doc),
            Event::DocBatch(docs) => self.docs.lock().unwrap().extend(docs),
            _ => {}
        }
    }
}

/// Counts observed by a [`CountingOp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Documents seen.
    pub docs: u64,
    /// Tick boundaries seen.
    pub boundaries: u64,
    /// Flushes seen.
    pub flushes: u64,
}

/// Terminal sink counting events by kind; used by tests and benches.
pub struct CountingOp {
    name: String,
    counts: Arc<Mutex<EventCounts>>,
}

impl CountingOp {
    /// A counting sink named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CountingOp { name: name.into(), counts: Arc::new(Mutex::new(EventCounts::default())) }
    }

    /// Handle to the counters.
    pub fn handle(&self) -> Arc<Mutex<EventCounts>> {
        Arc::clone(&self.counts)
    }
}

impl Operator for CountingOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> String {
        format!("count:{}:{:p}", self.name, Arc::as_ptr(&self.counts))
    }

    fn process(&mut self, event: Event, _out: &mut dyn EventSink) {
        let mut counts = self.counts.lock().unwrap();
        match event {
            Event::Doc(_) | Event::DocBatch(_) => counts.docs += event.doc_count(),
            Event::TickBoundary(_) => counts.boundaries += 1,
            Event::Flush => counts.flushes += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{TagId, Timestamp};

    fn doc(id: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(id))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    #[test]
    fn filter_keeps_matching_docs_and_punctuation() {
        let mut f = FilterDocs::new("t1", |d: &Document| d.has_tag(TagId(1)));
        let mut out: Vec<Event> = Vec::new();
        f.process(Event::Doc(doc(1, &[1])), &mut out);
        f.process(Event::Doc(doc(2, &[2])), &mut out);
        f.process(Event::TickBoundary(Tick(0)), &mut out);
        f.process(Event::Flush, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_doc().unwrap().id, 1);
        assert!(out[1].is_tick_boundary());
        assert!(out[2].is_flush());
    }

    #[test]
    fn map_transforms_docs() {
        let mut m = MapDocs::new("strip-text", |mut d: Document| {
            d.clear_text();
            d
        });
        let mut out: Vec<Event> = Vec::new();
        let mut d = doc(1, &[1]);
        d.text = Some("body".into());
        m.process(Event::Doc(d), &mut out);
        assert!(out[0].as_doc().unwrap().text.is_none());
    }

    #[test]
    fn rate_meter_reports_per_tick_counts() {
        let mut meter = RateMeter::new("m");
        let handle = meter.handle();
        let mut out: Vec<Event> = Vec::new();
        meter.process(Event::Doc(doc(1, &[1])), &mut out);
        meter.process(Event::Doc(doc(2, &[1])), &mut out);
        meter.process(Event::TickBoundary(Tick(0)), &mut out);
        meter.process(Event::Doc(doc(3, &[1])), &mut out);
        meter.process(Event::TickBoundary(Tick(1)), &mut out);
        meter.process(Event::Flush, &mut out);
        assert_eq!(*handle.lock().unwrap(), vec![(Tick(0), 2), (Tick(1), 1)]);
        assert_eq!(out.len(), 6, "meter forwards everything");
    }

    #[test]
    fn rate_meter_flush_reports_partial_tick() {
        let mut meter = RateMeter::new("m");
        let handle = meter.handle();
        let mut out: Vec<Event> = Vec::new();
        meter.process(Event::Doc(doc(1, &[1])), &mut out);
        meter.process(Event::Flush, &mut out);
        assert_eq!(*handle.lock().unwrap(), vec![(Tick(0), 1)]);
    }

    #[test]
    fn operators_handle_doc_batches() {
        // Filter: keeps the matching subset, drops fully filtered batches.
        let mut f = FilterDocs::new("t1", |d: &Document| d.has_tag(TagId(1)));
        let mut out: Vec<Event> = Vec::new();
        f.process(Event::DocBatch(vec![doc(1, &[1]), doc(2, &[2]), doc(3, &[1])]), &mut out);
        f.process(Event::DocBatch(vec![doc(4, &[2])]), &mut out);
        assert_eq!(out.len(), 1, "the all-filtered batch vanishes");
        let ids: Vec<u64> = out[0].docs().iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 3]);

        // Map: applies to every member.
        let mut m = MapDocs::new("strip-text", |mut d: Document| {
            d.clear_text();
            d
        });
        let mut d1 = doc(1, &[1]);
        d1.text = Some("body".into());
        let mut out: Vec<Event> = Vec::new();
        m.process(Event::DocBatch(vec![d1, doc(2, &[1])]), &mut out);
        assert!(out[0].docs().iter().all(|d| d.text.is_none()));

        // Meter, collector and counter all see batch cardinality.
        let mut meter = RateMeter::new("m");
        let rates = meter.handle();
        let mut collect = CollectSink::new("s");
        let collected = collect.handle();
        let mut count = CountingOp::new("c");
        let counts = count.handle();
        let mut out: Vec<Event> = Vec::new();
        for op in [&mut meter as &mut dyn Operator, &mut collect, &mut count] {
            op.process(Event::DocBatch(vec![doc(1, &[1]), doc(2, &[1])]), &mut out);
            op.process(Event::TickBoundary(Tick(0)), &mut out);
        }
        assert_eq!(*rates.lock().unwrap(), vec![(Tick(0), 2)]);
        assert_eq!(collected.lock().unwrap().len(), 2);
        assert_eq!(counts.lock().unwrap().docs, 2);
    }

    #[test]
    fn sinks_have_distinct_signatures() {
        let a = CollectSink::new("s");
        let b = CollectSink::new("s");
        assert_ne!(a.signature(), b.signature(), "sinks with separate handles must not be shared");
        let p = PassThrough::new("x");
        let q = PassThrough::new("x");
        assert_eq!(p.signature(), q.signature(), "stateless stages share by name");
    }

    #[test]
    fn counting_op_counts_kinds() {
        let mut c = CountingOp::new("c");
        let handle = c.handle();
        let mut out: Vec<Event> = Vec::new();
        c.process(Event::Doc(doc(1, &[])), &mut out);
        c.process(Event::TickBoundary(Tick(0)), &mut out);
        c.process(Event::Flush, &mut out);
        assert_eq!(*handle.lock().unwrap(), EventCounts { docs: 1, boundaries: 1, flushes: 1 });
        assert!(out.is_empty(), "sinks emit nothing");
    }
}
