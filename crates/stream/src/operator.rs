//! The operator interface: pluggable pipeline stages.

use crate::event::Event;

/// Downstream side of an operator: where produced events go.
///
/// The executor hands each [`Operator::process`] call a sink that forwards
/// emitted events along the node's outgoing edges.
pub trait EventSink {
    /// Pushes `event` to all downstream consumers.
    fn emit(&mut self, event: Event);
}

/// A `Vec<Event>` collects emitted events; used by tests and the executors'
/// internal scratch buffers.
impl EventSink for Vec<Event> {
    fn emit(&mut self, event: Event) {
        self.push(event);
    }
}

/// A pipeline stage in the operator DAG.
///
/// Operators receive events pushed from their producers and emit any number
/// of events to their consumers (zero = filter/sink behaviour, one = map,
/// many = fan-out). They are `Send` so the threaded executor can own one
/// per thread.
///
/// §4.1: "There are plug-in options for sketching operators that map stream
/// items into synopses, statistics operators, shift prediction operators,
/// etc."
pub trait Operator: Send {
    /// Human-readable name for metrics and tracing.
    fn name(&self) -> &str;

    /// Structural signature for plan sharing.
    ///
    /// Two operators with equal signatures compute the same function on the
    /// same input; when a second query plan attaches an operator whose
    /// signature matches an existing child of the same producer, the graph
    /// reuses the existing node ("overlapping parts … are shared for
    /// efficiency", §4.1). Return a string that encodes the operator type
    /// *and all parameters that affect its output*. Stateful sinks whose
    /// output handles differ must include a distinguishing token.
    fn signature(&self) -> String;

    /// Processes one event, emitting derived events downstream.
    fn process(&mut self, event: Event, out: &mut dyn EventSink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{Document, Timestamp};

    struct Echo;
    impl Operator for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn signature(&self) -> String {
            "echo".into()
        }
        fn process(&mut self, event: Event, out: &mut dyn EventSink) {
            out.emit(event);
        }
    }

    #[test]
    fn vec_collects_emitted_events() {
        let mut op = Echo;
        let mut out: Vec<Event> = Vec::new();
        op.process(Event::Doc(Document::builder(1, Timestamp::ZERO).build()), &mut out);
        op.process(Event::Flush, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out[1].is_flush());
    }
}
