//! Events flowing along producer–consumer edges.

use enblogue_types::{Document, Tick};

/// The unit of data pushed through the operator DAG.
///
/// Documents travel either one at a time ([`Event::Doc`]) or as whole
/// slices of one tick ([`Event::DocBatch`]) — sources that know tick
/// extents up front (replays, merges) emit batches so every edge hop and
/// sink call amortises over the slice. Besides documents, the stream
/// carries *punctuations*: a [`Event::TickBoundary`] guarantees that every
/// document of the closed tick has been delivered (operators aggregate per
/// tick and emit derived state on the boundary), and [`Event::Flush`]
/// marks end-of-stream so sinks can finalise.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A document tuple `(timestamp, docId, tags, entities)`.
    Doc(Document),
    /// A timestamp-ordered run of documents from a single tick, delivered
    /// in one hop. Semantically identical to the same documents as
    /// individual [`Event::Doc`]s; batching is a pure execution knob.
    DocBatch(Vec<Document>),
    /// All documents belonging to `tick` (and earlier) have been delivered.
    TickBoundary(Tick),
    /// End of stream; no further events will arrive.
    Flush,
}

impl Event {
    /// The contained single document, if any (batches return `None`; use
    /// [`Event::docs`] to view both shapes uniformly).
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Event::Doc(doc) => Some(doc),
            _ => None,
        }
    }

    /// The carried documents as a slice: one for [`Event::Doc`], the whole
    /// run for [`Event::DocBatch`], empty for punctuation.
    pub fn docs(&self) -> &[Document] {
        match self {
            Event::Doc(doc) => std::slice::from_ref(doc),
            Event::DocBatch(docs) => docs,
            _ => &[],
        }
    }

    /// Number of documents this event carries.
    pub fn doc_count(&self) -> u64 {
        self.docs().len() as u64
    }

    /// Whether this is a tick-boundary punctuation.
    pub fn is_tick_boundary(&self) -> bool {
        matches!(self, Event::TickBoundary(_))
    }

    /// Whether this is the end-of-stream flush.
    pub fn is_flush(&self) -> bool {
        matches!(self, Event::Flush)
    }

    /// Short label for tracing/metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Doc(_) => "doc",
            Event::DocBatch(_) => "doc-batch",
            Event::TickBoundary(_) => "tick",
            Event::Flush => "flush",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    #[test]
    fn accessors_discriminate() {
        let doc = Document::builder(1, Timestamp::ZERO).build();
        let e = Event::Doc(doc.clone());
        assert_eq!(e.as_doc(), Some(&doc));
        assert!(!e.is_tick_boundary());
        assert!(!e.is_flush());
        assert_eq!(e.label(), "doc");

        let t = Event::TickBoundary(Tick(4));
        assert!(t.is_tick_boundary());
        assert_eq!(t.as_doc(), None);
        assert_eq!(t.label(), "tick");

        assert!(Event::Flush.is_flush());
        assert_eq!(Event::Flush.label(), "flush");
    }

    #[test]
    fn docs_view_unifies_singletons_and_batches() {
        let a = Document::builder(1, Timestamp::ZERO).build();
        let b = Document::builder(2, Timestamp::ZERO).build();

        let single = Event::Doc(a.clone());
        assert_eq!(single.docs(), std::slice::from_ref(&a));
        assert_eq!(single.doc_count(), 1);

        let batch = Event::DocBatch(vec![a, b]);
        assert_eq!(batch.docs().len(), 2);
        assert_eq!(batch.doc_count(), 2);
        assert_eq!(batch.as_doc(), None, "batches are not single docs");
        assert_eq!(batch.label(), "doc-batch");

        assert_eq!(Event::Flush.doc_count(), 0);
        assert!(Event::Flush.docs().is_empty());
    }
}
