//! Events flowing along producer–consumer edges.

use enblogue_types::{Document, Tick};

/// The unit of data pushed through the operator DAG.
///
/// Besides documents, the stream carries *punctuations*: a
/// [`Event::TickBoundary`] guarantees that every document of the closed
/// tick has been delivered (operators aggregate per tick and emit derived
/// state on the boundary), and [`Event::Flush`] marks end-of-stream so
/// sinks can finalise.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A document tuple `(timestamp, docId, tags, entities)`.
    Doc(Document),
    /// All documents belonging to `tick` (and earlier) have been delivered.
    TickBoundary(Tick),
    /// End of stream; no further events will arrive.
    Flush,
}

impl Event {
    /// The contained document, if any.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Event::Doc(doc) => Some(doc),
            _ => None,
        }
    }

    /// Whether this is a tick-boundary punctuation.
    pub fn is_tick_boundary(&self) -> bool {
        matches!(self, Event::TickBoundary(_))
    }

    /// Whether this is the end-of-stream flush.
    pub fn is_flush(&self) -> bool {
        matches!(self, Event::Flush)
    }

    /// Short label for tracing/metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Doc(_) => "doc",
            Event::TickBoundary(_) => "tick",
            Event::Flush => "flush",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    #[test]
    fn accessors_discriminate() {
        let doc = Document::builder(1, Timestamp::ZERO).build();
        let e = Event::Doc(doc.clone());
        assert_eq!(e.as_doc(), Some(&doc));
        assert!(!e.is_tick_boundary());
        assert!(!e.is_flush());
        assert_eq!(e.label(), "doc");

        let t = Event::TickBoundary(Tick(4));
        assert!(t.is_tick_boundary());
        assert_eq!(t.as_doc(), None);
        assert_eq!(t.label(), "tick");

        assert!(Event::Flush.is_flush());
        assert_eq!(Event::Flush.label(), "flush");
    }
}
