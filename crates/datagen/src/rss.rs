//! Themed RSS feed generators.
//!
//! The paper's engine "includes a set of wrappers to consume data from
//! Twitter and several RSS feeds from blogs and online newspapers". Each
//! synthetic feed is *themed*: it draws tags from its own biased slice of
//! the vocabulary (a sports blog mostly emits sports tags), at a moderate
//! per-hour rate. Feeds are merged into one stream by
//! `enblogue_stream::MergeSource`.

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use enblogue_types::{Document, TagId, TagInterner, TagKind, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a bundle of themed feeds.
#[derive(Debug, Clone)]
pub struct RssConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of feeds.
    pub feeds: usize,
    /// Stream length in hours.
    pub hours: u64,
    /// Items per feed per hour.
    pub items_per_hour: u64,
    /// Shared tag vocabulary size.
    pub n_tags: usize,
    /// Fraction of each feed's tags drawn from its own theme slice
    /// (the rest from the global vocabulary).
    pub theme_bias: f64,
}

impl Default for RssConfig {
    fn default() -> Self {
        RssConfig {
            seed: 0x0_55,
            feeds: 4,
            hours: 72,
            items_per_hour: 12,
            n_tags: 300,
            theme_bias: 0.7,
        }
    }
}

/// One generated feed.
pub struct RssFeed {
    /// Feed name ("feed-0" …).
    pub name: String,
    /// Items sorted by timestamp.
    pub docs: Vec<Document>,
    /// The theme slice of the vocabulary this feed is biased towards.
    pub theme_tags: Vec<TagId>,
}

/// Generates `config.feeds` themed feeds over one shared vocabulary.
///
/// Returns the feeds plus the shared interner and vocabulary. Documents
/// have globally unique ids across feeds.
pub fn generate_feeds(config: &RssConfig) -> (Vec<RssFeed>, TagInterner, Vocabulary) {
    assert!(config.feeds > 0, "need at least one feed");
    assert!((0.0..=1.0).contains(&config.theme_bias), "bias must be a fraction");
    assert!(config.n_tags >= config.feeds * 4, "vocabulary too small to slice into themes");
    let interner = TagInterner::new();
    let vocab =
        Vocabulary::generate(&interner, TagKind::Category, config.n_tags, config.seed ^ 0x2555);
    let slice = config.n_tags / config.feeds;

    let global_zipf = Zipf::new(config.n_tags, 1.0);
    let theme_zipf = Zipf::new(slice, 0.8);

    let mut feeds = Vec::with_capacity(config.feeds);
    let mut next_id: u64 = 1;
    for f in 0..config.feeds {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(f as u64 * 0x9E37));
        let theme_tags: Vec<TagId> = (f * slice..(f + 1) * slice).map(|r| vocab.id(r)).collect();
        let mut docs = Vec::with_capacity((config.hours * config.items_per_hour) as usize);
        for hour in 0..config.hours {
            for _ in 0..config.items_per_hour {
                let ts = Timestamp::from_hours(hour).plus(rng.gen_range(0..Timestamp::HOUR));
                let n_tags = rng.gen_range(2..=4);
                let tags: Vec<TagId> = (0..n_tags)
                    .map(|_| {
                        if rng.gen_bool(config.theme_bias) {
                            theme_tags[theme_zipf.sample(&mut rng)]
                        } else {
                            vocab.id(global_zipf.sample(&mut rng))
                        }
                    })
                    .collect();
                docs.push(Document::builder(next_id, ts).tags(tags).build());
                next_id += 1;
            }
        }
        docs.sort_by_key(|d| (d.timestamp, d.id));
        feeds.push(RssFeed { name: format!("feed-{f}"), docs, theme_tags });
    }
    (feeds, interner, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RssConfig {
        RssConfig { seed: 9, feeds: 3, hours: 6, items_per_hour: 10, n_tags: 60, theme_bias: 0.8 }
    }

    #[test]
    fn feeds_have_expected_volume_and_order() {
        let (feeds, _, _) = generate_feeds(&small_config());
        assert_eq!(feeds.len(), 3);
        for feed in &feeds {
            assert_eq!(feed.docs.len(), 60);
            for w in feed.docs.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
        }
    }

    #[test]
    fn doc_ids_are_globally_unique() {
        let (feeds, _, _) = generate_feeds(&small_config());
        let mut ids: Vec<u64> = feeds.iter().flat_map(|f| f.docs.iter().map(|d| d.id)).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn feeds_are_theme_biased() {
        let (feeds, _, _) = generate_feeds(&small_config());
        for feed in &feeds {
            let theme: std::collections::HashSet<TagId> = feed.theme_tags.iter().copied().collect();
            let total: usize = feed.docs.iter().map(|d| d.tags.len()).sum();
            let themed: usize =
                feed.docs.iter().map(|d| d.tags.iter().filter(|t| theme.contains(t)).count()).sum();
            let frac = themed as f64 / total as f64;
            assert!(frac > 0.5, "{}: theme fraction {frac} too low", feed.name);
        }
    }

    #[test]
    fn themes_are_disjoint() {
        let (feeds, _, _) = generate_feeds(&small_config());
        let mut all: Vec<TagId> = feeds.iter().flat_map(|f| f.theme_tags.iter().copied()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "theme slices must not overlap");
    }

    #[test]
    fn deterministic_generation() {
        let (a, _, _) = generate_feeds(&small_config());
        let (b, _, _) = generate_feeds(&small_config());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.docs.len(), fb.docs.len());
            for (x, y) in fa.docs.iter().zip(&fb.docs) {
                assert_eq!(x.tags, y.tags);
            }
        }
    }
}
