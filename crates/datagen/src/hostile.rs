//! Hostile workload generators: event-time and flood attacks.
//!
//! The other generators in this crate model *cooperative* streams —
//! sorted, duplicate-free, honestly sourced. Real Web 2.0 ingestion is
//! none of those things, and EnBlogue's shift scores are a target: a feed
//! that replays documents, floods a tag pair, or delivers a day late can
//! manufacture or destroy "emergent topics". This module scripts exactly
//! those attacks, each against the same clean background stream with one
//! planted genuine event, so the event-time layer
//! (`enblogue_core::config::EventTimeConfig` /
//! `SourceGuardConfig`) can be drilled with ground truth attached:
//!
//! * [`HostileWorkload::late_arrival_storm`] — a fraction of arrivals is
//!   delayed by up to a bounded number of ticks; the *event* timestamps
//!   are untouched, so a reorder buffer with sufficient lateness bound
//!   must reconstruct the clean stream exactly.
//! * [`HostileWorkload::duplicate_flood`] — one source re-emits every one
//!   of its documents several times; a dedup window must drop each copy,
//!   reproducing the clean rankings byte-for-byte.
//! * [`HostileWorkload::spam_burst`] — coordinated spam sources spray a
//!   fixed tag pair at high rate inside a window, trying to push a fake
//!   topic into the ranking; per-source rate caps must bound the damage.
//!
//! Every workload is deterministic in the config seed and carries both
//! the hostile **arrival stream** and the **clean baseline** it was
//! derived from.

use crate::events::{CorrelationEvent, EventScript, RampShape};
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use enblogue_types::{Document, SourceId, TagInterner, TagKind, TagPair, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration shared by all hostile workloads.
#[derive(Debug, Clone)]
pub struct HostileConfig {
    /// Master seed; every derived generator is seeded from it.
    pub seed: u64,
    /// Stream length in hourly ticks.
    pub hours: u64,
    /// Background documents per tick.
    pub docs_per_hour: u64,
    /// Hashtag vocabulary size.
    pub n_tags: usize,
    /// Honest sources feeding the background (ids `1..=n_sources`).
    pub n_sources: u32,
}

impl Default for HostileConfig {
    /// A drill-scale default: ~5 k documents over 96 hourly ticks from
    /// 12 honest sources, with one planted genuine event.
    fn default() -> Self {
        HostileConfig { seed: 0xBAD_F00D, hours: 96, docs_per_hour: 50, n_tags: 60, n_sources: 12 }
    }
}

/// One hostile arrival stream plus the clean baseline it perturbs.
pub struct HostileWorkload {
    /// Workload identifier ("late_arrival_storm", …).
    pub name: &'static str,
    /// The stream in **arrival order** — possibly out of event-time
    /// order, with duplicates, or with spam mixed in.
    pub arrivals: Vec<Document>,
    /// The clean, sorted, duplicate-free baseline stream (what an honest
    /// feed would have delivered).
    pub clean: Vec<Document>,
    /// The shared interner.
    pub interner: TagInterner,
    /// The planted *genuine* event (ground truth that must survive).
    pub script: EventScript,
    /// The manufactured pair of the spam burst, when one exists.
    pub spam_pair: Option<TagPair>,
    /// Hostile extras: delayed documents (storm), duplicate copies
    /// (flood), or spam documents (burst).
    pub injected: u64,
}

/// The clean background: zipf-tagged documents from honest sources with
/// one genuine correlation event planted mid-stream.
fn base_stream(config: &HostileConfig) -> (Vec<Document>, TagInterner, EventScript) {
    assert!(config.hours >= 12, "hostile drills need a dozen ticks");
    assert!(config.n_tags >= 16 && config.n_sources >= 1, "universe too small");
    let interner = TagInterner::new();
    let tags =
        Vocabulary::generate(&interner, TagKind::Hashtag, config.n_tags, config.seed ^ 0x7A6);
    let zipf = Zipf::new(config.n_tags, 1.05);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // The genuine event: a popular tag meets a mid-tail tag over the
    // middle third of the stream.
    let event_a = tags.id(1);
    let event_b = tags.id(config.n_tags / 3);
    let start = Timestamp::from_hours(config.hours / 3);
    let end = Timestamp::from_hours(2 * config.hours / 3);
    let mut script = EventScript::new();
    script.push(CorrelationEvent::new(
        "genuine burst",
        event_a,
        event_b,
        start,
        end,
        6.0,
        RampShape::Step,
    ));
    let event = script.events()[0].clone();

    let mut docs = Vec::with_capacity((config.hours * config.docs_per_hour) as usize);
    let mut next_id: u64 = 1;
    for hour in 0..config.hours {
        let tick_start = Timestamp::from_hours(hour);
        let mid = tick_start.plus(Timestamp::HOUR / 2);
        let mut event_budget = event.rate_at(mid).round() as u64;
        for _ in 0..config.docs_per_hour {
            let ts = tick_start.plus(rng.gen_range(0..Timestamp::HOUR));
            let source = SourceId(1 + rng.gen_range(0..config.n_sources));
            let doc = if event_budget > 0 {
                event_budget -= 1;
                Document::builder(next_id, ts)
                    .tags([event.tag_a, event.tag_b])
                    .source(source)
                    .build()
            } else {
                let a = tags.id(zipf.sample(&mut rng));
                let b = tags.id(zipf.sample(&mut rng));
                Document::builder(next_id, ts)
                    .tags(if a == b { vec![a] } else { vec![a, b] })
                    .source(source)
                    .build()
            };
            docs.push(doc);
            next_id += 1;
        }
    }
    docs.sort_by_key(|d| (d.timestamp, d.id));
    (docs, interner, script)
}

impl HostileWorkload {
    /// A late-arrival storm: `delayed_share` (~30%) of the clean stream
    /// arrives up to `max_delay_ticks` ticks after its event time (event
    /// timestamps untouched). Re-sorting arrivals by event time yields
    /// the clean stream back, so a reorder buffer with
    /// `bounded_lateness >= max_delay_ticks` must attribute every
    /// document to its true tick and reproduce the clean rankings
    /// byte-for-byte.
    pub fn late_arrival_storm(config: &HostileConfig, max_delay_ticks: u64) -> Self {
        assert!(max_delay_ticks >= 1, "a storm needs at least one tick of delay");
        let (clean, interner, script) = base_stream(config);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1A7E);
        let mut injected = 0u64;
        // Arrival time = event time + delay; stable sort keeps the clean
        // order among undelayed documents.
        let mut keyed: Vec<(Timestamp, u64, Document)> = clean
            .iter()
            .map(|doc| {
                let delayed = rng.gen_bool(0.3);
                let delay = if delayed {
                    injected += 1;
                    rng.gen_range(1..=max_delay_ticks) * Timestamp::HOUR
                } else {
                    0
                };
                (doc.timestamp.plus(delay), doc.id, doc.clone())
            })
            .collect();
        keyed.sort_by_key(|&(arrival, id, _)| (arrival, id));
        let arrivals = keyed.into_iter().map(|(_, _, doc)| doc).collect();
        HostileWorkload {
            name: "late_arrival_storm",
            arrivals,
            clean,
            interner,
            script,
            spam_pair: None,
            injected,
        }
    }

    /// A duplicate flood: every document of honest source 1 is re-emitted
    /// `copies` times immediately after the original — identical id,
    /// source, and timestamp, the classic feed-replay failure. A dedup
    /// window of ≥ 1 tick must reject every copy and reproduce the clean
    /// rankings byte-for-byte.
    pub fn duplicate_flood(config: &HostileConfig, copies: u32) -> Self {
        assert!(copies >= 1, "a flood needs at least one copy");
        let (clean, interner, script) = base_stream(config);
        let flooder = SourceId(1);
        let mut arrivals = Vec::with_capacity(clean.len() * 2);
        let mut injected = 0u64;
        for doc in &clean {
            arrivals.push(doc.clone());
            if doc.source == flooder {
                for _ in 0..copies {
                    arrivals.push(doc.clone());
                    injected += 1;
                }
            }
        }
        HostileWorkload {
            name: "duplicate_flood",
            arrivals,
            clean,
            interner,
            script,
            spam_pair: None,
            injected,
        }
    }

    /// A coordinated spam burst: `spam_sources` fresh sources each spray
    /// `docs_per_tick` documents per tick, all tagged with one fixed
    /// (previously unseen) tag pair, across the middle third of the
    /// stream — volume engineered to out-shout the genuine event and
    /// push the fake pair into the ranking. Per-source token-bucket caps
    /// must throttle each spammer to the configured rate and keep the
    /// damage bounded.
    pub fn spam_burst(config: &HostileConfig, spam_sources: u32, docs_per_tick: u64) -> Self {
        assert!(spam_sources >= 1 && docs_per_tick >= 1, "a burst needs volume");
        let (clean, interner, script) = base_stream(config);
        let spam_a = interner.intern("spamstorm", TagKind::Hashtag);
        let spam_b = interner.intern("fakecrisis", TagKind::Hashtag);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5CA4);
        let mut next_id = clean.last().map_or(1, |d| d.id + 1);
        let mut arrivals = clean.clone();
        let mut injected = 0u64;
        for hour in config.hours / 3..2 * config.hours / 3 {
            let tick_start = Timestamp::from_hours(hour);
            for s in 0..spam_sources {
                let source = SourceId(config.n_sources + 1 + s);
                for _ in 0..docs_per_tick {
                    let ts = tick_start.plus(rng.gen_range(0..Timestamp::HOUR));
                    arrivals.push(
                        Document::builder(next_id, ts)
                            .tags([spam_a, spam_b])
                            .source(source)
                            .build(),
                    );
                    next_id += 1;
                    injected += 1;
                }
            }
        }
        arrivals.sort_by_key(|d| (d.timestamp, d.id));
        HostileWorkload {
            name: "spam_burst",
            arrivals,
            clean,
            interner,
            script,
            spam_pair: Some(TagPair::new(spam_a, spam_b)),
            injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_by_event_time(docs: &[Document]) -> Vec<Document> {
        let mut sorted = docs.to_vec();
        sorted.sort_by_key(|d| (d.timestamp, d.id));
        sorted
    }

    #[test]
    fn storm_is_a_permutation_of_the_clean_stream() {
        let w = HostileWorkload::late_arrival_storm(&HostileConfig::default(), 3);
        assert_eq!(w.arrivals.len(), w.clean.len());
        assert!(w.injected > 0, "some documents must be delayed");
        assert_eq!(sorted_by_event_time(&w.arrivals), w.clean);
        // It is genuinely out of order as an arrival stream.
        assert!(w.arrivals.windows(2).any(|p| p[0].timestamp > p[1].timestamp));
    }

    #[test]
    fn storm_delay_is_bounded() {
        let max_delay = 4u64;
        let w = HostileWorkload::late_arrival_storm(&HostileConfig::default(), max_delay);
        // Each document arrives within max_delay ticks of its event time:
        // the maximum event timestamp seen so far never runs more than
        // max_delay ticks ahead of any later arrival.
        let mut max_seen = Timestamp::from_hours(0);
        for doc in &w.arrivals {
            assert!(
                doc.timestamp.plus(max_delay * Timestamp::HOUR) >= max_seen,
                "doc {} arrived more than {max_delay} ticks late",
                doc.id
            );
            max_seen = max_seen.max(doc.timestamp);
        }
    }

    #[test]
    fn flood_duplicates_only_the_flooding_source() {
        let config = HostileConfig::default();
        let w = HostileWorkload::duplicate_flood(&config, 2);
        let from_flooder = w.clean.iter().filter(|d| d.source == SourceId(1)).count() as u64;
        assert_eq!(w.injected, from_flooder * 2);
        assert_eq!(w.arrivals.len() as u64, w.clean.len() as u64 + w.injected);
        // Copies are exact: same id, source, timestamp.
        let mut seen = std::collections::HashMap::new();
        for doc in &w.arrivals {
            *seen.entry((doc.source, doc.id, doc.timestamp)).or_insert(0u32) += 1;
        }
        assert!(seen.values().all(|&n| n == 1 || n == 3));
    }

    #[test]
    fn spam_burst_adds_a_fresh_pair_from_fresh_sources() {
        let config = HostileConfig::default();
        let w = HostileWorkload::spam_burst(&config, 4, 30);
        let spam_a = w.interner.get("spamstorm", TagKind::Hashtag).unwrap();
        let spam_b = w.interner.get("fakecrisis", TagKind::Hashtag).unwrap();
        assert_eq!(w.spam_pair, Some(TagPair::new(spam_a, spam_b)));
        assert!(w.clean.iter().all(|d| !d.has_tag(spam_a) && !d.has_tag(spam_b)));
        let spam: Vec<&Document> = w.arrivals.iter().filter(|d| d.has_tag(spam_a)).collect();
        assert_eq!(spam.len() as u64, w.injected);
        assert!(spam.iter().all(|d| d.source.0 > config.n_sources));
        // Arrivals stay event-time sorted (this attack is in-order).
        assert!(w.arrivals.windows(2).all(|p| p[0].timestamp <= p[1].timestamp));
    }

    #[test]
    fn workloads_are_deterministic_in_the_seed() {
        let config = HostileConfig::default();
        let a = HostileWorkload::late_arrival_storm(&config, 3);
        let b = HostileWorkload::late_arrival_storm(&config, 3);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.clean, b.clean);
    }
}
