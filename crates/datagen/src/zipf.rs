//! Zipf-distributed sampling.
//!
//! Tag popularity in Web 2.0 streams is heavily skewed; all background
//! chatter in the generators draws tags from a Zipf law. Implemented with a
//! precomputed CDF and binary search (rand 0.8 ships no Zipf distribution,
//! and the CDF approach is exact and fast for our N ≤ 10⁶).

use rand::Rng;

/// A Zipf(N, s) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (s = 1.0 ≈ classic Zipf;
    /// larger = more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf[i] >= u.
        match self.cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_ranks_are_more_probable() {
        let z = Zipf::new(50, 1.2);
        for r in 1..50 {
            assert!(z.pmf(r - 1) > z.pmf(r), "rank {r}");
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 20];
        let trials = 200_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.pmf(r) * trials as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {r}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 1.0);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.pmf(0), 1.0);
        assert_eq!(z.pmf(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
