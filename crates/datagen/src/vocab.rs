//! Pseudo-word vocabularies for tags and content terms.
//!
//! Generates pronounceable, collision-free synthetic words so experiment
//! output is human-readable ("beruno kilatu" instead of "tag_1234"), and
//! maps them into the shared [`TagInterner`].

use enblogue_types::{TagId, TagInterner, TagKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ONSETS: [&str; 16] =
    ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st"];
const VOWELS: [&str; 6] = ["a", "e", "i", "o", "u", "ai"];

/// Generates a pseudo-word of `syllables` syllables.
pub fn pseudo_word(rng: &mut impl Rng, syllables: usize) -> String {
    let mut word = String::with_capacity(syllables * 3);
    for _ in 0..syllables.max(1) {
        word.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        word.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    word
}

/// A seeded vocabulary of distinct pseudo-words interned as tags.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    ids: Vec<TagId>,
    kind: TagKind,
}

impl Vocabulary {
    /// Generates `size` distinct words of 2–4 syllables, interning each
    /// under `kind`.
    pub fn generate(interner: &TagInterner, kind: TagKind, size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::with_capacity(size);
        let mut words = Vec::with_capacity(size);
        let mut ids = Vec::with_capacity(size);
        while words.len() < size {
            let syllables = rng.gen_range(2..=4);
            let word = pseudo_word(&mut rng, syllables);
            if !seen.insert(word.clone()) {
                continue;
            }
            let id = interner.intern(&word, kind);
            words.push(word);
            ids.push(id);
        }
        Vocabulary { words, ids, kind }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The tag kind of every word.
    pub fn kind(&self) -> TagKind {
        self.kind
    }

    /// The word at `rank` (0 = first generated).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// The interned id at `rank`.
    pub fn id(&self, rank: usize) -> TagId {
        self.ids[rank]
    }

    /// All interned ids in rank order.
    pub fn ids(&self) -> &[TagId] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_and_interned() {
        let interner = TagInterner::new();
        let vocab = Vocabulary::generate(&interner, TagKind::Hashtag, 200, 1);
        assert_eq!(vocab.len(), 200);
        let distinct: std::collections::HashSet<&str> = (0..200).map(|i| vocab.word(i)).collect();
        assert_eq!(distinct.len(), 200);
        for i in 0..200 {
            assert_eq!(interner.get(vocab.word(i), TagKind::Hashtag), Some(vocab.id(i)));
        }
        assert_eq!(vocab.kind(), TagKind::Hashtag);
    }

    #[test]
    fn generation_is_deterministic() {
        let i1 = TagInterner::new();
        let v1 = Vocabulary::generate(&i1, TagKind::Term, 50, 99);
        let i2 = TagInterner::new();
        let v2 = Vocabulary::generate(&i2, TagKind::Term, 50, 99);
        for i in 0..50 {
            assert_eq!(v1.word(i), v2.word(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let interner = TagInterner::new();
        let v1 = Vocabulary::generate(&interner, TagKind::Term, 20, 1);
        let v2 = Vocabulary::generate(&interner, TagKind::Term, 20, 2);
        let same = (0..20).filter(|&i| v1.word(i) == v2.word(i)).count();
        assert!(same < 20, "seeds must change the vocabulary");
    }

    #[test]
    fn pseudo_words_are_pronounceable_ascii() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let w = pseudo_word(&mut rng, 3);
            assert!(w.is_ascii());
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            assert!(w.len() >= 6, "3 syllables are at least 6 chars: {w}");
        }
    }

    #[test]
    fn zero_syllables_clamped_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = pseudo_word(&mut rng, 0);
        assert!(!w.is_empty());
    }
}
