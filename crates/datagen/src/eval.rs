//! Detection-quality metrics against planted ground truth.
//!
//! The demo paper could only let visitors "judge whether the rankings would
//! be satisfactory"; with scripted events we can measure: did each planted
//! pair reach the top-k (recall)? how long after its onset (latency)? and
//! how much of the top-k during event windows was truth (precision@k)?

use crate::events::EventScript;
use enblogue_types::{RankingSnapshot, TagPair};
use serde::{Deserialize, Serialize};

/// Per-event detection outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// Event label from the script.
    pub event_name: String,
    /// The ground-truth pair.
    pub pair: TagPair,
    /// Whether the pair entered the top-k during the event window
    /// (+ grace period).
    pub detected: bool,
    /// Stream-time delay between event start and first top-k appearance.
    pub latency_ms: Option<u64>,
    /// Best (lowest) rank reached during the window.
    pub best_rank: Option<usize>,
}

/// Aggregate quality report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Outcomes per event.
    pub outcomes: Vec<DetectionOutcome>,
    /// Fraction of events detected.
    pub recall: f64,
    /// Mean precision@k over snapshots that fall inside ≥ 1 event window.
    pub precision_at_k: f64,
    /// Mean detection latency over detected events, in milliseconds.
    pub mean_latency_ms: f64,
    /// The k used.
    pub k: usize,
}

impl EvalReport {
    /// Mean latency expressed in ticks of `tick_ms`.
    pub fn mean_latency_ticks(&self, tick_ms: u64) -> f64 {
        self.mean_latency_ms / tick_ms as f64
    }
}

/// Evaluates ranking snapshots against a script.
///
/// * `k` — ranking depth that counts as "reported to the user".
/// * `grace_ms` — how long after an event's end a first detection still
///   counts (windowed correlation lags the raw event by design).
///
/// Precision@k counts a top-k entry as correct if it is a truth pair whose
/// event window (+ grace) contains the snapshot time. Snapshots outside
/// all event windows do not contribute to precision (background-only
/// rankings have no truth to match; false-alarm behaviour is what P7's
/// baseline comparison quantifies via recall on no-event streams).
pub fn evaluate(
    snapshots: &[RankingSnapshot],
    script: &EventScript,
    k: usize,
    grace_ms: u64,
) -> EvalReport {
    assert!(k > 0, "k must be positive");
    let mut outcomes = Vec::with_capacity(script.len());
    for event in script.events() {
        let pair = event.pair();
        let deadline = event.end.plus(grace_ms);
        let mut detected = false;
        let mut latency_ms = None;
        let mut best_rank: Option<usize> = None;
        for snap in snapshots {
            if snap.time < event.start || snap.time > deadline {
                continue;
            }
            if let Some(rank) = snap.rank_of(pair) {
                if rank < k {
                    if !detected {
                        detected = true;
                        latency_ms = Some(snap.time.since(event.start));
                    }
                    best_rank = Some(best_rank.map_or(rank, |b: usize| b.min(rank)));
                }
            }
        }
        outcomes.push(DetectionOutcome {
            event_name: event.name.clone(),
            pair,
            detected,
            latency_ms,
            best_rank,
        });
    }

    let recall = if outcomes.is_empty() {
        1.0
    } else {
        outcomes.iter().filter(|o| o.detected).count() as f64 / outcomes.len() as f64
    };

    // Precision over event-active snapshots.
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    for snap in snapshots {
        let active: Vec<TagPair> = script
            .events()
            .iter()
            .filter(|e| e.start <= snap.time && snap.time <= e.end.plus(grace_ms))
            .map(|e| e.pair())
            .collect();
        if active.is_empty() {
            continue;
        }
        let top: Vec<TagPair> = snap.ranked.iter().take(k).map(|&(p, _)| p).collect();
        if top.is_empty() {
            continue;
        }
        let hits = top.iter().filter(|p| active.contains(p)).count();
        // Cap the denominator: with one active truth pair and k=10, 1/1 is
        // the honest best achievable, not 1/10.
        let denom = top.len().min(active.len()).max(1);
        precision_sum += (hits.min(denom)) as f64 / denom as f64;
        precision_n += 1;
    }
    let precision_at_k = if precision_n == 0 { 0.0 } else { precision_sum / precision_n as f64 };

    let latencies: Vec<u64> = outcomes.iter().filter_map(|o| o.latency_ms).collect();
    let mean_latency_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };

    EvalReport { outcomes, recall, precision_at_k, mean_latency_ms, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CorrelationEvent, RampShape};
    use enblogue_types::{TagId, Tick, Timestamp};

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    fn snapshot(tick: u64, hour: u64, ranked: &[(TagPair, f64)]) -> RankingSnapshot {
        RankingSnapshot {
            tick: Tick(tick),
            time: Timestamp::from_hours(hour),
            ranked: ranked.to_vec(),
        }
    }

    fn one_event_script() -> EventScript {
        let mut script = EventScript::new();
        script.push(CorrelationEvent::new(
            "e0",
            TagId(1),
            TagId(2),
            Timestamp::from_hours(10),
            Timestamp::from_hours(20),
            5.0,
            RampShape::Step,
        ));
        script
    }

    #[test]
    fn detection_and_latency() {
        let script = one_event_script();
        let snaps = vec![
            snapshot(9, 9, &[(pair(7, 8), 0.9)]),
            snapshot(12, 12, &[(pair(7, 8), 0.9), (pair(1, 2), 0.5)]),
            snapshot(13, 13, &[(pair(1, 2), 0.9)]),
        ];
        let report = evaluate(&snaps, &script, 5, 0);
        assert_eq!(report.recall, 1.0);
        let o = &report.outcomes[0];
        assert!(o.detected);
        assert_eq!(o.latency_ms, Some(2 * Timestamp::HOUR));
        assert_eq!(o.best_rank, Some(0));
        assert_eq!(report.mean_latency_ticks(Timestamp::HOUR) as u64, 2);
    }

    #[test]
    fn miss_yields_zero_recall() {
        let script = one_event_script();
        let snaps = vec![snapshot(12, 12, &[(pair(7, 8), 0.9)])];
        let report = evaluate(&snaps, &script, 5, 0);
        assert_eq!(report.recall, 0.0);
        assert!(!report.outcomes[0].detected);
        assert_eq!(report.outcomes[0].latency_ms, None);
    }

    #[test]
    fn detection_outside_window_does_not_count() {
        let script = one_event_script();
        // Appears only *before* the event and *after* end + grace.
        let snaps =
            vec![snapshot(5, 5, &[(pair(1, 2), 0.9)]), snapshot(30, 30, &[(pair(1, 2), 0.9)])];
        let report = evaluate(&snaps, &script, 5, Timestamp::HOUR);
        assert_eq!(report.recall, 0.0);
    }

    #[test]
    fn grace_period_extends_the_deadline() {
        let script = one_event_script();
        let snaps = vec![snapshot(21, 21, &[(pair(1, 2), 0.9)])];
        let no_grace = evaluate(&snaps, &script, 5, 0);
        assert_eq!(no_grace.recall, 0.0);
        let with_grace = evaluate(&snaps, &script, 5, 2 * Timestamp::HOUR);
        assert_eq!(with_grace.recall, 1.0);
    }

    #[test]
    fn rank_beyond_k_is_not_a_detection() {
        let script = one_event_script();
        let ranked: Vec<(TagPair, f64)> = (0..5)
            .map(|i| (pair(10 + i, 20 + i), 1.0 - 0.1 * i as f64))
            .chain([(pair(1, 2), 0.1)])
            .collect();
        let snaps = vec![snapshot(12, 12, &ranked)];
        assert_eq!(evaluate(&snaps, &script, 5, 0).recall, 0.0, "rank 5 with k=5 misses");
        assert_eq!(evaluate(&snaps, &script, 6, 0).recall, 1.0);
    }

    #[test]
    fn precision_caps_at_active_truth_count() {
        let script = one_event_script();
        // k=3 but only one active truth pair: top-1 hit ⇒ precision 1.
        let snaps =
            vec![snapshot(12, 12, &[(pair(1, 2), 0.9), (pair(7, 8), 0.8), (pair(9, 10), 0.7)])];
        let report = evaluate(&snaps, &script, 3, 0);
        assert_eq!(report.precision_at_k, 1.0);
        // Truth absent ⇒ precision 0.
        let snaps = vec![snapshot(12, 12, &[(pair(7, 8), 0.9)])];
        assert_eq!(evaluate(&snaps, &script, 3, 0).precision_at_k, 0.0);
    }

    #[test]
    fn snapshots_outside_events_do_not_affect_precision() {
        let script = one_event_script();
        let snaps = vec![
            snapshot(1, 1, &[(pair(7, 8), 0.9)]), // outside any window
            snapshot(12, 12, &[(pair(1, 2), 0.9)]),
        ];
        let report = evaluate(&snaps, &script, 3, 0);
        assert_eq!(report.precision_at_k, 1.0);
    }

    #[test]
    fn empty_script_is_vacuous() {
        let report = evaluate(&[snapshot(1, 1, &[(pair(1, 2), 0.5)])], &EventScript::new(), 3, 0);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision_at_k, 0.0);
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn snapshot_helpers() {
        let snap = snapshot(1, 1, &[(pair(1, 2), 0.9), (pair(3, 4), 0.5)]);
        assert_eq!(snap.rank_of(pair(3, 4)), Some(1));
        assert_eq!(snap.rank_of(pair(5, 6)), None);
        assert!(snap.contains_in_top(pair(1, 2), 1));
        assert!(!snap.contains_in_top(pair(3, 4), 1));
    }
}
