//! Deterministic synthetic workload generators for EnBlogue.
//!
//! The paper demonstrates on three workloads we cannot ship: the licensed
//! New York Times Annotated Corpus (1987–2007, 1.8 M documents), live
//! Twitter, and live RSS feeds. This crate builds deterministic synthetic
//! equivalents that exercise the same code paths **and** carry planted
//! ground truth, so detection quality becomes measurable
//! (precision/recall/latency) instead of anecdotal:
//!
//! * [`zipf`] — the skewed popularity law governing tag background chatter,
//! * [`vocab`] — pseudo-word vocabularies for tags and content terms,
//! * [`events`] — scripted correlation events (the planted emergent
//!   topics) with ramp shapes and ground-truth windows,
//! * [`entities`] — a synthetic entity universe: gazetteer titles,
//!   redirect aliases and a small YAGO-style ontology,
//! * [`hostile`] — adversarial arrival streams (late-arrival storms,
//!   duplicate floods, coordinated spam bursts) drilling the event-time
//!   robustness layer,
//! * [`nyt`] — the archive generator behind Show Case 1,
//! * [`twitter`] — the tweet-stream generator behind Show Case 2
//!   (including the paper's "SIGMOD Athens" stunt),
//! * [`rss`] — themed feed generators merged into multi-source streams,
//! * [`eval`] — precision@k / recall / detection-latency metrics against
//!   planted ground truth.
//!
//! Every generator takes an explicit `u64` seed and is reproducible
//! bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entities;
pub mod eval;
pub mod events;
pub mod hostile;
pub mod nyt;
pub mod rss;
pub mod twitter;
pub mod vocab;
pub mod zipf;

pub use entities::EntityUniverse;
pub use eval::{evaluate, DetectionOutcome, EvalReport};
pub use events::{CorrelationEvent, EventScript, RampShape};
pub use hostile::{HostileConfig, HostileWorkload};
pub use nyt::{NytArchive, NytConfig};
pub use rss::{RssConfig, RssFeed};
pub use twitter::{TweetConfig, TweetStream};
pub use vocab::Vocabulary;
pub use zipf::Zipf;
