//! Synthetic entity universe: the Wikipedia + YAGO substitute.
//!
//! Generates people, organisations and places with multi-word names
//! (≤ 4 terms), redirect aliases (short forms), and a small type DAG, then
//! packages them as a [`Gazetteer`] and [`Ontology`] for the entity tagger.

use crate::vocab::pseudo_word;
use enblogue_entity::gazetteer::{EntityId, Gazetteer, GazetteerBuilder};
use enblogue_entity::ontology::{Ontology, OntologyBuilder, TypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which top-level class an entity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityClass {
    /// People: "first last" names, redirect = last name.
    Person,
    /// Organisations: 2–4-word names, redirect = acronym-ish short form.
    Organization,
    /// Places: 1–2-word names, optional "city of X" redirect.
    Place,
}

impl EntityClass {
    /// Every class, in the canonical generator order.
    pub const ALL: [EntityClass; 3] =
        [EntityClass::Person, EntityClass::Organization, EntityClass::Place];

    /// The ontology leaf type name for the class.
    pub const fn type_name(self) -> &'static str {
        match self {
            EntityClass::Person => "person",
            EntityClass::Organization => "organization",
            EntityClass::Place => "place",
        }
    }
}

/// One generated entity.
#[derive(Debug, Clone)]
pub struct GeneratedEntity {
    /// Dictionary id.
    pub id: EntityId,
    /// Canonical (normalised) name.
    pub name: String,
    /// Alias phrases that redirect to the canonical name.
    pub aliases: Vec<String>,
    /// Top-level class.
    pub class: EntityClass,
}

/// A complete synthetic entity world.
pub struct EntityUniverse {
    /// The dictionary (titles + redirects).
    pub gazetteer: Arc<Gazetteer>,
    /// The type DAG with entity typing.
    pub ontology: Arc<Ontology>,
    /// All generated entities.
    pub entities: Vec<GeneratedEntity>,
    /// Leaf type ids by class, in [`EntityClass::ALL`] order.
    pub class_types: [TypeId; 3],
    /// The root type ("entity").
    pub root_type: TypeId,
}

impl EntityUniverse {
    /// Generates `n` entities (split across classes) with the given seed.
    ///
    /// Roughly 40% people, 30% organisations, 30% places; about half the
    /// entities get a redirect alias, mirroring how Wikipedia's redirect
    /// graph maps short names onto canonical titles.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gb = GazetteerBuilder::default();
        let mut ob = OntologyBuilder::default();

        let root = ob.add_type("entity");
        let agent = ob.add_subtype("agent", &[root]);
        let person = ob.add_subtype("person", &[agent]);
        let politician = ob.add_subtype("politician", &[person]);
        let athlete = ob.add_subtype("athlete", &[person]);
        let organization = ob.add_subtype("organization", &[agent]);
        let place = ob.add_subtype("place", &[root]);
        let city = ob.add_subtype("city", &[place]);

        let mut entities = Vec::with_capacity(n);
        let mut used_names = std::collections::HashSet::new();
        while entities.len() < n {
            let class = match rng.gen_range(0..10) {
                0..=3 => EntityClass::Person,
                4..=6 => EntityClass::Organization,
                _ => EntityClass::Place,
            };
            let (name, aliases) = match class {
                EntityClass::Person => {
                    let first_len = rng.gen_range(2..=3);
                    let first = pseudo_word(&mut rng, first_len);
                    let last_len = rng.gen_range(2..=4);
                    let last = pseudo_word(&mut rng, last_len);
                    let name = format!("{first} {last}");
                    // Half of the people are referred to by surname too.
                    let aliases = if rng.gen_bool(0.5) { vec![last] } else { vec![] };
                    (name, aliases)
                }
                EntityClass::Organization => {
                    let words = rng.gen_range(2..=4);
                    let parts: Vec<String> = (0..words)
                        .map(|_| {
                            let len = rng.gen_range(2..=3);
                            pseudo_word(&mut rng, len)
                        })
                        .collect();
                    let name = parts.join(" ");
                    let alias = if rng.gen_bool(0.5) {
                        // Short form: first word.
                        vec![parts[0].clone()]
                    } else {
                        vec![]
                    };
                    (name, alias)
                }
                EntityClass::Place => {
                    let words = rng.gen_range(1..=2);
                    let parts: Vec<String> = (0..words)
                        .map(|_| {
                            let len = rng.gen_range(2..=4);
                            pseudo_word(&mut rng, len)
                        })
                        .collect();
                    let name = parts.join(" ");
                    let alias = if rng.gen_bool(0.3) {
                        vec![format!("city of {}", parts[0])]
                    } else {
                        vec![]
                    };
                    (name, alias)
                }
            };
            if !used_names.insert(name.clone()) {
                continue;
            }
            let id = gb.add_title(&name);
            let mut kept_aliases = Vec::new();
            for alias in aliases {
                // Aliases may collide with existing titles; the builder
                // keeps titles, so check before counting it as an alias.
                if used_names.insert(alias.clone()) {
                    gb.add_redirect(&alias, &name);
                    kept_aliases.push(alias);
                }
            }
            let leaf = match class {
                EntityClass::Person => {
                    if rng.gen_bool(0.3) {
                        politician
                    } else if rng.gen_bool(0.3) {
                        athlete
                    } else {
                        person
                    }
                }
                EntityClass::Organization => organization,
                EntityClass::Place => {
                    if rng.gen_bool(0.5) {
                        city
                    } else {
                        place
                    }
                }
            };
            ob.assign(id, leaf);
            entities.push(GeneratedEntity { id, name, aliases: kept_aliases, class });
        }

        EntityUniverse {
            gazetteer: Arc::new(gb.build()),
            ontology: Arc::new(ob.build()),
            entities,
            class_types: [person, organization, place],
            root_type: root,
        }
    }

    /// Entities of a given class.
    pub fn of_class(&self, class: EntityClass) -> impl Iterator<Item = &GeneratedEntity> {
        self.entities.iter().filter(move |e| e.class == class)
    }

    /// The leaf type id for `class`.
    pub fn type_of_class(&self, class: EntityClass) -> TypeId {
        let idx = EntityClass::ALL.iter().position(|&c| c == class).expect("class in ALL");
        self.class_types[idx]
    }

    /// Picks a random entity.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a GeneratedEntity {
        &self.entities[rng.gen_range(0..self.entities.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_entity::tagger::EntityTagger;

    #[test]
    fn generates_requested_count() {
        let u = EntityUniverse::generate(100, 11);
        assert_eq!(u.entities.len(), 100);
        assert_eq!(u.gazetteer.entity_count(), 100);
        assert!(u.gazetteer.phrase_count() >= 100, "aliases add phrases");
    }

    #[test]
    fn all_classes_present_and_typed() {
        let u = EntityUniverse::generate(200, 5);
        for class in EntityClass::ALL {
            let type_id = u.type_of_class(class);
            let members: Vec<_> = u.of_class(class).collect();
            assert!(!members.is_empty(), "{class:?} missing");
            for e in &members {
                assert!(
                    u.ontology.entity_has_type(e.id, type_id),
                    "{} not typed as {}",
                    e.name,
                    class.type_name()
                );
                assert!(u.ontology.entity_has_type(e.id, u.root_type), "everything is an entity");
            }
        }
    }

    #[test]
    fn aliases_resolve_in_tagger() {
        let u = EntityUniverse::generate(300, 7);
        let tagger = EntityTagger::new(Arc::clone(&u.gazetteer));
        let with_alias =
            u.entities.iter().find(|e| !e.aliases.is_empty()).expect("some alias exists");
        let text = format!("report about {} yesterday", with_alias.aliases[0]);
        let mentions = tagger.tag_text(&text);
        assert!(
            mentions.iter().any(|m| m.entity == with_alias.id),
            "alias must tag the canonical entity"
        );
    }

    #[test]
    fn canonical_names_are_taggable() {
        let u = EntityUniverse::generate(50, 13);
        let tagger = EntityTagger::new(Arc::clone(&u.gazetteer));
        for e in &u.entities {
            let text = format!("zzz {} zzz", e.name);
            let mentions = tagger.tag_text(&text);
            assert!(mentions.iter().any(|m| m.entity == e.id), "cannot find `{}`", e.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EntityUniverse::generate(40, 21);
        let b = EntityUniverse::generate(40, 21);
        for (x, y) in a.entities.iter().zip(&b.entities) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.aliases, y.aliases);
        }
    }

    #[test]
    fn type_filter_narrows_to_class() {
        let u = EntityUniverse::generate(200, 3);
        let person_type = u.type_of_class(EntityClass::Person);
        let tagger = EntityTagger::new(Arc::clone(&u.gazetteer))
            .with_ontology(Arc::clone(&u.ontology))
            .with_type_filter(vec![person_type]);
        let place = u.of_class(EntityClass::Place).next().unwrap();
        let person = u.of_class(EntityClass::Person).next().unwrap();
        let text = format!("{} met near {}", person.name, place.name);
        let ids = tagger.distinct_entities(&text);
        assert!(ids.contains(&person.id));
        assert!(!ids.contains(&place.id), "place must be filtered out");
    }
}
