//! NYT-style archive generator: Show Case 1's workload.
//!
//! The paper replays "the New York Times archive, consisting of news
//! articles from 1987 and 2007, a total of 1.8 million full-text documents.
//! Each article is manually assigned … to one or more categories and
//! annotated with additional descriptors. We use these categories and
//! descriptors as tags." The corpus is licensed, so this module generates a
//! deterministic synthetic archive with the same shape: a category
//! taxonomy, a long descriptor tail, full text with taggable entities, and
//! **scripted historic events** (elections, hurricanes, sport finals) that
//! raise category–descriptor co-occurrence — with ground truth attached.

use crate::entities::EntityUniverse;
use crate::events::{CorrelationEvent, EventScript, RampShape};
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use enblogue_types::{Document, TagId, TagInterner, TagKind, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic archive.
#[derive(Debug, Clone)]
pub struct NytConfig {
    /// Master seed; every derived generator is seeded from it.
    pub seed: u64,
    /// Number of days covered by the archive.
    pub days: u64,
    /// Background documents per day.
    pub docs_per_day: u64,
    /// Category vocabulary size (the NYT taxonomy is small).
    pub n_categories: usize,
    /// Descriptor vocabulary size (long tail).
    pub n_descriptors: usize,
    /// Size of the entity universe embedded in document text.
    pub n_entities: usize,
    /// Content-term vocabulary size.
    pub n_terms: usize,
    /// Number of scripted historic events (0 = background only).
    pub historic_events: usize,
}

impl Default for NytConfig {
    /// A laptop-scale default: ~36 k documents over 120 days with 8
    /// scripted events. (The real corpus: 1.8 M documents over 21 years;
    /// scale `days`/`docs_per_day` up for stress runs.)
    fn default() -> Self {
        NytConfig {
            seed: 0x0e_b1_06,
            days: 120,
            docs_per_day: 300,
            n_categories: 40,
            n_descriptors: 400,
            n_entities: 400,
            n_terms: 2_000,
            historic_events: 8,
        }
    }
}

/// The generated archive.
pub struct NytArchive {
    /// All documents, sorted by timestamp.
    pub docs: Vec<Document>,
    /// The planted events (ground truth).
    pub script: EventScript,
    /// The shared interner (categories, descriptors, terms, entities).
    pub interner: TagInterner,
    /// Category vocabulary (rank 0 = most popular).
    pub categories: Vocabulary,
    /// Descriptor vocabulary.
    pub descriptors: Vocabulary,
    /// The embedded entity universe (for entity-tagging experiments).
    pub universe: EntityUniverse,
}

impl NytArchive {
    /// Generates the archive for `config`.
    pub fn generate(config: &NytConfig) -> Self {
        assert!(config.days > 0, "archive must span at least one day");
        assert!(config.n_categories >= 4 && config.n_descriptors >= 8, "taxonomy too small");
        let interner = TagInterner::new();
        let categories = Vocabulary::generate(
            &interner,
            TagKind::Category,
            config.n_categories,
            config.seed ^ 0xCA7,
        );
        let descriptors = Vocabulary::generate(
            &interner,
            TagKind::Descriptor,
            config.n_descriptors,
            config.seed ^ 0xDE5C,
        );
        let terms =
            Vocabulary::generate(&interner, TagKind::Term, config.n_terms, config.seed ^ 0x7E51);
        let universe = EntityUniverse::generate(config.n_entities, config.seed ^ 0xE171);

        let cat_zipf = Zipf::new(config.n_categories, 1.1);
        let desc_zipf = Zipf::new(config.n_descriptors, 1.05);
        let term_zipf = Zipf::new(config.n_terms, 1.0);

        let script = plan_events(config, &categories, &descriptors, &cat_zipf, &desc_zipf);
        let slice_zipf = Zipf::new(CATEGORY_SLICE, 0.8);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut docs = Vec::with_capacity((config.days * config.docs_per_day) as usize);
        let mut next_id: u64 = 1;
        // Background documents, day by day; remember each day's index range
        // for the event-conversion pass.
        let mut day_ranges: Vec<(usize, usize)> = Vec::with_capacity(config.days as usize);
        for day in 0..config.days {
            let day_start = Timestamp::from_days(day);
            let range_start = docs.len();
            for _ in 0..config.docs_per_day {
                let ts = day_start.plus(rng.gen_range(0..Timestamp::DAY));
                docs.push(background_doc(
                    next_id,
                    ts,
                    &mut rng,
                    &categories,
                    &descriptors,
                    &terms,
                    &universe,
                    &cat_zipf,
                    &desc_zipf,
                    &term_zipf,
                    &slice_zipf,
                ));
                next_id += 1;
            }
            day_ranges.push((range_start, docs.len()));
        }

        // Event pass — **volume preserving**: instead of adding documents
        // (which would make the individual tags burst and hand the event
        // to single-tag burst detectors), the event *converts* existing
        // documents that carry the descriptor by adding the category tag.
        // The descriptor's volume is untouched, the popular category's
        // volume moves by a few documents a day — only the intersection
        // jumps. This is exactly the Figure-1 constellation.
        //
        // Converted documents also start *speaking the category's
        // language*: a share of their content terms is redrawn from the
        // category's topical slice, so the term-distribution (relative
        // entropy) correlation variant has the same signal the set-overlap
        // measures get from the tags. (`text` is not rebuilt — it feeds the
        // entity tagger, which is term-agnostic.)
        let mut event_rng = StdRng::seed_from_u64(config.seed ^ 0xC04E);
        let mut carry = vec![0.0f64; script.len()];
        for (day, &(lo, hi)) in day_ranges.iter().enumerate() {
            let day_start = Timestamp::from_days(day as u64);
            let mid = day_start.plus(Timestamp::DAY / 2);
            for (i, event) in script.events().iter().enumerate() {
                let rate = event.rate_at(mid) + carry[i];
                let mut remaining = rate.floor() as u64;
                carry[i] = rate - remaining as f64;
                if remaining == 0 {
                    continue;
                }
                let cat_rank = (event.tag_a.0 - categories.id(0).0) as usize;
                for doc in &mut docs[lo..hi] {
                    if remaining == 0 {
                        break;
                    }
                    if doc.has_tag(event.tag_b) && !doc.has_tag(event.tag_a) {
                        doc.tags.push(event.tag_a);
                        doc.normalize();
                        for term in doc.terms.iter_mut() {
                            if event_rng.gen_bool(0.6) {
                                *term = terms.id(slice_rank(
                                    cat_rank,
                                    slice_zipf.sample(&mut event_rng),
                                    terms.len(),
                                ));
                            }
                        }
                        remaining -= 1;
                    }
                }
                // If the day ran out of descriptor documents the shortfall
                // is simply lost — never add volume.
            }
        }
        docs.sort_by_key(|d| (d.timestamp, d.id));
        NytArchive { docs, script, interner, categories, descriptors, universe }
    }

    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Plans the historic-event script: each event couples a popular category
/// (the seed side) with a *moderately rare* descriptor — one with enough
/// background volume that the conversion pass can move a meaningful share
/// of its documents into the intersection without changing its volume.
fn plan_events(
    config: &NytConfig,
    categories: &Vocabulary,
    descriptors: &Vocabulary,
    cat_zipf: &Zipf,
    desc_zipf: &Zipf,
) -> EventScript {
    let mut script = EventScript::new();
    if config.historic_events == 0 {
        return script;
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xE7E57);
    let themes =
        ["election", "hurricane", "finals", "scandal", "eruption", "verdict", "summit", "strike"];
    let shapes = [RampShape::Sigmoid, RampShape::Spike, RampShape::Linear, RampShape::Step];

    // Candidate descriptors: expected daily document volume in a band that
    // is big enough to convert from and small enough that random
    // co-occurrence with a popular category stays low. Background docs
    // carry 2–4 descriptors (mean 3).
    let descs_per_doc = 3.0;
    let expected_daily =
        |rank: usize| config.docs_per_day as f64 * descs_per_doc * desc_zipf.pmf(rank);
    // Band scales with stream volume: descriptors carrying ~5–12% of the
    // daily documents. Rarer descriptors give the conversion pass too few
    // documents for the intersection to move the windowed correlation off
    // its background level; more common ones already co-occur with every
    // category by chance.
    let band_lo = (0.05 * config.docs_per_day as f64).max(4.0);
    let band_hi = (0.12 * config.docs_per_day as f64).max(band_lo + 2.0);
    let band: Vec<usize> = (0..descriptors.len())
        .filter(|&r| {
            let e = expected_daily(r);
            (band_lo..=band_hi).contains(&e)
        })
        .collect();
    assert!(
        !band.is_empty(),
        "no descriptor has workable daily volume; grow docs_per_day or n_descriptors"
    );

    // Leave warm-up (first ~20%) and cool-down room.
    let lo_day = (config.days / 5).max(1);
    let hi_day = config.days.saturating_sub(10).max(lo_day + 1);
    let mut used_descs: Vec<usize> = Vec::new();
    let cats_per_doc = 1.5;
    for i in 0..config.historic_events {
        // Upper-mid categories: comfortably inside any reasonable seed set,
        // but with a low enough document share that random co-occurrence
        // with the descriptor stays well under the converted volume.
        let cat_lo = 2.min(categories.len() - 1);
        let cat_hi = 6.min(categories.len());
        let cat_rank = rng.gen_range(cat_lo..cat_hi.max(cat_lo + 1));
        let cat_daily = config.docs_per_day as f64 * cats_per_doc * cat_zipf.pmf(cat_rank);
        // Distinct descriptor per event when possible.
        let desc_rank = loop {
            let candidate = band[rng.gen_range(0..band.len())];
            if !used_descs.contains(&candidate) || used_descs.len() >= band.len() {
                break candidate;
            }
        };
        used_descs.push(desc_rank);
        let start_day = rng.gen_range(lo_day..hi_day);
        let duration_days = rng.gen_range(5..=12);
        // Convert most of the descriptor's daily documents at peak, but
        // never more than a fraction of the category's own volume — the
        // category side must stay visually flat (Figure 1's t1).
        let peak =
            (expected_daily(desc_rank) * rng.gen_range(0.8..0.95)).min(0.7 * cat_daily).max(2.0);
        let shape = shapes[i % shapes.len()];
        let theme = themes[i % themes.len()];
        script.push(CorrelationEvent::new(
            format!("{theme}-{i}"),
            categories.id(cat_rank),
            descriptors.id(desc_rank),
            Timestamp::from_days(start_day),
            Timestamp::from_days(start_day + duration_days),
            peak,
            shape,
        ));
    }
    script
}

/// Size of each category's topical term slice.
///
/// Real corpora are topically coherent: articles of one category reuse that
/// category's vocabulary. Giving each category a (possibly overlapping)
/// slice of the term space makes per-tag term distributions *distinctive*,
/// which is the precondition for the relative-entropy correlation variant
/// to carry any signal.
const CATEGORY_SLICE: usize = 60;

/// Rank (within the term vocabulary) of the `i`-th term of category
/// `cat_rank`'s slice.
fn slice_rank(cat_rank: usize, i: usize, n_terms: usize) -> usize {
    let start = (cat_rank * 53) % n_terms.saturating_sub(CATEGORY_SLICE).max(1);
    start + i
}

#[allow(clippy::too_many_arguments)]
fn background_doc(
    id: u64,
    ts: Timestamp,
    rng: &mut StdRng,
    categories: &Vocabulary,
    descriptors: &Vocabulary,
    terms: &Vocabulary,
    universe: &EntityUniverse,
    cat_zipf: &Zipf,
    desc_zipf: &Zipf,
    term_zipf: &Zipf,
    slice_zipf: &Zipf,
) -> Document {
    let n_cats = rng.gen_range(1..=2);
    let n_descs = rng.gen_range(2..=4);
    let n_terms = rng.gen_range(20..=60);
    let n_mentions = rng.gen_range(1..=3);

    let mut cat_ranks: Vec<usize> = Vec::with_capacity(n_cats);
    for _ in 0..n_cats {
        cat_ranks.push(cat_zipf.sample(rng));
    }
    let mut tags: Vec<TagId> = Vec::with_capacity(n_cats + n_descs);
    for &r in &cat_ranks {
        tags.push(categories.id(r));
    }
    for _ in 0..n_descs {
        tags.push(descriptors.id(desc_zipf.sample(rng)));
    }

    // Topically coherent terms: ~45% from the primary category's slice,
    // the rest global chatter.
    let primary_cat = cat_ranks[0];
    let term_ids: Vec<TagId> = (0..n_terms)
        .map(|_| {
            if rng.gen_bool(0.45) {
                terms.id(slice_rank(primary_cat, slice_zipf.sample(rng), terms.len()))
            } else {
                terms.id(term_zipf.sample(rng))
            }
        })
        .collect();

    // Full text: filler terms with entity names embedded — the input the
    // entity tagger scans with its ≤4-term window.
    let mut text = String::with_capacity(n_terms * 8);
    let mention_positions: Vec<usize> =
        (0..n_mentions).map(|_| rng.gen_range(0..n_terms)).collect();
    for (i, term) in term_ids.iter().enumerate() {
        if i > 0 {
            text.push(' ');
        }
        if mention_positions.contains(&i) {
            text.push_str(&universe.sample(rng).name);
            text.push(' ');
        }
        // Interner ids always resolve; the vocabulary interned them.
        text.push_str(terms.word(term_rank(terms, *term)));
    }

    Document::builder(id, ts).tags(tags).terms(term_ids).text(text).build()
}

/// Rank of `id` within `vocab` (ids are dense in interning order).
fn term_rank(vocab: &Vocabulary, id: TagId) -> usize {
    // Vocabulary ids are contiguous from the first interned id.
    let first = vocab.id(0).0;
    (id.0 - first) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NytConfig {
        NytConfig {
            seed: 7,
            days: 30,
            docs_per_day: 50,
            n_categories: 10,
            n_descriptors: 80,
            n_entities: 50,
            n_terms: 200,
            historic_events: 3,
        }
    }

    #[test]
    fn generates_sorted_timestamped_docs() {
        let archive = NytArchive::generate(&small_config());
        assert!(archive.len() >= 30 * 50, "background volume");
        for w in archive.docs.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp, "sorted by time");
        }
        let last = archive.docs.last().unwrap();
        assert!(last.timestamp < Timestamp::from_days(30));
    }

    #[test]
    fn docs_carry_tags_terms_and_text() {
        let archive = NytArchive::generate(&small_config());
        for doc in archive.docs.iter().take(100) {
            assert!(!doc.tags.is_empty(), "every article is categorised");
            assert!(doc.terms.len() >= 20);
            assert!(doc.text.as_ref().is_some_and(|t| !t.is_empty()));
        }
    }

    #[test]
    fn events_inject_co_tagged_docs_in_window() {
        let archive = NytArchive::generate(&small_config());
        assert_eq!(archive.script.len(), 3);
        for event in archive.script.events() {
            let in_window = archive
                .docs
                .iter()
                .filter(|d| event.active_at(d.timestamp))
                .filter(|d| d.has_tag(event.tag_a) && d.has_tag(event.tag_b))
                .count();
            let outside = archive
                .docs
                .iter()
                .filter(|d| !event.active_at(d.timestamp))
                .filter(|d| d.has_tag(event.tag_a) && d.has_tag(event.tag_b))
                .count();
            assert!(in_window > 0, "event {} emitted no co-tagged docs", event.name);
            // Compare per-day co-occurrence rates: inside the window the
            // pair must co-occur clearly more often than the random
            // background co-occurrence outside it.
            let window_days = (event.end.since(event.start) / Timestamp::DAY).max(1) as f64;
            let outside_days = (30.0 - window_days).max(1.0);
            let in_rate = in_window as f64 / window_days;
            let out_rate = outside as f64 / outside_days;
            assert!(
                in_rate > 2.0 * out_rate.max(0.1),
                "event {}: in-rate {in_rate:.2}/day vs out-rate {out_rate:.2}/day",
                event.name,
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NytArchive::generate(&small_config());
        let b = NytArchive::generate(&small_config());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.docs.iter().zip(&b.docs).take(500) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.timestamp, y.timestamp);
            assert_eq!(x.tags, y.tags);
        }
    }

    #[test]
    fn seeds_change_the_archive() {
        let a = NytArchive::generate(&small_config());
        let mut cfg = small_config();
        cfg.seed = 43;
        let b = NytArchive::generate(&cfg);
        let differing =
            a.docs.iter().zip(&b.docs).take(100).filter(|(x, y)| x.tags != y.tags).count();
        assert!(differing > 50);
    }

    #[test]
    fn entity_names_are_taggable_in_text() {
        let archive = NytArchive::generate(&small_config());
        let tagger = enblogue_entity::tagger::EntityTagger::new(std::sync::Arc::clone(
            &archive.universe.gazetteer,
        ));
        let tagged = archive
            .docs
            .iter()
            .take(200)
            .filter(|d| !tagger.tag_text(d.text.as_ref().unwrap()).is_empty())
            .count();
        assert!(tagged > 150, "most docs embed at least one recognisable entity; got {tagged}/200");
    }

    #[test]
    fn zero_events_config_is_pure_background() {
        let mut cfg = small_config();
        cfg.historic_events = 0;
        let archive = NytArchive::generate(&cfg);
        assert!(archive.script.is_empty());
        assert_eq!(archive.len(), 30 * 50);
    }

    #[test]
    fn events_preserve_individual_tag_volumes() {
        // The conversion design's whole point: an event must not change
        // how often its tags appear, only how often they appear *together*.
        let with_events = NytArchive::generate(&small_config());
        let mut cfg = small_config();
        cfg.historic_events = 0;
        let without_events = NytArchive::generate(&cfg);
        assert_eq!(with_events.len(), without_events.len(), "no documents added");

        for event in with_events.script.events() {
            // The descriptor's total volume is bit-identical (conversion
            // only touches the category side of other docs).
            let count_b = |docs: &[enblogue_types::Document]| {
                docs.iter().filter(|d| d.has_tag(event.tag_b)).count()
            };
            assert_eq!(
                count_b(&with_events.docs),
                count_b(&without_events.docs),
                "descriptor volume must be preserved for {}",
                event.name
            );
            // The category's volume moves only by the converted documents.
            let count_a = |docs: &[enblogue_types::Document]| {
                docs.iter().filter(|d| d.has_tag(event.tag_a)).count()
            };
            let delta = count_a(&with_events.docs) as i64 - count_a(&without_events.docs) as i64;
            let baseline = count_a(&without_events.docs) as i64;
            assert!(
                delta.unsigned_abs() as i64 <= baseline / 5,
                "category volume shift too large for {}: {delta} on {baseline}",
                event.name
            );
        }
    }
}
