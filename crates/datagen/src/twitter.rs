//! Tweet-stream generator: Show Case 2's workload.
//!
//! Models the paper's live-data demo: heavy-tailed hashtag chatter at
//! per-minute resolution, with planted correlation events — including the
//! paper's stunt of getting "a topic regarding SIGMOD and Athens in a
//! highly ranked position in the list of the emergent topics".

use crate::events::{CorrelationEvent, EventScript, RampShape};
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use enblogue_types::{Document, TagId, TagInterner, TagKind, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic tweet stream.
#[derive(Debug, Clone)]
pub struct TweetConfig {
    /// Master seed.
    pub seed: u64,
    /// Stream length in hours.
    pub hours: u64,
    /// Background tweets per minute.
    pub tweets_per_minute: u64,
    /// Hashtag vocabulary size.
    pub n_hashtags: usize,
    /// Content-term vocabulary size.
    pub n_terms: usize,
    /// Number of generic planted correlation events.
    pub planted_events: usize,
    /// Inject the paper's "SIGMOD Athens" stunt (a sigmoid-rising pair in
    /// the second half of the stream).
    pub sigmod_stunt: bool,
}

impl Default for TweetConfig {
    /// 48 hours × 20 tweets/min ≈ 57 k tweets, 3 planted events + stunt.
    fn default() -> Self {
        TweetConfig {
            seed: 0x7137,
            hours: 48,
            tweets_per_minute: 20,
            n_hashtags: 500,
            n_terms: 1_500,
            planted_events: 3,
            sigmod_stunt: true,
        }
    }
}

/// The generated stream.
pub struct TweetStream {
    /// All tweets, sorted by timestamp.
    pub docs: Vec<Document>,
    /// Planted events (ground truth); the stunt event is named
    /// `"sigmod-athens"`.
    pub script: EventScript,
    /// The shared interner.
    pub interner: TagInterner,
    /// Hashtag vocabulary (rank 0 = most popular).
    pub hashtags: Vocabulary,
    /// The stunt pair's ids `(sigmod, athens)`, if enabled.
    pub stunt_pair: Option<(TagId, TagId)>,
}

impl TweetStream {
    /// Generates the stream for `config`.
    pub fn generate(config: &TweetConfig) -> Self {
        assert!(config.hours > 0 && config.tweets_per_minute > 0, "stream must be non-empty");
        assert!(config.n_hashtags >= 16, "hashtag vocabulary too small");
        let interner = TagInterner::new();
        let hashtags = Vocabulary::generate(
            &interner,
            TagKind::Hashtag,
            config.n_hashtags,
            config.seed ^ 0x4A58,
        );
        let terms =
            Vocabulary::generate(&interner, TagKind::Term, config.n_terms, config.seed ^ 0x7E12);

        let mut script = EventScript::new();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5C17);
        let total_minutes = config.hours * 60;
        for i in 0..config.planted_events {
            // Popular × niche hashtag pair, like the archive events.
            let popular = rng.gen_range(0..12.min(hashtags.len()));
            let niche = rng.gen_range(hashtags.len() / 2..hashtags.len());
            let start_min = rng.gen_range(total_minutes / 5..total_minutes * 3 / 5);
            let duration = rng.gen_range(total_minutes / 12..total_minutes / 6);
            let peak = (config.tweets_per_minute as f64 * rng.gen_range(0.10..0.25)).max(1.0);
            let shapes = [RampShape::Sigmoid, RampShape::Spike, RampShape::Linear];
            script.push(CorrelationEvent::new(
                format!("planted-{i}"),
                hashtags.id(popular),
                hashtags.id(niche),
                Timestamp::from_minutes(start_min),
                Timestamp::from_minutes(start_min + duration),
                peak,
                shapes[i % shapes.len()],
            ));
        }
        let stunt_pair = if config.sigmod_stunt {
            let sigmod = interner.intern("sigmod", TagKind::Hashtag);
            let athens = interner.intern("athens", TagKind::Hashtag);
            script.push(CorrelationEvent::new(
                "sigmod-athens",
                sigmod,
                athens,
                Timestamp::from_minutes(total_minutes / 2),
                Timestamp::from_minutes(total_minutes),
                (config.tweets_per_minute as f64 * 0.15).max(1.0),
                RampShape::Sigmoid,
            ));
            Some((sigmod, athens))
        } else {
            None
        };

        let tag_zipf = Zipf::new(config.n_hashtags, 1.0);
        let term_zipf = Zipf::new(config.n_terms, 1.0);
        let mut gen_rng = StdRng::seed_from_u64(config.seed);
        let mut docs = Vec::with_capacity((total_minutes * config.tweets_per_minute) as usize);
        let mut next_id: u64 = 1;
        let mut carry = vec![0.0f64; script.len()];

        for minute in 0..total_minutes {
            let minute_start = Timestamp::from_minutes(minute);
            for _ in 0..config.tweets_per_minute {
                let ts = minute_start.plus(gen_rng.gen_range(0..Timestamp::MINUTE));
                docs.push(background_tweet(
                    next_id,
                    ts,
                    &mut gen_rng,
                    &hashtags,
                    &terms,
                    &tag_zipf,
                    &term_zipf,
                ));
                next_id += 1;
            }
            for (i, event) in script.events().iter().enumerate() {
                let rate = event.rate_at(minute_start) + carry[i];
                let emit = rate.floor() as u64;
                carry[i] = rate - emit as f64;
                for _ in 0..emit {
                    let ts = minute_start.plus(gen_rng.gen_range(0..Timestamp::MINUTE));
                    let mut doc = background_tweet(
                        next_id,
                        ts,
                        &mut gen_rng,
                        &hashtags,
                        &terms,
                        &tag_zipf,
                        &term_zipf,
                    );
                    doc.tags.push(event.tag_a);
                    doc.tags.push(event.tag_b);
                    doc.normalize();
                    docs.push(doc);
                    next_id += 1;
                }
            }
        }
        docs.sort_by_key(|d| (d.timestamp, d.id));
        TweetStream { docs, script, interner, hashtags, stunt_pair }
    }

    /// Total number of tweets.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

fn background_tweet(
    id: u64,
    ts: Timestamp,
    rng: &mut StdRng,
    hashtags: &Vocabulary,
    terms: &Vocabulary,
    tag_zipf: &Zipf,
    term_zipf: &Zipf,
) -> Document {
    let n_tags = rng.gen_range(1..=3);
    let n_terms = rng.gen_range(5..=15);
    let tags: Vec<TagId> = (0..n_tags).map(|_| hashtags.id(tag_zipf.sample(rng))).collect();
    let term_ids: Vec<TagId> = (0..n_terms).map(|_| terms.id(term_zipf.sample(rng))).collect();
    // Tweets are short; text is just the terms (no entity embedding — the
    // live pipeline tags entities from the same text path regardless).
    let mut text = String::with_capacity(n_terms * 8);
    let first_term = terms.id(0).0;
    for (i, t) in term_ids.iter().enumerate() {
        if i > 0 {
            text.push(' ');
        }
        text.push_str(terms.word((t.0 - first_term) as usize));
    }
    Document::builder(id, ts).tags(tags).terms(term_ids).text(text).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TweetConfig {
        TweetConfig {
            seed: 7,
            hours: 4,
            tweets_per_minute: 5,
            n_hashtags: 50,
            n_terms: 100,
            planted_events: 2,
            sigmod_stunt: true,
        }
    }

    #[test]
    fn stream_is_sorted_and_sized() {
        let stream = TweetStream::generate(&small_config());
        assert!(stream.len() >= 4 * 60 * 5);
        for w in stream.docs.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn stunt_event_is_planted_in_second_half() {
        let stream = TweetStream::generate(&small_config());
        let (sigmod, athens) = stream.stunt_pair.expect("stunt enabled");
        let stunt = stream
            .script
            .events()
            .iter()
            .find(|e| e.name == "sigmod-athens")
            .expect("stunt event scripted");
        assert_eq!(stunt.pair(), enblogue_types::TagPair::new(sigmod, athens));
        assert!(stunt.start >= Timestamp::from_hours(2));
        // Co-tagged tweets appear near the end (sigmoid peaks late).
        let late_cooccur = stream
            .docs
            .iter()
            .filter(|d| d.timestamp >= Timestamp::from_hours(3))
            .filter(|d| d.has_tag(sigmod) && d.has_tag(athens))
            .count();
        assert!(late_cooccur > 0, "stunt produced no co-tagged tweets late in the stream");
        let early_cooccur = stream
            .docs
            .iter()
            .filter(|d| d.timestamp < Timestamp::from_hours(2))
            .filter(|d| d.has_tag(sigmod) && d.has_tag(athens))
            .count();
        assert_eq!(early_cooccur, 0, "stunt must not leak before its start");
    }

    #[test]
    fn stunt_can_be_disabled() {
        let mut cfg = small_config();
        cfg.sigmod_stunt = false;
        let stream = TweetStream::generate(&cfg);
        assert!(stream.stunt_pair.is_none());
        assert!(stream.script.events().iter().all(|e| e.name != "sigmod-athens"));
        assert_eq!(stream.script.len(), 2);
    }

    #[test]
    fn tweets_are_short_and_tagged() {
        let stream = TweetStream::generate(&small_config());
        for doc in stream.docs.iter().take(200) {
            assert!(!doc.tags.is_empty());
            assert!(doc.tags.len() <= 5);
            assert!(doc.terms.len() <= 15);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = TweetStream::generate(&small_config());
        let b = TweetStream::generate(&small_config());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.docs.iter().zip(&b.docs).take(300) {
            assert_eq!(x.tags, y.tags);
            assert_eq!(x.timestamp, y.timestamp);
        }
    }
}
