//! Scripted correlation events: the planted emergent topics.
//!
//! A [`CorrelationEvent`] injects documents tagged with *both* members of a
//! tag pair over a time window, following a ramp shape. The pair's
//! individual frequencies barely move (the extra volume is small against
//! background chatter) while their intersection rises sharply — exactly the
//! Figure-1 situation EnBlogue is built to detect. Scripts double as ground
//! truth for precision/recall/latency evaluation.

use enblogue_types::{TagId, TagPair, Timestamp};
use serde::{Deserialize, Serialize};

/// The temporal intensity profile of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RampShape {
    /// Full intensity for the whole window (breaking news).
    Step,
    /// Linear rise to the peak at window end (building story).
    Linear,
    /// Smooth S-curve rise (organically spreading topic).
    Sigmoid,
    /// Sharp rise then exponential cool-down (flash event; peaks at 20% of
    /// the window).
    Spike,
}

impl RampShape {
    /// Intensity multiplier in `[0, 1]` at relative position `x ∈ [0, 1]`
    /// within the event window.
    pub fn intensity(self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        match self {
            RampShape::Step => 1.0,
            RampShape::Linear => x,
            RampShape::Sigmoid => {
                // Logistic centred at 0.5 with steepness 10, rescaled so
                // intensity(0) == 0 and intensity(1) == 1 exactly.
                let raw = |x: f64| 1.0 / (1.0 + (-10.0 * (x - 0.5)).exp());
                let (lo, hi) = (raw(0.0), raw(1.0));
                (raw(x) - lo) / (hi - lo)
            }
            RampShape::Spike => {
                let peak = 0.2;
                if x <= peak {
                    x / peak
                } else {
                    // Exponential cool-down to ~5% at window end.
                    (-3.0 * (x - peak) / (1.0 - peak)).exp()
                }
            }
        }
    }

    /// Short identifier for experiment output.
    pub const fn name(self) -> &'static str {
        match self {
            RampShape::Step => "step",
            RampShape::Linear => "linear",
            RampShape::Sigmoid => "sigmoid",
            RampShape::Spike => "spike",
        }
    }
}

/// One planted emergent topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationEvent {
    /// Human-readable label ("hurricane katrina", "sigmod athens").
    pub name: String,
    /// First member of the pair.
    pub tag_a: TagId,
    /// Second member of the pair.
    pub tag_b: TagId,
    /// Event start (inclusive).
    pub start: Timestamp,
    /// Event end (exclusive).
    pub end: Timestamp,
    /// Extra co-tagged documents per tick at full intensity.
    pub peak_rate: f64,
    /// Intensity profile.
    pub shape: RampShape,
}

impl CorrelationEvent {
    /// Builds an event, validating the window.
    ///
    /// # Panics
    /// Panics if `end <= start`, `peak_rate < 0`, or the tags coincide.
    pub fn new(
        name: impl Into<String>,
        tag_a: TagId,
        tag_b: TagId,
        start: Timestamp,
        end: Timestamp,
        peak_rate: f64,
        shape: RampShape,
    ) -> Self {
        assert!(end > start, "event window must be non-empty");
        assert!(peak_rate >= 0.0, "peak rate cannot be negative");
        assert_ne!(tag_a, tag_b, "a correlation event needs two distinct tags");
        CorrelationEvent { name: name.into(), tag_a, tag_b, start, end, peak_rate, shape }
    }

    /// The canonical pair this event makes emergent.
    pub fn pair(&self) -> TagPair {
        TagPair::new(self.tag_a, self.tag_b)
    }

    /// Whether the event is active at `ts`.
    pub fn active_at(&self, ts: Timestamp) -> bool {
        self.start <= ts && ts < self.end
    }

    /// Expected extra co-tagged documents per tick at `ts`.
    pub fn rate_at(&self, ts: Timestamp) -> f64 {
        if !self.active_at(ts) {
            return 0.0;
        }
        let span = self.end.since(self.start) as f64;
        let x = ts.since(self.start) as f64 / span;
        self.peak_rate * self.shape.intensity(x)
    }
}

/// A collection of scripted events; doubles as ground truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventScript {
    events: Vec<CorrelationEvent>,
}

impl EventScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event.
    pub fn push(&mut self, event: CorrelationEvent) {
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[CorrelationEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events active at `ts`.
    pub fn active_at(&self, ts: Timestamp) -> impl Iterator<Item = &CorrelationEvent> {
        self.events.iter().filter(move |e| e.active_at(ts))
    }

    /// The set of ground-truth pairs.
    pub fn truth_pairs(&self) -> Vec<TagPair> {
        let mut pairs: Vec<TagPair> = self.events.iter().map(CorrelationEvent::pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// The event (if any) whose window contains `ts` and whose pair is
    /// `pair`.
    pub fn event_for(&self, pair: TagPair, ts: Timestamp) -> Option<&CorrelationEvent> {
        self.events.iter().find(|e| e.pair() == pair && e.active_at(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TagId {
        TagId(i)
    }

    #[test]
    fn shapes_are_bounded_and_anchored() {
        for shape in [RampShape::Step, RampShape::Linear, RampShape::Sigmoid, RampShape::Spike] {
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                let v = shape.intensity(x);
                assert!((0.0..=1.0).contains(&v), "{} at {x}: {v}", shape.name());
            }
            assert_eq!(shape.intensity(-0.1), 0.0);
            assert_eq!(shape.intensity(1.1), 0.0);
        }
        assert_eq!(RampShape::Linear.intensity(0.0), 0.0);
        assert!((RampShape::Linear.intensity(1.0) - 1.0).abs() < 1e-12);
        assert!((RampShape::Sigmoid.intensity(0.0)).abs() < 1e-12);
        assert!((RampShape::Sigmoid.intensity(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(RampShape::Step.intensity(0.5), 1.0);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = -1.0;
        for i in 0..=50 {
            let v = RampShape::Sigmoid.intensity(i as f64 / 50.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn spike_peaks_early_then_cools() {
        let peak = RampShape::Spike.intensity(0.2);
        assert!((peak - 1.0).abs() < 1e-12);
        assert!(RampShape::Spike.intensity(0.1) < peak);
        assert!(RampShape::Spike.intensity(0.5) < peak);
        assert!(RampShape::Spike.intensity(0.99) < 0.1, "cooled down near the end");
    }

    #[test]
    fn event_rate_respects_window() {
        let e = CorrelationEvent::new(
            "volcano",
            t(1),
            t(2),
            Timestamp::from_hours(10),
            Timestamp::from_hours(20),
            8.0,
            RampShape::Step,
        );
        assert_eq!(e.rate_at(Timestamp::from_hours(9)), 0.0);
        assert_eq!(e.rate_at(Timestamp::from_hours(10)), 8.0);
        assert_eq!(e.rate_at(Timestamp::from_hours(19)), 8.0);
        assert_eq!(e.rate_at(Timestamp::from_hours(20)), 0.0, "end is exclusive");
        assert!(e.active_at(Timestamp::from_hours(15)));
        assert_eq!(e.pair(), TagPair::new(t(2), t(1)));
    }

    #[test]
    fn script_queries() {
        let mut script = EventScript::new();
        script.push(CorrelationEvent::new(
            "a",
            t(1),
            t(2),
            Timestamp::from_hours(0),
            Timestamp::from_hours(10),
            1.0,
            RampShape::Step,
        ));
        script.push(CorrelationEvent::new(
            "b",
            t(3),
            t(4),
            Timestamp::from_hours(5),
            Timestamp::from_hours(15),
            1.0,
            RampShape::Linear,
        ));
        assert_eq!(script.len(), 2);
        assert_eq!(script.active_at(Timestamp::from_hours(7)).count(), 2);
        assert_eq!(script.active_at(Timestamp::from_hours(12)).count(), 1);
        assert_eq!(script.truth_pairs(), vec![TagPair::new(t(1), t(2)), TagPair::new(t(3), t(4))]);
        assert!(script.event_for(TagPair::new(t(1), t(2)), Timestamp::from_hours(3)).is_some());
        assert!(script.event_for(TagPair::new(t(1), t(2)), Timestamp::from_hours(12)).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = CorrelationEvent::new(
            "x",
            t(1),
            t(2),
            Timestamp::from_hours(5),
            Timestamp::from_hours(5),
            1.0,
            RampShape::Step,
        );
    }
}
