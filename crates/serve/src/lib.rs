//! # enblogue-serve — the concurrent serving tier
//!
//! EnBlogue's demo serves its rankings to browsers through a push
//! front-end (§4.2); this crate is the systems half of that story: how
//! an engine that is busy ingesting a stream answers queries from many
//! clients **concurrently**, without stalling ingest and without locks
//! on the read path.
//!
//! The design is publish/read separation with epoch versioning:
//!
//! * At every tick close, an installed [`PublishStage`] exports the
//!   closed tick's results — ranking, seed set, per-pair stats, and a
//!   snapshot of the member tags' display names — into an immutable
//!   [`TickView`], stamps it with a monotonically increasing **epoch**,
//!   and swaps it into a lock-free cell.
//! * Any number of [`QueryHandle`] clones (cheap, `Send + Sync`) read
//!   the current view through that cell: top-k, per-tag drill-down,
//!   pair stats and history, seed membership, and personalized
//!   re-ranking, all through the same
//!   [`QueryView`] trait the engine's in-place view implements. A read
//!   never acquires a mutex or rwlock and never blocks a close; a
//!   close never blocks a read (readers on the old epoch keep their
//!   `Arc`, readers arriving after the swap see the new one — no torn
//!   state in between).
//! * Persistent per-user [`Subscription`]s bind a profile to a handle;
//!   the per-snapshot work (engine pass, name resolution) is shared by
//!   all of them, each paying only its own re-rank loop.
//!
//! Retired views are pooled and refilled in place, so the steady-state
//! publish performs **zero heap allocations** (pinned by the core
//! crate's `close_allocs.rs`) and costs O(top-k) at the default
//! [`PublishDetail::Ranked`] level — within 3% of the bare tick close
//! (gated by `perf_serve --test` in CI).
//!
//! ```
//! use enblogue_core::config::EnBlogueConfig;
//! use enblogue_core::engine::EnBlogueEngine;
//! use enblogue_core::personalization::UserProfile;
//! use enblogue_serve::{QueryHandle, QueryView, ServeConfig};
//! use enblogue_types::{Document, TagInterner, TagKind, Tick, Timestamp};
//!
//! let interner = TagInterner::new();
//! let a = interner.intern("ash", TagKind::Hashtag);
//! let b = interner.intern("airspace", TagKind::Hashtag);
//! let config = EnBlogueConfig::builder().window_ticks(4).build().unwrap();
//! let mut engine = EnBlogueEngine::new(config);
//! let handle = QueryHandle::attach(&mut engine, interner.clone(), ServeConfig::default());
//!
//! // The serving thread(s) would clone `handle` and query concurrently;
//! // here we drive the stream and read from one thread.
//! let mut id = 0;
//! for hour in 0..8u64 {
//!     for _ in 0..16 {
//!         id += 1;
//!         let mut doc = Document::builder(id, Timestamp::from_hours(hour)).tag(a).build();
//!         if hour >= 6 {
//!             doc.tags.push(b);
//!             doc.normalize();
//!         }
//!         engine.process_doc(&doc);
//!     }
//!     engine.close_tick(Tick(hour));
//! }
//! assert_eq!(handle.epoch(), 8);
//! let top = handle.top_k(5);
//! assert!(!top.is_empty());
//! let mut inbox = handle.subscribe(UserProfile::new("u1"));
//! assert!(inbox.poll().is_some());
//! ```
//!
//! Everything except the publication cell (the private `cell` module,
//! the one place allowed `unsafe`) is ordinary safe Rust over `Arc`s.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cell;
pub mod subscription;
pub mod tier;
pub mod view;

pub use enblogue_core::query::{PublishDetail, QueryView};
pub use subscription::Subscription;
pub use tier::{PublishStage, QueryHandle, ServeConfig};
pub use view::TickView;
