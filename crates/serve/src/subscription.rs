//! Persistent per-user subscriptions over the serving tier.

use crate::tier::QueryHandle;
use enblogue_core::personalization::{PersonalizedRanking, UserProfile};
use enblogue_core::query::QueryView;

/// A persistent personalized subscription: one user's profile bound to
/// a [`QueryHandle`].
///
/// The multi-tenant contract: the expensive per-snapshot work — the
/// engine pass that produced the ranking, and the name-resolution pass
/// over its member tags — happens **once per publish**, inside the
/// engine and the publish stage. A subscription only re-ranks the
/// shared snapshot against its profile at read time
/// (`personalize_shared` over the view's captured name table), so
/// thousands of subscriptions cost thousands of cheap re-rank loops,
/// never thousands of engine passes or interner scans.
///
/// [`Subscription::poll`] is edge-triggered (delivers each epoch at
/// most once, like the push broker's on-change mode);
/// [`Subscription::current`] is level-triggered (always answers from
/// the latest view).
#[derive(Clone)]
pub struct Subscription {
    handle: QueryHandle,
    profile: UserProfile,
    top_k: Option<usize>,
    last_epoch: u64,
}

impl Subscription {
    pub(crate) fn new(handle: QueryHandle, profile: UserProfile) -> Self {
        Subscription { handle, profile, top_k: None, last_epoch: 0 }
    }

    /// Truncates every delivery to the best `k` topics.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// The profile rankings are personalized for.
    pub fn profile(&self) -> &UserProfile {
        &self.profile
    }

    /// The handle this subscription reads through.
    pub fn handle(&self) -> &QueryHandle {
        &self.handle
    }

    /// The last epoch [`Subscription::poll`] delivered (0 = none yet).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The personalized ranking of the latest published view, every
    /// time it is asked (`None` before the first publish).
    pub fn current(&self) -> Option<PersonalizedRanking> {
        let view = self.handle.view()?;
        let mut ranking = view.personalized(&self.profile)?;
        if let Some(k) = self.top_k {
            ranking.ranked.truncate(k);
        }
        Some(ranking)
    }

    /// Delivers `(epoch, personalized ranking)` if a new epoch was
    /// published since the last delivery, else `None`. Never blocks.
    pub fn poll(&mut self) -> Option<(u64, PersonalizedRanking)> {
        let view = self.handle.view()?;
        let epoch = QueryView::epoch(&*view);
        if epoch == self.last_epoch {
            return None;
        }
        let mut ranking = view.personalized(&self.profile)?;
        if let Some(k) = self.top_k {
            ranking.ranked.truncate(k);
        }
        self.last_epoch = epoch;
        Some((epoch, ranking))
    }
}
