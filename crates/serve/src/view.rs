//! The immutable published snapshot: one closed tick, frozen.

use enblogue_core::pairs::TrackedPairInfo;
use enblogue_core::personalization::{PersonalizedRanking, UserProfile};
use enblogue_core::query::{PublishDetail, QueryView, ViewData};
use enblogue_types::{RankingSnapshot, TagId, TagPair, Tick};
use std::sync::Arc;

/// One epoch's published view: the ranking, seed set, per-pair stats
/// and resolved tag names of a closed tick, self-contained and
/// immutable.
///
/// Built by the publish stage at tick close (from
/// [`enblogue_core::stages::PipelineState::export_view`]) and handed
/// out as `Arc<TickView>` through
/// [`crate::QueryHandle::view`]. Because everything — including the
/// interner snapshot in [`ViewData::names`] — was captured at publish
/// time, answering queries touches no engine state and takes no locks;
/// a reader can hold a view for as long as it likes while ingest
/// publishes newer epochs past it.
#[derive(Debug, Default)]
pub struct TickView {
    pub(crate) data: ViewData,
}

impl TickView {
    /// The raw published payload.
    pub fn data(&self) -> &ViewData {
        &self.data
    }

    /// How much per-pair state this view carries.
    pub fn detail(&self) -> PublishDetail {
        self.data.detail
    }

    /// Number of pairs the per-pair stats cover.
    pub fn covered_pairs(&self) -> usize {
        self.data.covered_pairs()
    }
}

impl QueryView for TickView {
    fn epoch(&self) -> u64 {
        self.data.epoch
    }

    fn tick(&self) -> Option<Tick> {
        QueryView::tick(&self.data)
    }

    fn ranking(&self) -> Option<RankingSnapshot> {
        QueryView::ranking(&self.data)
    }

    fn seeds(&self) -> Vec<TagId> {
        QueryView::seeds(&self.data)
    }

    fn is_seed(&self, tag: TagId) -> bool {
        self.data.is_seed(tag)
    }

    fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        self.data.pair_info(pair)
    }

    fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.data.pair_history(pair)
    }

    fn tag_name(&self, tag: TagId) -> Option<Arc<str>> {
        self.data.tag_name(tag)
    }

    fn personalized(&self, profile: &UserProfile) -> Option<PersonalizedRanking> {
        self.data.personalized(profile)
    }
}
