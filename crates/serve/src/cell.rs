//! The lock-free publication cell: single-writer, multi-reader `Arc`
//! hand-off.
//!
//! [`ViewCell`] holds the current published view as a raw `Arc` pointer.
//! Readers ([`ViewCell::load`]) take a clone of that `Arc` without ever
//! acquiring a mutex or rwlock: they announce themselves in one of two
//! generation guards, re-check that the writer has not flipped
//! generations underneath them, bump the `Arc`'s strong count, and
//! leave. The writer ([`ViewCell::publish`]) swaps the pointer, flips
//! the generation selector, and then spin-waits until the *retired*
//! generation's guard drains — at that point no reader can still be
//! between "loaded the old pointer" and "incremented its strong count",
//! so reclaiming the old `Arc` is safe and the retired view is handed
//! back to the publisher for pooling.
//!
//! Why this shape: a plain `Mutex<Arc<T>>` would serialize every query
//! behind ingest's publishes, and an `AtomicPtr` alone cannot tell the
//! writer when the last in-flight reader is done with the pointer it
//! just replaced. The guard pair is a two-slot epoch-based reclamation
//! scheme — readers wait-free in the common case (one retry only if
//! they race the flip), the writer's drain bounded by the few
//! instructions a reader spends inside the guard.
//!
//! Invariants:
//!
//! * **Single writer.** `publish` must only be called from one thread at
//!   a time (the tick-close thread). Readers are unrestricted.
//! * The cell owns one strong reference to the current view; `Drop`
//!   releases it.
//!
//! This is the only module in the crate allowed to use `unsafe`
//! (crate-level `#![deny(unsafe_code)]`, overridden here); everything
//! above it deals in safe `Arc`s.
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Epoch-versioned, atomically swapped `Arc<T>` slot (see module docs).
pub(crate) struct ViewCell<T> {
    /// The current view, owned via `Arc::into_raw`. Null = unpublished.
    ptr: AtomicPtr<T>,
    /// The epoch of the pointer in `ptr`, stored by the writer right
    /// after the swap. Monotonically increasing.
    epoch: AtomicU64,
    /// Generation selector; `sel & 1` indexes the guard readers use.
    sel: AtomicUsize,
    /// In-flight reader counts, one per generation.
    guards: [AtomicU64; 2],
    /// The cell logically owns an `Arc<T>`, so it is `Send`/`Sync`
    /// exactly when `Arc<T>` is.
    _owns: PhantomData<Arc<T>>,
}

impl<T> ViewCell<T> {
    pub(crate) fn new() -> Self {
        ViewCell {
            ptr: AtomicPtr::new(ptr::null_mut()),
            epoch: AtomicU64::new(0),
            sel: AtomicUsize::new(0),
            guards: [AtomicU64::new(0), AtomicU64::new(0)],
            _owns: PhantomData,
        }
    }

    /// The epoch of the most recent publish (0 = never published).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Takes a reference to the current view. Lock-free: no mutex or
    /// rwlock on any path; at most one retry, if the call races a
    /// generation flip.
    pub(crate) fn load(&self) -> Option<Arc<T>> {
        loop {
            let g = self.sel.load(SeqCst) & 1;
            self.guards[g].fetch_add(1, SeqCst);
            // Re-check: if the writer flipped generations between our
            // selector read and our guard increment, the writer may
            // already have drained guard `g` and moved on — our
            // increment came too late to be honored, so we must not
            // touch the pointer under it. Back out and retry against
            // the new generation.
            if self.sel.load(SeqCst) & 1 == g {
                let p = self.ptr.load(SeqCst);
                let view = if p.is_null() {
                    None
                } else {
                    // Safety: `p` came from `Arc::into_raw` in
                    // `publish`. Holding guard `g` (confirmed current
                    // after the increment) means any writer retiring
                    // this pointer observes our count and spins until
                    // we release, so the allocation outlives the
                    // increment; the increment then keeps it alive for
                    // the returned clone.
                    unsafe {
                        Arc::increment_strong_count(p);
                        Some(Arc::from_raw(p))
                    }
                };
                self.guards[g].fetch_sub(1, SeqCst);
                return view;
            }
            self.guards[g].fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `view` at `epoch`, returning the retired previous view
    /// (for pooling) once no in-flight reader can still touch its raw
    /// pointer. Single writer only (see module docs).
    pub(crate) fn publish(&self, view: Arc<T>, epoch: u64) -> Option<Arc<T>> {
        let next = Arc::into_raw(view).cast_mut();
        let old = self.ptr.swap(next, SeqCst);
        self.epoch.store(epoch, SeqCst);
        // Flip generations: readers that confirmed the old generation
        // are counted in `guards[retired]`; new readers land in the
        // other slot. Drain the retired slot before reclaiming.
        let retired = self.sel.fetch_xor(1, SeqCst) & 1;
        let mut spins = 0u32;
        while self.guards[retired].load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if old.is_null() {
            None
        } else {
            // Safety: `old` came from `Arc::into_raw`; the guard drain
            // above proves no reader is mid-clone on it, so taking the
            // cell's strong reference back is sound. Readers that
            // already cloned hold their own counts — the returned Arc
            // reports them via `strong_count`, which the pool checks
            // before reuse.
            Some(unsafe { Arc::from_raw(old) })
        }
    }
}

impl<T> Drop for ViewCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // Safety: exclusive access (`&mut self`); the cell owns one
            // strong reference to `p` from the last `publish`.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn starts_unpublished() {
        let cell: ViewCell<u64> = ViewCell::new();
        assert_eq!(cell.epoch(), 0);
        assert!(cell.load().is_none());
    }

    #[test]
    fn publish_load_retire_roundtrip() {
        let cell = ViewCell::new();
        assert!(cell.publish(Arc::new(1u64), 1).is_none());
        assert_eq!(cell.epoch(), 1);
        let held = cell.load().unwrap();
        assert_eq!(*held, 1);
        let retired = cell.publish(Arc::new(2u64), 2).unwrap();
        assert_eq!(*retired, 1);
        // The reader's clone is visible on the retired Arc.
        assert_eq!(Arc::strong_count(&retired), 2);
        drop(held);
        assert_eq!(Arc::strong_count(&retired), 1);
        assert_eq!(*cell.load().unwrap(), 2);
    }

    #[test]
    fn drop_releases_the_current_view() {
        let probe = Arc::new(7u64);
        let cell = ViewCell::new();
        cell.publish(probe.clone(), 1);
        assert_eq!(Arc::strong_count(&probe), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_state() {
        // Each published value is (epoch, 1000 + epoch): a torn read
        // (pointer from one publish, contents from another) would break
        // the relation; a reclaimed-under-the-reader Arc would crash or
        // miscount under the allocator.
        let cell = Arc::new(ViewCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let reads = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let reads = Arc::clone(&reads);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(SeqCst) {
                        if let Some(v) = cell.load() {
                            let (epoch, payload) = *v;
                            assert_eq!(payload, 1000 + epoch, "torn view");
                            assert!(epoch >= last, "epoch went backwards");
                            last = epoch;
                            reads.fetch_add(1, SeqCst);
                        }
                    }
                })
            })
            .collect();
        // Publish (yielding, so readers get scheduled even on one CPU)
        // until the readers have demonstrably raced a healthy number of
        // swaps, with a generous iteration cap as a deadlock backstop.
        // (Whether a retired view comes back exclusively owned depends
        // on scheduling; `publish_load_retire_roundtrip` pins that
        // deterministically.)
        let mut epoch = 0u64;
        while reads.load(SeqCst) < 500 && epoch < 200_000 {
            epoch += 1;
            let _retired = cell.publish(Arc::new((epoch, 1000 + epoch)), epoch);
            std::thread::yield_now();
        }
        stop.store(true, SeqCst);
        for reader in readers {
            reader.join().unwrap();
        }
        assert!(reads.load(SeqCst) >= 500, "readers must have observed views");
        assert_eq!(cell.epoch(), epoch);
    }
}
