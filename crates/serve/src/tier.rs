//! The serving tier: publish stage, shared cell, and the concurrent
//! query handle.

use crate::cell::ViewCell;
use crate::subscription::Subscription;
use crate::view::TickView;
use enblogue_core::engine::EnBlogueEngine;
use enblogue_core::pairs::TrackedPairInfo;
use enblogue_core::personalization::{PersonalizedRanking, UserProfile};
use enblogue_core::query::{PublishDetail, QueryView};
use enblogue_core::stages::{PipelineState, StagePipeline, TickStage};
use enblogue_telemetry::{Counter, EventKind, Gauge, Histogram, Telemetry};
use enblogue_types::{RankingSnapshot, TagId, TagInterner, TagPair, Tick, Timestamp};
use std::sync::Arc;

/// Serving-tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// How much per-pair state each published view carries. The default
    /// ([`PublishDetail::Ranked`]) keeps publish cost O(top-k);
    /// [`PublishDetail::Full`] buys whole-population `pair_info` /
    /// `pair_history` parity at O(tracked pairs) per publish.
    pub detail: PublishDetail,
    /// How many retired views the publisher keeps for reuse. Two is
    /// enough for the steady state (one live, one being refilled);
    /// raise it if long-lived readers frequently pin old epochs.
    pub pool: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { detail: PublishDetail::Ranked, pool: 2 }
    }
}

impl ServeConfig {
    /// Sets the publish detail level.
    #[must_use]
    pub fn with_detail(mut self, detail: PublishDetail) -> Self {
        self.detail = detail;
        self
    }

    /// Sets the retired-view pool size.
    #[must_use]
    pub fn with_pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }
}

/// State shared between the publish stage and every query handle.
pub(crate) struct ServeShared {
    pub(crate) cell: ViewCell<TickView>,
    /// `serve.queries`: one count per answered query. Lock-free
    /// (relaxed atomic), so the read path stays uncontended.
    pub(crate) queries: Counter,
}

/// The tick stage that publishes views. Installed by
/// [`QueryHandle::attach`]; runs after the built-in rank-emit stage, so
/// it exports exactly the state the engine's own accessors answer from.
pub struct PublishStage {
    shared: Arc<ServeShared>,
    interner: TagInterner,
    detail: PublishDetail,
    /// Retired views awaiting reuse. A view re-enters service only when
    /// no reader still holds it (`Arc::strong_count == 1`), at which
    /// point `export_view` refills its columns in place — a warm
    /// publish allocates nothing (pinned by `close_allocs.rs`).
    pool: Vec<Arc<TickView>>,
    pool_cap: usize,
    epoch: u64,
    publish_ns: Histogram,
    epoch_gauge: Gauge,
}

impl TickStage for PublishStage {
    fn name(&self) -> &'static str {
        "serve-publish"
    }

    fn on_close(&mut self, state: &mut PipelineState, tick: Tick, _now: Timestamp) {
        let span = self.publish_ns.start_span();
        self.epoch += 1;
        let mut view = match self.pool.iter().position(|v| Arc::strong_count(v) == 1) {
            Some(i) => self.pool.swap_remove(i),
            None => Arc::new(TickView::default()),
        };
        let fresh = Arc::get_mut(&mut view).expect("pooled view is exclusively owned");
        state.export_view(self.detail, &mut fresh.data);
        fresh.data.epoch = self.epoch;
        let interner = &self.interner;
        fresh.data.resolve_names(|t| interner.name(t));
        let ranked = fresh.data.ranking.as_ref().map_or(0, |s| s.ranked.len());
        if let Some(old) = self.shared.cell.publish(view, self.epoch) {
            if self.pool.len() < self.pool_cap {
                self.pool.push(old);
            }
        }
        self.epoch_gauge.set(self.epoch as i64);
        state.telemetry().journal().record(
            EventKind::ViewPublish,
            tick.0,
            self.epoch,
            ranked as u64,
        );
        span.finish();
    }
}

/// The concurrent query endpoint over the published views.
///
/// Cheap to clone, `Send + Sync`; hand one to every serving thread.
/// All reads answer from the most recently published [`TickView`]
/// through the lock-free cell — no mutex or rwlock is acquired on any
/// query path, and readers never block (or are blocked by) the
/// ingest/close thread. Implements [`QueryView`], the same API the
/// engine's in-place view exposes; `tests/serve_parity.rs` pins the two
/// byte-identical.
#[derive(Clone)]
pub struct QueryHandle {
    shared: Arc<ServeShared>,
}

impl QueryHandle {
    /// Attaches a serving tier to `engine`: installs the publish stage
    /// (so every subsequent tick close publishes a view) and returns
    /// the handle. `interner` must be the interner the documents are
    /// tagged with — names are resolved through it *at publish time*,
    /// so queries never touch it.
    pub fn attach(engine: &mut EnBlogueEngine, interner: TagInterner, config: ServeConfig) -> Self {
        let (handle, stage) = Self::build(engine.telemetry(), interner, config);
        engine.push_stage(Box::new(stage));
        handle
    }

    /// [`QueryHandle::attach`] for a bare [`StagePipeline`] (the DAG
    /// operator and ingest surfaces).
    pub fn attach_pipeline(
        pipeline: &mut StagePipeline,
        interner: TagInterner,
        config: ServeConfig,
    ) -> Self {
        let (handle, stage) = Self::build(pipeline.telemetry(), interner, config);
        pipeline.push_stage(Box::new(stage));
        handle
    }

    fn build(
        telemetry: &Telemetry,
        interner: TagInterner,
        config: ServeConfig,
    ) -> (Self, PublishStage) {
        let registry = telemetry.registry();
        let shared = Arc::new(ServeShared {
            cell: ViewCell::new(),
            queries: registry.counter("serve.queries"),
        });
        let stage = PublishStage {
            shared: Arc::clone(&shared),
            interner,
            detail: config.detail,
            pool: Vec::new(),
            pool_cap: config.pool.max(1),
            epoch: 0,
            publish_ns: registry.histogram("serve.publish.ns"),
            epoch_gauge: registry.gauge("serve.epoch"),
        };
        (QueryHandle { shared }, stage)
    }

    /// The current published view (`None` before the first tick close).
    /// The returned `Arc` stays valid however many epochs are published
    /// past it.
    pub fn view(&self) -> Option<Arc<TickView>> {
        self.shared.queries.inc();
        self.shared.cell.load()
    }

    /// Registers a persistent per-user subscription over this handle.
    pub fn subscribe(&self, profile: UserProfile) -> Subscription {
        Subscription::new(self.clone(), profile)
    }
}

impl QueryView for QueryHandle {
    fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    fn tick(&self) -> Option<Tick> {
        self.view().and_then(|v| QueryView::tick(&*v))
    }

    fn ranking(&self) -> Option<RankingSnapshot> {
        self.view().and_then(|v| QueryView::ranking(&*v))
    }

    fn seeds(&self) -> Vec<TagId> {
        self.view().map(|v| QueryView::seeds(&*v)).unwrap_or_default()
    }

    fn is_seed(&self, tag: TagId) -> bool {
        self.view().is_some_and(|v| v.is_seed(tag))
    }

    fn pair_info(&self, pair: TagPair) -> Option<TrackedPairInfo> {
        self.view().and_then(|v| v.pair_info(pair))
    }

    fn pair_history(&self, pair: TagPair) -> Option<Vec<f64>> {
        self.view().and_then(|v| v.pair_history(pair))
    }

    fn tag_name(&self, tag: TagId) -> Option<Arc<str>> {
        self.view().and_then(|v| v.tag_name(tag))
    }

    fn personalized(&self, profile: &UserProfile) -> Option<PersonalizedRanking> {
        self.view().and_then(|v| v.personalized(profile))
    }
}
