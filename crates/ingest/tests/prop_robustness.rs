//! Property-based tests for the event-time robustness layer: the
//! [`ReorderBuffer`] against a naive flat-vector reference model, and the
//! [`SourceGuard`] against a naive map-and-counter reference — both fed
//! arbitrary (adversarial) arrival streams.

use enblogue_ingest::guard::{GuardVerdict, SourceGuard};
use enblogue_ingest::reorder::{PushOutcome, ReorderBuffer};
use enblogue_types::{Document, SourceId, Tick, TickSpec, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

fn doc(id: u64, tick: u64) -> Document {
    Document::builder(id, Timestamp::from_hours(tick)).build()
}

/// The naive reference for the reorder buffer: no BTreeMap, no
/// incremental draining — just a flat vector of held documents, the
/// watermark arithmetic spelled out per arrival, and a stable sort by
/// tick whenever the seal advances. Obviously correct, obviously slow.
struct NaiveReorder {
    lateness: u64,
    cap: usize,
    held: Vec<(u64, u64)>, // (tick, id) in arrival order
    max_tick: Option<u64>,
    sealed: Option<u64>,
    out: Vec<u64>,
    late: u64,
    overflow: u64,
}

impl NaiveReorder {
    fn new(lateness: u64, cap: usize) -> Self {
        NaiveReorder {
            lateness,
            cap,
            held: Vec::new(),
            max_tick: None,
            sealed: None,
            out: Vec::new(),
            late: 0,
            overflow: 0,
        }
    }

    fn push(&mut self, id: u64, tick: u64) {
        if self.sealed.is_some_and(|sealed| tick <= sealed) {
            self.late += 1;
            return;
        }
        if self.held.len() >= self.cap {
            self.overflow += 1;
            return;
        }
        if self.max_tick.is_none_or(|max| tick > max) {
            self.max_tick = Some(tick);
        }
        self.held.push((tick, id));
        if let Some(seal) = self.max_tick.and_then(|max| max.checked_sub(self.lateness + 1)) {
            self.seal_through(seal);
        }
    }

    fn seal_through(&mut self, seal: u64) {
        if self.sealed.is_some_and(|done| done >= seal) {
            return;
        }
        let mut released: Vec<(u64, u64)> =
            self.held.iter().copied().filter(|&(tick, _)| tick <= seal).collect();
        self.held.retain(|&(tick, _)| tick > seal);
        released.sort_by_key(|&(tick, _)| tick); // stable: arrival order within a tick
        self.out.extend(released.into_iter().map(|(_, id)| id));
        self.sealed = Some(seal);
    }

    fn flush(&mut self) {
        if let Some(max) = self.max_tick {
            self.seal_through(max);
        }
    }
}

/// The naive reference for the source guard: the clamp, the dedup map,
/// and the bucket arithmetic written out once more, flat. Entries never
/// expire — expiry is a memory optimization the verdicts must not see.
struct NaiveGuard {
    window: u64,
    rate: f64,
    burst: f64,
    current: Option<u64>,
    seen: HashMap<(u32, u64), u64>,
    buckets: HashMap<u32, (f64, u64)>,
}

impl NaiveGuard {
    fn admit(&mut self, source: u32, id: u64, tick: u64) -> GuardVerdict {
        let tick = self.current.map_or(tick, |current| tick.max(current));
        self.current = Some(tick);
        if self.window > 0 {
            if let Some(&seen) = self.seen.get(&(source, id)) {
                if tick - seen < self.window {
                    return GuardVerdict::Duplicate;
                }
            }
        }
        if self.rate > 0.0 {
            let (tokens, last) = self.buckets.entry(source).or_insert((self.burst, tick));
            *tokens = self.burst.min(*tokens + (tick - *last) as f64 * self.rate);
            *last = tick;
            if *tokens < 1.0 {
                return GuardVerdict::RateCapped;
            }
            *tokens -= 1.0;
        }
        if self.window > 0 {
            self.seen.insert((source, id), tick);
        }
        GuardVerdict::Admitted
    }
}

proptest! {
    /// Arbitrary arrival streams: the buffer's emissions, drops, and
    /// counters match the naive reference exactly, and nothing is held
    /// after a flush.
    #[test]
    fn reorder_buffer_matches_naive_reference(
        ticks in proptest::collection::vec(0u64..24, 0..120),
        lateness in 0u64..6,
        cap in 1usize..40,
    ) {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), lateness, cap);
        let mut naive = NaiveReorder::new(lateness, cap);
        let mut emitted = Vec::new();
        for (id, &tick) in ticks.iter().enumerate() {
            buffer.push(doc(id as u64, tick));
            naive.push(id as u64, tick);
            // Drop accounting agrees arrival by arrival.
            prop_assert_eq!(buffer.late_dropped(), naive.late);
            prop_assert_eq!(buffer.overflow_dropped(), naive.overflow);
            buffer.drain_ready(&mut emitted);
        }
        buffer.flush(&mut emitted);
        naive.flush();
        let ids: Vec<u64> = emitted.iter().map(|d| d.id).collect();
        prop_assert_eq!(ids, naive.out);
        prop_assert_eq!(buffer.late_dropped(), naive.late);
        prop_assert_eq!(buffer.overflow_dropped(), naive.overflow);
        prop_assert_eq!(buffer.arrivals(), ticks.len() as u64);
        prop_assert_eq!(buffer.buffered(), 0);
    }

    /// Streams whose out-of-orderness stays within the bound lose
    /// nothing: the emission is exactly the stable sort of the input by
    /// tick — the sorted-replay equivalence the engine's byte-parity
    /// rests on.
    #[test]
    fn bounded_delay_loses_nothing_and_sorts(
        deltas in proptest::collection::vec((0u64..3, 0u64..4), 1..100),
        lateness in 3u64..8,
    ) {
        // Build a stream whose lateness never exceeds 3 ≤ bound.
        let mut base = 0u64;
        let mut ticks = Vec::new();
        for &(advance, back) in &deltas {
            base += advance;
            ticks.push(base.saturating_sub(back.min(3)));
        }
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), lateness, usize::MAX);
        let mut emitted = Vec::new();
        for (id, &tick) in ticks.iter().enumerate() {
            prop_assert_eq!(buffer.push(doc(id as u64, tick)), PushOutcome::Buffered);
            buffer.drain_ready(&mut emitted);
        }
        buffer.flush(&mut emitted);
        let mut expected: Vec<(u64, u64)> =
            ticks.iter().enumerate().map(|(id, &t)| (t, id as u64)).collect();
        expected.sort_by_key(|&(tick, _)| tick); // stable
        let got: Vec<(u64, u64)> = emitted
            .iter()
            .map(|d| (TickSpec::hourly().tick_of(d.timestamp).0, d.id))
            .collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(buffer.late_dropped(), 0);
        prop_assert_eq!(buffer.overflow_dropped(), 0);
    }

    /// A snapshot taken at any split point restores a buffer that
    /// continues bit-identically to the uninterrupted one.
    #[test]
    fn reorder_snapshot_resumes_anywhere(
        ticks in proptest::collection::vec(0u64..16, 1..80),
        lateness in 0u64..5,
        cap in 4usize..32,
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((ticks.len() as f64) * split_frac) as usize;
        let mut full = ReorderBuffer::new(TickSpec::hourly(), lateness, cap);
        let mut full_out = Vec::new();
        let mut head = ReorderBuffer::new(TickSpec::hourly(), lateness, cap);
        let mut head_out = Vec::new();
        for (id, &tick) in ticks[..split].iter().enumerate() {
            full.push(doc(id as u64, tick));
            full.drain_ready(&mut full_out);
            head.push(doc(id as u64, tick));
            head.drain_ready(&mut head_out);
        }
        let mut resumed = ReorderBuffer::from_snapshot(
            TickSpec::hourly(), lateness, cap, head.to_snapshot(),
        );
        for (off, &tick) in ticks[split..].iter().enumerate() {
            let id = (split + off) as u64;
            full.push(doc(id, tick));
            full.drain_ready(&mut full_out);
            resumed.push(doc(id, tick));
            resumed.drain_ready(&mut head_out);
        }
        full.flush(&mut full_out);
        resumed.flush(&mut head_out);
        prop_assert_eq!(full_out, head_out);
        prop_assert_eq!(full.to_snapshot(), resumed.to_snapshot());
    }

    /// Arbitrary (source, doc, tick) streams: the guard's verdicts match
    /// the naive reference document by document — dedup before metering,
    /// late ticks clamped, per-source buckets independent.
    #[test]
    fn source_guard_matches_naive_reference(
        stream in proptest::collection::vec((0u32..4, 0u64..12, 0u64..3), 0..150),
        window in 0u64..5,
        rate_x2 in 0u32..7,
        extra_burst in 0u32..4,
    ) {
        let rate = f64::from(rate_x2) / 2.0;
        let burst = if rate > 0.0 { rate + f64::from(extra_burst) } else { 0.0 };
        let mut guard = SourceGuard::new(window, rate, burst);
        let mut naive = NaiveGuard {
            window,
            rate,
            burst,
            current: None,
            seen: HashMap::new(),
            buckets: HashMap::new(),
        };
        let mut tick = 0u64;
        let mut counts = [0u64; 3];
        for &(source, id, advance) in &stream {
            tick += advance;
            // Offer some documents "late" to exercise the clamp.
            let offered = if id % 3 == 0 { tick.saturating_sub(2) } else { tick };
            let verdict = guard.admit(SourceId(source), id, Tick(offered));
            let expected = naive.admit(source, id, offered);
            prop_assert_eq!(verdict, expected);
            counts[match verdict {
                GuardVerdict::Admitted => 0,
                GuardVerdict::Duplicate => 1,
                GuardVerdict::RateCapped => 2,
            }] += 1;
        }
        prop_assert_eq!(guard.admitted(), counts[0]);
        prop_assert_eq!(guard.deduped(), counts[1]);
        prop_assert_eq!(guard.rate_capped(), counts[2]);
    }

    /// A guard snapshot taken at any split point restores a guard whose
    /// verdicts continue identically.
    #[test]
    fn guard_snapshot_resumes_anywhere(
        stream in proptest::collection::vec((0u32..3, 0u64..10, 0u64..3), 1..100),
        window in 0u64..5,
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((stream.len() as f64) * split_frac) as usize;
        let (rate, burst) = (1.5, 3.0);
        let mut full = SourceGuard::new(window, rate, burst);
        let mut head = SourceGuard::new(window, rate, burst);
        let mut tick = 0u64;
        let mut feed = Vec::new();
        for &(source, id, advance) in &stream {
            tick += advance;
            feed.push((SourceId(source), id, Tick(tick)));
        }
        for &(s, d, t) in &feed[..split] {
            full.admit(s, d, t);
            head.admit(s, d, t);
        }
        let mut resumed = SourceGuard::from_snapshot(window, rate, burst, head.to_snapshot());
        for &(s, d, t) in &feed[split..] {
            prop_assert_eq!(full.admit(s, d, t), resumed.admit(s, d, t));
        }
        prop_assert_eq!(full.to_snapshot(), resumed.to_snapshot());
    }
}
