//! Property-based tests for the shard partitioner: partitioning must be a
//! lossless, routing-faithful reshuffle of the sequential observation
//! stream.

use enblogue_ingest::partition::{annotations_of, partition_docs, PartitionSpec};
use enblogue_types::{Document, TagId, TagPair, Tick, TickSpec, Timestamp};
use proptest::prelude::*;

/// Builds a timestamp-sorted workload from generated raw material.
fn build_docs(raw: &[(u64, Vec<u32>, Vec<u32>)]) -> Vec<Document> {
    let mut docs: Vec<Document> = raw
        .iter()
        .enumerate()
        .map(|(id, (hour, tags, entities))| {
            Document::builder(id as u64, Timestamp::from_hours(*hour))
                .tags(tags.iter().map(|&t| TagId(t)))
                .entities(entities.iter().map(|&t| TagId(t + 1000)))
                .build()
        })
        .collect();
    docs.sort_by_key(|d| d.timestamp);
    docs
}

/// The observation stream a sequential feeder would produce.
fn sequential_observations(docs: &[Document], spec: &PartitionSpec) -> Vec<(Tick, u64)> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for doc in docs {
        let tick = spec.tick_spec.tick_of(doc.timestamp);
        let annotations = annotations_of(doc, spec.use_entities, &mut buf);
        for i in 0..annotations.len() {
            for j in i + 1..annotations.len() {
                out.push((tick, TagPair::new(annotations[i], annotations[j]).packed()));
            }
        }
    }
    out
}

proptest! {
    /// Every observation lands in exactly the bucket its shard routing
    /// names — no leaks across shards.
    #[test]
    fn observations_land_on_exactly_one_shard(
        raw in proptest::collection::vec(
            (0u64..48, proptest::collection::vec(0u32..40, 0..6),
             proptest::collection::vec(0u32..20, 0..3)),
            0..60,
        ),
        shards in 1usize..9,
        use_entities in 0u32..2,
    ) {
        let docs = build_docs(&raw);
        let spec =
            PartitionSpec::with_static_shards(TickSpec::hourly(), use_entities == 1, shards);
        let table = spec.routing.snapshot();
        let batch = partition_docs(&docs, &spec);
        prop_assert_eq!(batch.shard_count(), shards);
        prop_assert_eq!(batch.routing_epoch, table.epoch());
        for (shard, bucket) in batch.buckets().iter().enumerate() {
            for &(_, packed) in bucket {
                prop_assert_eq!(table.route(packed), shard);
            }
        }
    }

    /// The union of all buckets is the sequential observation stream —
    /// nothing lost, nothing invented, multiplicities preserved — and each
    /// bucket preserves the sequential order of its own observations.
    #[test]
    fn bucket_union_equals_sequential_stream(
        raw in proptest::collection::vec(
            (0u64..24, proptest::collection::vec(0u32..30, 0..6),
             proptest::collection::vec(0u32..10, 0..3)),
            0..60,
        ),
        shards in 1usize..9,
    ) {
        let docs = build_docs(&raw);
        let spec = PartitionSpec::with_static_shards(TickSpec::hourly(), true, shards);
        let table = spec.routing.snapshot();
        let batch = partition_docs(&docs, &spec);
        let reference = sequential_observations(&docs, &spec);
        prop_assert_eq!(batch.observations, reference.len());
        prop_assert_eq!(batch.docs, docs.len());

        // Multiset equality of the union.
        let mut merged: Vec<(Tick, u64)> =
            batch.buckets().iter().flat_map(|b| b.iter().copied()).collect();
        let mut sorted_reference = reference.clone();
        merged.sort_unstable();
        sorted_reference.sort_unstable();
        prop_assert_eq!(merged, sorted_reference);

        // Order within each bucket = the sequential subsequence routed to
        // that shard (what makes parallel application order-identical).
        for (shard, bucket) in batch.buckets().iter().enumerate() {
            let expected: Vec<(Tick, u64)> = reference
                .iter()
                .copied()
                .filter(|&(_, packed)| table.route(packed) == shard)
                .collect();
            prop_assert_eq!(bucket.clone(), expected);
        }
    }
}
