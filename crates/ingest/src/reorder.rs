//! Bounded event-time reordering: the watermark buffer.
//!
//! Real web 2.0 traffic is late: a document *published* (event time,
//! [`Document::timestamp`]) in tick `T` may *arrive* (stream position)
//! while the feed is already deep into tick `T+k`. The tick semantics of
//! `enblogue_core::stages` require a timestamp-sorted feed, so something
//! has to re-sequence arrivals — that is this buffer.
//!
//! # Watermark contract
//!
//! The buffer is **arrival-driven**: it holds documents per event tick
//! and tracks the maximum event tick seen so far (`max_tick_seen`). The
//! *low watermark* is
//!
//! ```text
//! watermark = max_tick_seen − bounded_lateness
//! ```
//!
//! and every tick **strictly below** the watermark is sealed: its
//! documents drain out in event-tick order (arrival order preserved
//! within a tick) and the tick may close downstream. Equivalently, a
//! document is accepted iff its lateness — `max_tick_seen` at arrival
//! minus its own event tick — is at most `bounded_lateness`; anything
//! later targets an already-sealed tick and is dropped (counted in
//! [`ReorderBuffer::late_dropped`], surfaced as telemetry + journal
//! events by the consumer).
//!
//! Three properties make this a safe default in the parity-pinned
//! pipeline:
//!
//! * **Pure function of the arrival stream.** No wall clock anywhere:
//!   sealing advances only when arrivals advance `max_tick_seen`, so the
//!   same arrival sequence always produces the same emission sequence and
//!   the same drops — replays are deterministic, and the serial and
//!   batched ingest paths agree byte-for-byte.
//! * **Invisible on clean input.** For an already-sorted stream the
//!   emission order equals the arrival order and nothing is ever late,
//!   so downstream state is byte-identical to feeding directly
//!   (pinned in `tests/stage_parity.rs`).
//! * **Exactly resumable.** [`ReorderBuffer::to_snapshot`] captures the
//!   complete state — pending documents included — and `arrivals` is the
//!   cursor into the arrival stream, so crash recovery replays the tail
//!   from that index and continues bit-exactly
//!   (`enblogue_core::snapshot`).
//!
//! Memory is bounded twice: sealing caps the *tick span* held at
//! `bounded_lateness + 1` open ticks, and `max_buffered_docs` caps the
//! document count outright (a stalled watermark — e.g. a source that
//! stops advancing event time — cannot grow the buffer without bound;
//! excess arrivals drop into [`ReorderBuffer::overflow_dropped`]).

use enblogue_types::{Document, Tick, TickSpec};
use std::collections::BTreeMap;

/// What [`ReorderBuffer::push`] did with a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted and held until its tick seals.
    Buffered,
    /// Event tick already sealed (lateness beyond the bound) — dropped.
    Late,
    /// `max_buffered_docs` reached — dropped without advancing the
    /// watermark.
    Overflow,
}

/// Complete serializable state of a [`ReorderBuffer`] (see
/// `enblogue_core::snapshot` for the on-disk codec).
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderSnapshot {
    /// Arrival-stream cursor: total documents ever pushed.
    pub arrivals: u64,
    /// Documents dropped as beyond the lateness bound.
    pub late_dropped: u64,
    /// Documents dropped by the `max_buffered_docs` cap.
    pub overflow_dropped: u64,
    /// Highest event tick observed.
    pub max_tick_seen: Option<Tick>,
    /// Highest tick already sealed (emitted or skipped while empty).
    pub emitted_through: Option<Tick>,
    /// Buffered documents per open tick, ascending.
    pub pending: Vec<(Tick, Vec<Document>)>,
}

/// The bounded event-time reordering buffer (module docs have the
/// watermark contract).
#[derive(Debug)]
pub struct ReorderBuffer {
    tick_spec: TickSpec,
    bounded_lateness: u64,
    max_buffered_docs: usize,
    /// Open ticks → documents in arrival order. `BTreeMap` so draining
    /// walks ticks ascending deterministically.
    pending: BTreeMap<u64, Vec<Document>>,
    buffered: usize,
    max_tick_seen: Option<Tick>,
    emitted_through: Option<Tick>,
    arrivals: u64,
    late_dropped: u64,
    overflow_dropped: u64,
}

impl ReorderBuffer {
    /// An empty buffer. `bounded_lateness` is in ticks; `max_buffered_docs`
    /// must be non-zero (validated by `EventTimeConfig`).
    pub fn new(tick_spec: TickSpec, bounded_lateness: u64, max_buffered_docs: usize) -> Self {
        ReorderBuffer {
            tick_spec,
            bounded_lateness,
            max_buffered_docs,
            pending: BTreeMap::new(),
            buffered: 0,
            max_tick_seen: None,
            emitted_through: None,
            arrivals: 0,
            late_dropped: 0,
            overflow_dropped: 0,
        }
    }

    /// Offers one arrival. On [`PushOutcome::Buffered`] the document is
    /// held until [`drain_ready`](Self::drain_ready) (or
    /// [`flush`](Self::flush)) releases its tick.
    pub fn push(&mut self, doc: Document) -> PushOutcome {
        self.arrivals += 1;
        let tick = self.tick_spec.tick_of(doc.timestamp);
        if self.emitted_through.is_some_and(|sealed| tick <= sealed) {
            self.late_dropped += 1;
            return PushOutcome::Late;
        }
        if self.buffered >= self.max_buffered_docs {
            self.overflow_dropped += 1;
            return PushOutcome::Overflow;
        }
        if self.max_tick_seen.is_none_or(|max| tick > max) {
            self.max_tick_seen = Some(tick);
        }
        self.pending.entry(tick.0).or_default().push(doc);
        self.buffered += 1;
        PushOutcome::Buffered
    }

    /// Appends to `out` every document whose tick the watermark has
    /// sealed, in event-tick order (arrival order within a tick), and
    /// advances `emitted_through` — across *empty* sealed ticks too, so a
    /// late arrival for a tick nothing was buffered in still drops
    /// deterministically.
    pub fn drain_ready(&mut self, out: &mut Vec<Document>) {
        let Some(max) = self.max_tick_seen else { return };
        // Ticks strictly below the watermark (max − lateness) are sealed.
        let Some(seal) = max.0.checked_sub(self.bounded_lateness + 1) else { return };
        if self.emitted_through.is_some_and(|done| done.0 >= seal) {
            return;
        }
        self.emit_through(seal, out);
    }

    /// End of stream: releases everything still pending (in tick order)
    /// and seals through `max_tick_seen`. Further pushes for old ticks
    /// count as late.
    pub fn flush(&mut self, out: &mut Vec<Document>) {
        if let Some(max) = self.max_tick_seen {
            self.emit_through(max.0, out);
        }
    }

    fn emit_through(&mut self, seal: u64, out: &mut Vec<Document>) {
        while let Some(entry) = self.pending.first_entry() {
            if *entry.key() > seal {
                break;
            }
            let docs = entry.remove();
            self.buffered -= docs.len();
            out.extend(docs);
        }
        if self.emitted_through.is_none_or(|done| done.0 < seal) {
            self.emitted_through = Some(Tick(seal));
        }
    }

    /// The low watermark (`max_tick_seen − bounded_lateness`, floored at
    /// tick 0); ticks strictly below it are sealed. `None` until the
    /// first accepted document.
    pub fn watermark(&self) -> Option<Tick> {
        self.max_tick_seen.map(|max| Tick(max.0.saturating_sub(self.bounded_lateness)))
    }

    /// The highest tick ever emitted (drained or flushed), advancing
    /// across empty sealed ticks. `None` until something was sealed.
    /// Every tick at or below it is complete: all of its surviving
    /// documents have been released downstream.
    pub fn emitted_through(&self) -> Option<Tick> {
        self.emitted_through
    }

    /// Arrival-stream cursor: documents ever offered (accepted or not).
    /// Crash recovery replays the arrival stream from this index.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Documents dropped as beyond the lateness bound.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Documents dropped by the `max_buffered_docs` cap.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped
    }

    /// Documents currently held.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Captures the complete state for checkpointing.
    pub fn to_snapshot(&self) -> ReorderSnapshot {
        ReorderSnapshot {
            arrivals: self.arrivals,
            late_dropped: self.late_dropped,
            overflow_dropped: self.overflow_dropped,
            max_tick_seen: self.max_tick_seen,
            emitted_through: self.emitted_through,
            pending: self.pending.iter().map(|(&tick, docs)| (Tick(tick), docs.clone())).collect(),
        }
    }

    /// Rebuilds a buffer from a checkpointed state (inverse of
    /// [`to_snapshot`](Self::to_snapshot); the config knobs come from the
    /// fingerprint-checked engine config, not the snapshot).
    pub fn from_snapshot(
        tick_spec: TickSpec,
        bounded_lateness: u64,
        max_buffered_docs: usize,
        snapshot: ReorderSnapshot,
    ) -> Self {
        let mut pending = BTreeMap::new();
        let mut buffered = 0;
        for (tick, docs) in snapshot.pending {
            buffered += docs.len();
            pending.insert(tick.0, docs);
        }
        ReorderBuffer {
            tick_spec,
            bounded_lateness,
            max_buffered_docs,
            pending,
            buffered,
            max_tick_seen: snapshot.max_tick_seen,
            emitted_through: snapshot.emitted_through,
            arrivals: snapshot.arrivals,
            late_dropped: snapshot.late_dropped,
            overflow_dropped: snapshot.overflow_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn doc(id: u64, hour: u64) -> Document {
        Document::builder(id, Timestamp::from_secs(hour * 3600)).build()
    }

    #[test]
    fn in_order_stream_passes_through_unchanged() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 2, 1000);
        let mut emitted = Vec::new();
        for (id, hour) in [(1, 0), (2, 0), (3, 1), (4, 2), (5, 3), (6, 4)] {
            assert_eq!(buffer.push(doc(id, hour)), PushOutcome::Buffered);
            buffer.drain_ready(&mut emitted);
        }
        buffer.flush(&mut emitted);
        let ids: Vec<u64> = emitted.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(buffer.late_dropped(), 0);
        assert_eq!(buffer.overflow_dropped(), 0);
        assert_eq!(buffer.buffered(), 0);
    }

    #[test]
    fn late_within_bound_resequences_into_true_tick() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 2, 1000);
        let mut emitted = Vec::new();
        // Arrivals: tick 0, 1, 2, then a straggler for tick 1 (lateness
        // 1 ≤ 2), then tick 4 which seals ticks 0 and 1.
        for (id, hour) in [(1, 0), (2, 1), (3, 2), (4, 1), (5, 4)] {
            assert_eq!(buffer.push(doc(id, hour)), PushOutcome::Buffered);
            buffer.drain_ready(&mut emitted);
        }
        // watermark = 4 − 2 = 2 → ticks 0 and 1 sealed.
        let ids: Vec<u64> = emitted.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(buffer.watermark(), Some(Tick(2)));
        buffer.flush(&mut emitted);
        let ids: Vec<u64> = emitted.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![1, 2, 4, 3, 5]);
    }

    #[test]
    fn beyond_bound_drops_and_counts() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 1, 1000);
        let mut emitted = Vec::new();
        buffer.push(doc(1, 0));
        buffer.push(doc(2, 5)); // watermark 4: ticks ≤ 3 sealed
        buffer.drain_ready(&mut emitted);
        assert_eq!(buffer.push(doc(3, 2)), PushOutcome::Late);
        assert_eq!(buffer.push(doc(4, 3)), PushOutcome::Late);
        assert_eq!(buffer.push(doc(5, 4)), PushOutcome::Buffered);
        assert_eq!(buffer.late_dropped(), 2);
        assert_eq!(buffer.arrivals(), 5);
    }

    #[test]
    fn empty_sealed_ticks_still_advance_the_seal() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 0, 1000);
        let mut emitted = Vec::new();
        buffer.push(doc(1, 0));
        buffer.push(doc(2, 10)); // seals ticks ≤ 9, all empty but 0
        buffer.drain_ready(&mut emitted);
        assert_eq!(emitted.len(), 1);
        // A late arrival for empty-but-sealed tick 5 drops.
        assert_eq!(buffer.push(doc(3, 5)), PushOutcome::Late);
    }

    #[test]
    fn overflow_cap_bounds_memory() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 100, 3);
        for id in 0..5 {
            buffer.push(doc(id, id));
        }
        assert_eq!(buffer.buffered(), 3);
        assert_eq!(buffer.overflow_dropped(), 2);
    }

    #[test]
    fn snapshot_round_trips_mid_stream() {
        let mut buffer = ReorderBuffer::new(TickSpec::hourly(), 2, 1000);
        let mut emitted = Vec::new();
        for (id, hour) in [(1, 0), (2, 3), (3, 1), (4, 4)] {
            buffer.push(doc(id, hour));
            buffer.drain_ready(&mut emitted);
        }
        let snap = buffer.to_snapshot();
        let mut restored = ReorderBuffer::from_snapshot(TickSpec::hourly(), 2, 1000, snap.clone());
        assert_eq!(restored.to_snapshot(), snap);
        // Continuations agree.
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        buffer.push(doc(5, 6));
        restored.push(doc(5, 6));
        buffer.drain_ready(&mut out_a);
        restored.drain_ready(&mut out_b);
        buffer.flush(&mut out_a);
        restored.flush(&mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(buffer.to_snapshot(), restored.to_snapshot());
    }
}
