//! # enblogue-ingest — shard-partitioned parallel ingestion
//!
//! The feed path of EnBlogue: documents arrive in batches, each batch is
//! tokenized into `(tick, packed pair)` co-occurrence observations exactly
//! once, the observations are bucketed by pair shard (a snapshot of the
//! consuming registry's versioned [`enblogue_types::RoutingTable`]), and
//! the buckets are applied to the sharded pair state with one worker per
//! shard. The subsystem has two layers:
//!
//! * [`partition`] — the pure pre-pass: [`partition::partition_docs`]
//!   turns a document slice into a [`partition::PartitionedBatch`] under a
//!   [`partition::PartitionSpec`]. No locks, no threads, no own state
//!   (routing is snapshotted per call and the batch records its epoch, so
//!   a consumer can detect batches bucketed before a shard rebalance);
//!   the per-shard observation order is exactly the order a sequential
//!   feeder would have produced, which is what makes downstream
//!   application order-identical.
//! * [`pipeline`] — the driver: an [`pipeline::IngestPipeline`] splits a
//!   replay into per-tick batches (never spanning a boundary), pushes them
//!   through a bounded work queue to a partitioning worker pool
//!   (backpressure: feeding stalls when the queue is full, counted in
//!   [`pipeline::IngestStats`]), and re-sequences results so the consumer
//!   — any [`pipeline::IngestSink`] — applies batches and tick closes in
//!   deterministic submission order.
//!
//! Two event-time robustness primitives sit in front of that feed path
//! (both pure functions of the document stream, so every execution path
//! reaches byte-identical state; both exactly checkpointable):
//!
//! * [`reorder`] — the bounded watermark buffer: holds out-of-order
//!   arrivals per event tick, seals ticks `bounded_lateness` behind the
//!   maximum event tick seen, re-sequences late documents into their
//!   true tick, and drops anything beyond the bound.
//! * [`guard`] — per-source defenses: an exact-duplicate window keyed by
//!   `(source, doc)` and token-bucket flood caps, so one hostile feed
//!   degrades alone instead of hijacking the rankings.
//!
//! Parallel ingestion is a **pure execution knob**: for any batch size,
//! queue depth, worker count, shard count, or rebalance schedule, the sink observes the exact
//! sequence of applications a sequential replay would perform, so rankings
//! stay byte-identical (pinned by `tests/stage_parity.rs` in the
//! workspace root). `enblogue-core` implements [`pipeline::IngestSink`]
//! for its stage pipeline, which is how both the stand-alone engine and
//! the DAG sink inherit the subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guard;
pub mod partition;
pub mod pipeline;
pub mod reorder;

pub use guard::{GuardSnapshot, GuardVerdict, SourceGuard};
pub use partition::{partition_docs, PartitionSpec, PartitionedBatch};
pub use pipeline::{IngestConfig, IngestPipeline, IngestSink, IngestStats};
pub use reorder::{PushOutcome, ReorderBuffer, ReorderSnapshot};
