//! The bounded-queue ingestion driver: batches → worker pool →
//! re-sequenced application.
//!
//! Thread layout of one [`IngestPipeline::run`] (scoped; no thread
//! outlives the call):
//!
//! ```text
//!   feeder ──(seq, doc range)──► bounded work queue ──► N partition workers
//!     │                                                        │
//!     └─(seq, tick close)──► bounded done queue ◄──(seq, partitioned)─┘
//!                                    │
//!                        caller thread: re-sequence by seq,
//!                        apply batches / tick closes to the sink
//! ```
//!
//! * **Backpressure** — both queues are bounded; when the work queue is
//!   full the feeder stalls (counted in [`IngestStats::queue_full_stalls`],
//!   timed in [`IngestStats::stall_micros`] and the `ingest.stall.ns`
//!   telemetry histogram) until a worker frees a slot. Instead of parking
//!   on a blocking send — invisible to a profiler and prone to thundering
//!   re-polls — the feeder retries with jittered exponential backoff naps,
//!   each nap recorded in the `ingest.backoff.ns` histogram.
//! * **Determinism** — workers finish out of order, but every operation
//!   carries its submission sequence number and the caller thread applies
//!   strictly in sequence. Batches never span a tick boundary, and tick
//!   closes are ordered between the batches exactly where a sequential
//!   replay would close, so the sink cannot observe the parallelism.

use crate::partition::{partition_docs, PartitionSpec, PartitionedBatch};
use crossbeam::channel::{self, TrySendError};
use enblogue_stream::exec::default_parallelism;
use enblogue_telemetry::{duration_ns, EventKind, Telemetry};
use enblogue_types::{Document, EnBlogueError, Tick};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The consumer side of the ingestion pipeline.
///
/// `enblogue-core` implements this for its stage pipeline; tests use
/// recording mocks. All methods are called from the thread that called
/// [`IngestPipeline::run`], in deterministic submission order.
pub trait IngestSink {
    /// The partitioning parameters of the consuming engine.
    fn partition_spec(&self) -> PartitionSpec;

    /// Applies one batch (with its pre-computed shard buckets). The batch
    /// never spans a tick boundary.
    fn apply_batch(&mut self, docs: &[Document], partitioned: &PartitionedBatch);

    /// Closes every unclosed tick up to and including `tick`.
    fn close_through(&mut self, tick: Tick);
}

/// Tuning knobs of the ingestion pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestConfig {
    /// Maximum documents per batch (batches also break at tick
    /// boundaries).
    pub batch_size: usize,
    /// Capacity of the bounded work/done queues (batches in flight).
    pub queue_depth: usize,
    /// Partitioning worker threads; `0` = one per available core.
    pub workers: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { batch_size: 256, queue_depth: 8, workers: 0 }
    }
}

impl IngestConfig {
    /// Validates parameter ranges (same convention as
    /// `EnBlogueConfig::validate`: callers handling user-supplied tuning
    /// input get an error, not a crash).
    pub fn validate(&self) -> Result<(), EnBlogueError> {
        if self.batch_size == 0 {
            return Err(EnBlogueError::invalid_config(
                "batch_size",
                "ingest batches must hold at least one document",
            ));
        }
        if self.queue_depth == 0 {
            return Err(EnBlogueError::invalid_config(
                "queue_depth",
                "the ingest queue needs at least one slot",
            ));
        }
        Ok(())
    }

    /// The effective worker count (resolves `workers == 0` to the
    /// machine's available parallelism).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            default_parallelism()
        } else {
            self.workers
        }
    }
}

/// Throughput counters of one [`IngestPipeline::run`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestStats {
    /// Documents ingested.
    pub docs: u64,
    /// Batches partitioned and applied.
    pub batches: u64,
    /// Tick-close operations applied (each may close several gap ticks).
    pub tick_closes: u64,
    /// Times the feeder found the work queue full and had to stall.
    pub queue_full_stalls: u64,
    /// Total wall-clock microseconds the feeder spent blocked on a full
    /// work queue (the *duration* behind `queue_full_stalls`; individual
    /// stall latencies land in the `ingest.stall.ns` telemetry histogram
    /// when one is attached).
    pub stall_micros: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds of the run.
    pub elapsed_secs: f64,
}

impl IngestStats {
    /// Ingested documents per wall-clock second.
    pub fn docs_per_sec(&self) -> f64 {
        self.docs as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// First backoff nap when the work queue is full; each retry doubles it
/// up to [`BACKOFF_MAX_SHIFT`] doublings (20µs → ~1.3ms), so a brief
/// queue hiccup costs microseconds while a saturated queue is polled
/// gently instead of spun on.
const BACKOFF_MIN_NS: u64 = 20_000;
/// Doubling cap for the backoff nap (bounds worst-case added latency).
const BACKOFF_MAX_SHIFT: u32 = 6;

/// What the feeder schedules, in submission order.
enum PlanOp {
    /// Partition and apply `docs[range]` (one tick, ≤ batch_size docs).
    Batch(Range<usize>),
    /// Close every tick up to and including this one.
    Close(Tick),
}

/// What arrives at the applier, keyed by sequence number.
enum DoneOp {
    Batch(Range<usize>, PartitionedBatch),
    Close(Tick),
}

/// The shard-partitioned, backpressured ingestion driver.
pub struct IngestPipeline {
    config: IngestConfig,
    /// Observability hub; disabled by default (see
    /// [`IngestPipeline::attach_telemetry`]).
    telemetry: Telemetry,
}

impl IngestPipeline {
    /// A pipeline with the given tuning knobs.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (validate with
    /// [`IngestConfig::validate`] first to handle the error instead).
    pub fn new(config: IngestConfig) -> Self {
        config.validate().expect("invalid ingest configuration");
        IngestPipeline { config, telemetry: Telemetry::disabled() }
    }

    /// Wires the driver into a [`Telemetry`] hub: backpressure stalls are
    /// timed into the `ingest.stall.ns` histogram (and journaled as
    /// [`EventKind::IngestStall`] events), each backoff nap within a stall
    /// lands in `ingest.backoff.ns`, and the `ingest.queue.depth` gauge
    /// tracks batches in flight between the feeder and the applier.
    /// Handles are resolved once per [`IngestPipeline::run`]; the hot
    /// feeder/applier loops only touch relaxed atomics.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Splits `docs` into per-tick batches and the tick closes between
    /// them, in replay order. O(n) over the slice.
    fn plan(&self, docs: &[Document], spec: &PartitionSpec) -> Vec<PlanOp> {
        let mut plan = Vec::new();
        let mut i = 0;
        let mut last_tick: Option<Tick> = None;
        while i < docs.len() {
            let tick = spec.tick_spec.tick_of(docs[i].timestamp);
            if let Some(prev) = last_tick {
                assert!(tick >= prev, "ingest requires timestamp-sorted documents");
                if tick > prev {
                    // Close the finished tick and any gap ticks before the
                    // new tick's documents — exactly where a sequential
                    // replay would close them.
                    plan.push(PlanOp::Close(tick.prev()));
                }
            }
            let mut end = i + 1;
            while end < docs.len() && spec.tick_spec.tick_of(docs[end].timestamp) == tick {
                end += 1;
            }
            while i < end {
                let batch_end = (i + self.config.batch_size).min(end);
                plan.push(PlanOp::Batch(i..batch_end));
                i = batch_end;
            }
            last_tick = Some(tick);
        }
        if let Some(tick) = last_tick {
            plan.push(PlanOp::Close(tick));
        }
        plan
    }

    /// Drives `docs` through the pipeline into `sink` and reports
    /// throughput counters.
    ///
    /// The sink is only touched from the calling thread, in deterministic
    /// submission order; worker panics propagate to the caller.
    pub fn run<S: IngestSink>(&self, sink: &mut S, docs: &[Document]) -> IngestStats {
        let started = Instant::now();
        let spec = sink.partition_spec();
        let plan = self.plan(docs, &spec);
        let total = plan.len() as u64;
        let workers = self.config.effective_workers();
        let stalls = AtomicU64::new(0);
        let stall_ns_total = AtomicU64::new(0);
        // Telemetry handles resolve once here (cold); the loops below only
        // touch relaxed atomics through them — or a single branch when the
        // hub is disabled.
        let stall_hist = self.telemetry.registry().histogram("ingest.stall.ns");
        let backoff_hist = self.telemetry.registry().histogram("ingest.backoff.ns");
        let queue_depth = self.telemetry.registry().gauge("ingest.queue.depth");
        let journal = self.telemetry.journal().clone();
        let mut stats = IngestStats { docs: docs.len() as u64, workers, ..IngestStats::default() };

        let (work_tx, work_rx) = channel::bounded::<(u64, Range<usize>)>(self.config.queue_depth);
        let (done_tx, done_rx) = channel::bounded::<(u64, DoneOp)>(self.config.queue_depth);
        // The stub channel is single-consumer; workers share the receiver
        // behind a mutex (held only across the dequeue, not the work).
        let work_rx = Mutex::new(work_rx);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers + 1);
            for _ in 0..workers {
                let done_tx = done_tx.clone();
                let work_rx = &work_rx;
                let spec = &spec;
                handles.push(scope.spawn(move || loop {
                    let msg = work_rx.lock().expect("work queue poisoned").recv();
                    match msg {
                        Ok((seq, range)) => {
                            // A panic inside partitioning must not leave the
                            // feeder blocked on a queue nobody drains (and
                            // the applier waiting forever on this worker's
                            // result): drain the queue first, then re-raise
                            // so the scope join propagates the panic to the
                            // caller.
                            let partitioned =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    partition_docs(&docs[range.clone()], spec)
                                }));
                            let partitioned = match partitioned {
                                Ok(partitioned) => partitioned,
                                Err(payload) => {
                                    drop(done_tx); // applier: no result coming
                                    while work_rx
                                        .lock()
                                        .expect("work queue poisoned")
                                        .recv()
                                        .is_ok()
                                    {}
                                    std::panic::resume_unwind(payload);
                                }
                            };
                            if done_tx.send((seq, DoneOp::Batch(range, partitioned))).is_err() {
                                break; // applier gone (it hit an error path)
                            }
                        }
                        Err(_) => break, // feeder done and queue drained
                    }
                }));
            }

            let feeder_done_tx = done_tx.clone();
            let stalls = &stalls;
            let stall_ns_total = &stall_ns_total;
            let feeder_hist = stall_hist.clone();
            let feeder_backoff = backoff_hist.clone();
            let feeder_gauge = queue_depth.clone();
            let feeder_journal = journal.clone();
            handles.push(scope.spawn(move || {
                for (seq, op) in plan.into_iter().enumerate() {
                    let seq = seq as u64;
                    match op {
                        PlanOp::Batch(range) => match work_tx.try_send((seq, range)) {
                            Ok(()) => feeder_gauge.add(1),
                            Err(TrySendError::Full(item)) => {
                                stalls.fetch_add(1, Ordering::Relaxed);
                                // Timing only starts on the (already slow)
                                // blocked path — no clock reads while the
                                // queue keeps up. Retry with jittered
                                // exponential naps (xorshift seeded from
                                // the batch sequence: deterministic per
                                // slot, different across batches) so
                                // stalled feeders neither spin nor wake in
                                // lockstep; each nap is visible in the
                                // `ingest.backoff.ns` histogram.
                                let blocked = Instant::now();
                                let mut item = item;
                                let mut rng = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                                let mut attempt = 0u32;
                                let sent = loop {
                                    let base = BACKOFF_MIN_NS << attempt.min(BACKOFF_MAX_SHIFT);
                                    rng ^= rng << 13;
                                    rng ^= rng >> 7;
                                    rng ^= rng << 17;
                                    // Nap in [½·base, 1½·base).
                                    let nap = base / 2 + rng % base;
                                    let napped = Instant::now();
                                    std::thread::sleep(Duration::from_nanos(nap));
                                    feeder_backoff.record(duration_ns(napped));
                                    attempt += 1;
                                    match work_tx.try_send(item) {
                                        Ok(()) => break true,
                                        Err(TrySendError::Full(back)) => item = back,
                                        Err(TrySendError::Disconnected(_)) => break false,
                                    }
                                };
                                if !sent {
                                    break;
                                }
                                let ns = duration_ns(blocked);
                                stall_ns_total.fetch_add(ns, Ordering::Relaxed);
                                feeder_hist.record(ns);
                                feeder_journal.record(EventKind::IngestStall, seq, ns / 1_000, 0);
                                feeder_gauge.add(1);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        },
                        PlanOp::Close(tick) => {
                            if feeder_done_tx.send((seq, DoneOp::Close(tick))).is_err() {
                                break;
                            }
                        }
                    }
                }
                // Dropping work_tx here lets the workers drain and exit.
            }));
            drop(done_tx);

            // The applier: re-sequence by submission order. Out-of-order
            // completions wait in the map; the sink only ever sees the
            // sequential schedule.
            let mut pending: BTreeMap<u64, DoneOp> = BTreeMap::new();
            let mut next = 0u64;
            while next < total {
                let Ok((seq, op)) = done_rx.recv() else {
                    break; // producer thread died; scope join will re-panic
                };
                pending.insert(seq, op);
                while let Some(op) = pending.remove(&next) {
                    match op {
                        DoneOp::Batch(range, partitioned) => {
                            sink.apply_batch(&docs[range], &partitioned);
                            stats.batches += 1;
                            queue_depth.add(-1);
                        }
                        DoneOp::Close(tick) => {
                            sink.close_through(tick);
                            stats.tick_closes += 1;
                        }
                    }
                    next += 1;
                }
            }
            // Explicit joins so a worker's original panic payload reaches
            // the caller (the scope's implicit join would wrap it in a
            // generic "a scoped thread panicked").
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        stats.queue_full_stalls = stalls.load(Ordering::Relaxed);
        stats.stall_micros = stall_ns_total.load(Ordering::Relaxed) / 1_000;
        stats.elapsed_secs = started.elapsed().as_secs_f64();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{TagId, TickSpec, Timestamp};

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    /// Records the exact operation sequence the pipeline applies.
    struct RecordingSink {
        spec: PartitionSpec,
        ops: Vec<String>,
        observations: usize,
    }

    impl RecordingSink {
        fn new(shards: usize) -> Self {
            RecordingSink {
                spec: PartitionSpec::with_static_shards(TickSpec::hourly(), true, shards),
                ops: Vec::new(),
                observations: 0,
            }
        }
    }

    impl IngestSink for RecordingSink {
        fn partition_spec(&self) -> PartitionSpec {
            self.spec.clone()
        }

        fn apply_batch(&mut self, docs: &[Document], partitioned: &PartitionedBatch) {
            assert_eq!(partitioned.docs, docs.len());
            assert_eq!(partitioned.shard_count(), self.spec.shards());
            self.observations += partitioned.observations;
            let ids: Vec<String> = docs.iter().map(|d| d.id.to_string()).collect();
            self.ops.push(format!("apply[{}]", ids.join(",")));
        }

        fn close_through(&mut self, tick: Tick) {
            self.ops.push(format!("close({})", tick.0));
        }
    }

    fn workload() -> Vec<Document> {
        vec![
            doc(1, 0, &[1, 2]),
            doc(2, 0, &[2, 3]),
            doc(3, 0, &[1, 3]),
            doc(4, 2, &[1, 2]), // gap: tick 1 has no docs
            doc(5, 2, &[4, 5]),
        ]
    }

    #[test]
    fn schedule_is_sequential_replay_order() {
        let mut sink = RecordingSink::new(4);
        let config = IngestConfig { batch_size: 2, queue_depth: 2, workers: 2 };
        let stats = IngestPipeline::new(config).run(&mut sink, &workload());
        assert_eq!(
            sink.ops,
            vec!["apply[1,2]", "apply[3]", "close(1)", "apply[4,5]", "close(2)"],
            "batches split at size and tick boundaries; closes cover gaps"
        );
        assert_eq!(stats.docs, 5);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.tick_closes, 2);
        assert_eq!(stats.workers, 2);
        assert!(sink.observations > 0);
    }

    #[test]
    fn schedule_is_invariant_under_workers_and_queue_depth() {
        let docs: Vec<Document> =
            (0..200).map(|i| doc(i, i / 37, &[(i % 11) as u32, (i % 5) as u32 + 20])).collect();
        let reference = {
            let mut sink = RecordingSink::new(1);
            IngestPipeline::new(IngestConfig { batch_size: 16, queue_depth: 1, workers: 1 })
                .run(&mut sink, &docs);
            sink.ops
        };
        for workers in [2usize, 4, 8] {
            for queue_depth in [1usize, 4] {
                let mut sink = RecordingSink::new(1);
                IngestPipeline::new(IngestConfig { batch_size: 16, queue_depth, workers })
                    .run(&mut sink, &docs);
                assert_eq!(sink.ops, reference, "workers={workers} depth={queue_depth}");
            }
        }
    }

    #[test]
    fn batch_size_one_degenerates_to_per_doc() {
        let mut sink = RecordingSink::new(2);
        let config = IngestConfig { batch_size: 1, queue_depth: 4, workers: 3 };
        let stats = IngestPipeline::new(config).run(&mut sink, &workload());
        assert_eq!(stats.batches, 5, "one batch per document");
        assert_eq!(sink.ops[0], "apply[1]");
        assert_eq!(*sink.ops.last().unwrap(), "close(2)");
    }

    #[test]
    fn empty_replay_is_a_no_op() {
        let mut sink = RecordingSink::new(2);
        let stats = IngestPipeline::new(IngestConfig::default()).run(&mut sink, &[]);
        assert!(sink.ops.is_empty());
        assert_eq!(stats.docs, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.tick_closes, 0);
    }

    #[test]
    fn tiny_queue_counts_stalls_but_stays_correct() {
        let docs: Vec<Document> = (0..500).map(|i| doc(i, 0, &[1, 2, 3])).collect();
        let mut sink = RecordingSink::new(4);
        let config = IngestConfig { batch_size: 1, queue_depth: 1, workers: 1 };
        let telemetry = Telemetry::new(64);
        let mut pipeline = IngestPipeline::new(config);
        pipeline.attach_telemetry(&telemetry);
        let stats = pipeline.run(&mut sink, &docs);
        assert_eq!(stats.batches, 500);
        // Not asserting a stall count (timing-dependent) — only that the
        // counters are wired and the run completed despite the 1-slot
        // queue: every stall leaves one histogram sample, and no stalls
        // means no stall time.
        assert_eq!(sink.ops.len(), 501);
        let hist = telemetry.registry().histogram("ingest.stall.ns");
        assert_eq!(hist.count(), stats.queue_full_stalls);
        // Every stall episode naps at least once before its first retry.
        let backoff = telemetry.registry().histogram("ingest.backoff.ns");
        assert!(backoff.count() >= stats.queue_full_stalls);
        if stats.queue_full_stalls == 0 {
            assert_eq!(stats.stall_micros, 0);
        }
        // In-flight gauge drains back to zero once every batch is applied.
        assert_eq!(telemetry.registry().gauge("ingest.queue.depth").value(), 0);
    }

    #[test]
    fn workers_zero_resolves_to_available_parallelism() {
        let config = IngestConfig { workers: 0, ..IngestConfig::default() };
        assert!(config.effective_workers() >= 1);
        let mut sink = RecordingSink::new(2);
        let stats = IngestPipeline::new(config).run(&mut sink, &workload());
        assert_eq!(stats.workers, default_parallelism());
    }

    #[test]
    #[should_panic(expected = "two distinct tags")]
    fn worker_panics_propagate_instead_of_hanging() {
        // A document with a duplicated tag (fields mutated behind the
        // builder's normalization) makes `partition_docs` panic inside a
        // worker. The run must propagate that panic — with the feeder and
        // applier unwound cleanly — not deadlock on the full work queue.
        let mut docs: Vec<Document> = (0..100).map(|i| doc(i, 0, &[1, 2])).collect();
        docs[70].tags = vec![TagId(3), TagId(3)];
        let mut sink = RecordingSink::new(2);
        let config = IngestConfig { batch_size: 1, queue_depth: 1, workers: 1 };
        IngestPipeline::new(config).run(&mut sink, &docs);
    }

    #[test]
    #[should_panic(expected = "timestamp-sorted")]
    fn unsorted_docs_are_rejected() {
        let docs = vec![doc(1, 5, &[1, 2]), doc(2, 3, &[1, 2])];
        let mut sink = RecordingSink::new(2);
        IngestPipeline::new(IngestConfig::default()).run(&mut sink, &docs);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_batch = IngestConfig { batch_size: 0, ..IngestConfig::default() };
        assert!(bad_batch.validate().unwrap_err().to_string().contains("batch_size"));
        let bad_queue = IngestConfig { queue_depth: 0, ..IngestConfig::default() };
        assert!(bad_queue.validate().unwrap_err().to_string().contains("queue_depth"));
        assert!(IngestConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid ingest configuration")]
    fn pipeline_constructor_rejects_invalid_configs() {
        let _ = IngestPipeline::new(IngestConfig { batch_size: 0, ..IngestConfig::default() });
    }

    #[test]
    fn stats_report_throughput() {
        let stats = IngestStats { docs: 1000, elapsed_secs: 0.5, ..IngestStats::default() };
        assert!((stats.docs_per_sec() - 2000.0).abs() < 1e-9);
    }
}
