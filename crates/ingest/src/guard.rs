//! Source guards: dedup window + per-source token-bucket flood caps.
//!
//! EnBlogue's shift scores react to *correlation changes*, which makes
//! them a target: one feed replaying the same document, or spraying a
//! fixed tag pair at high rate, can manufacture an "emergent topic" and
//! hijack the ranking (the link-anomaly and incremental-ML literature in
//! PAPERS.md motivates exactly these detector-level defenses). The
//! [`SourceGuard`] sits between the (re-ordered, tick-monotonic) document
//! stream and the seed/pair stages and applies two checks per document,
//! in order:
//!
//! 1. **Dedup window** — an exact-duplicate observation, keyed by
//!    `(source, doc id)`, is rejected if the same key was *admitted*
//!    within the last `dedup_window_ticks` ticks. Only admitted
//!    documents are recorded, so a rejected document never extends its
//!    own window. A width of `0` disables the check.
//! 2. **Token-bucket rate cap** — each source holds a bucket of
//!    `rate_burst` tokens refilled at `rate_limit_per_tick` tokens per
//!    event tick (derived from document timestamps, *not* wall clock);
//!    each admitted document spends one token. A flooding source runs
//!    dry and its excess documents drop — it degrades alone instead of
//!    starving everyone. A limit of `0` disables the check. Duplicates
//!    are rejected *before* metering, so a replay attack cannot drain
//!    its own source's budget and then claim the drops were the cap.
//!
//! Like the reorder buffer, the guard is a **pure function of the
//! admitted document sequence**: refill and expiry advance on event
//! ticks carried by the stream itself, never on wall-clock time or close
//! scheduling. That is what lets the serial replay path and the batched
//! `IngestPipeline` path reach byte-identical guard state (pinned in
//! `tests/stage_parity.rs`), and what makes
//! [`SourceGuard::to_snapshot`] an exact checkpoint.

use enblogue_types::{DocId, FxHashMap, SourceId, Tick};

/// Verdict of [`SourceGuard::admit`] for one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Passed both checks; feed it to the stages.
    Admitted,
    /// Exact duplicate of an admitted `(source, doc)` within the window.
    Duplicate,
    /// The source's token bucket is dry.
    RateCapped,
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_refill: u64,
}

/// Complete serializable state of a [`SourceGuard`] (see
/// `enblogue_core::snapshot` for the on-disk codec). Map contents are
/// sorted by key so equal states produce equal bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardSnapshot {
    /// Documents that passed both checks.
    pub admitted: u64,
    /// Documents rejected by the dedup window.
    pub deduped: u64,
    /// Documents rejected by the rate cap.
    pub rate_capped: u64,
    /// Event tick of the most recent document offered.
    pub current_tick: Option<Tick>,
    /// Admitted `(source, doc)` keys with their admission tick, sorted.
    pub dedup: Vec<(SourceId, DocId, Tick)>,
    /// Per-source buckets, sorted: `(source, tokens, last_refill_tick)`.
    /// Tokens restore bit-for-bit (the checkpoint codec writes the IEEE
    /// bit pattern).
    pub buckets: Vec<(SourceId, f64, Tick)>,
}

/// The per-source ingestion guard (module docs have the contract).
///
/// `admit` expects a tick-monotonic stream — exactly what the reorder
/// buffer emits and what a sorted replay already is. A document whose
/// tick lies *below* the guard's current tick (a late arrival the
/// pipeline folds into its open tick when no reorder buffer runs) is
/// metered at the current tick instead — mirroring where its
/// observations land — so guard time never moves backwards.
#[derive(Debug)]
pub struct SourceGuard {
    dedup_window_ticks: u64,
    rate_limit_per_tick: f64,
    rate_burst: f64,
    /// `(source, doc)` → tick the key was last *admitted* at.
    dedup: FxHashMap<(SourceId, DocId), u64>,
    buckets: FxHashMap<SourceId, TokenBucket>,
    current_tick: Option<u64>,
    admitted: u64,
    deduped: u64,
    rate_capped: u64,
}

impl SourceGuard {
    /// A fresh guard. `dedup_window_ticks == 0` disables dedup;
    /// `rate_limit_per_tick == 0.0` disables the cap. `rate_burst` is the
    /// bucket capacity new sources start with (config resolution
    /// guarantees it is ≥ the per-tick limit when the cap is on).
    pub fn new(dedup_window_ticks: u64, rate_limit_per_tick: f64, rate_burst: f64) -> Self {
        SourceGuard {
            dedup_window_ticks,
            rate_limit_per_tick,
            rate_burst,
            dedup: FxHashMap::default(),
            buckets: FxHashMap::default(),
            current_tick: None,
            admitted: 0,
            deduped: 0,
            rate_capped: 0,
        }
    }

    /// Judges one document of a (nominally tick-monotonic) stream. A
    /// tick below the current one is clamped to it — see the type docs.
    pub fn admit(&mut self, source: SourceId, doc: DocId, tick: Tick) -> GuardVerdict {
        let tick = self.current_tick.map_or(tick.0, |current| tick.0.max(current));
        if self.current_tick != Some(tick) {
            self.expire(tick);
            self.current_tick = Some(tick);
        }

        let key = (source, doc);
        if self.dedup_window_ticks > 0 {
            if let Some(&seen) = self.dedup.get(&key) {
                if tick - seen < self.dedup_window_ticks {
                    self.deduped += 1;
                    return GuardVerdict::Duplicate;
                }
            }
        }

        if self.rate_limit_per_tick > 0.0 {
            let bucket = self
                .buckets
                .entry(source)
                .or_insert(TokenBucket { tokens: self.rate_burst, last_refill: tick });
            let elapsed = (tick - bucket.last_refill) as f64;
            bucket.tokens = self.rate_burst.min(bucket.tokens + elapsed * self.rate_limit_per_tick);
            bucket.last_refill = tick;
            if bucket.tokens < 1.0 {
                self.rate_capped += 1;
                return GuardVerdict::RateCapped;
            }
            bucket.tokens -= 1.0;
        }

        if self.dedup_window_ticks > 0 {
            self.dedup.insert(key, tick);
        }
        self.admitted += 1;
        GuardVerdict::Admitted
    }

    /// Drops dedup entries whose window has fully elapsed (bounds memory
    /// to the documents admitted within the window).
    fn expire(&mut self, tick: u64) {
        if self.dedup_window_ticks == 0 || self.dedup.is_empty() {
            return;
        }
        let window = self.dedup_window_ticks;
        self.dedup.retain(|_, &mut seen| tick - seen < window);
    }

    /// Documents that passed both checks.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Documents rejected by the dedup window.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Documents rejected by the rate cap.
    pub fn rate_capped(&self) -> u64 {
        self.rate_capped
    }

    /// Captures the complete state for checkpointing (sorted, so equal
    /// states serialize to equal bytes).
    pub fn to_snapshot(&self) -> GuardSnapshot {
        let mut dedup: Vec<(SourceId, DocId, Tick)> =
            self.dedup.iter().map(|(&(s, d), &t)| (s, d, Tick(t))).collect();
        dedup.sort_unstable_by_key(|&(s, d, _)| (s, d));
        let mut buckets: Vec<(SourceId, f64, Tick)> =
            self.buckets.iter().map(|(&s, b)| (s, b.tokens, Tick(b.last_refill))).collect();
        buckets.sort_unstable_by_key(|&(s, _, _)| s);
        GuardSnapshot {
            admitted: self.admitted,
            deduped: self.deduped,
            rate_capped: self.rate_capped,
            current_tick: self.current_tick.map(Tick),
            dedup,
            buckets,
        }
    }

    /// Rebuilds a guard from a checkpointed state (inverse of
    /// [`to_snapshot`](Self::to_snapshot); the knobs come from the
    /// fingerprint-checked engine config).
    pub fn from_snapshot(
        dedup_window_ticks: u64,
        rate_limit_per_tick: f64,
        rate_burst: f64,
        snapshot: GuardSnapshot,
    ) -> Self {
        let mut guard = SourceGuard::new(dedup_window_ticks, rate_limit_per_tick, rate_burst);
        guard.admitted = snapshot.admitted;
        guard.deduped = snapshot.deduped;
        guard.rate_capped = snapshot.rate_capped;
        guard.current_tick = snapshot.current_tick.map(|t| t.0);
        for (source, doc, tick) in snapshot.dedup {
            guard.dedup.insert((source, doc), tick.0);
        }
        for (source, tokens, last_refill) in snapshot.buckets {
            guard.buckets.insert(source, TokenBucket { tokens, last_refill: last_refill.0 });
        }
        guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(s: u32) -> SourceId {
        SourceId(s)
    }

    #[test]
    fn duplicates_within_window_reject_and_expire_after() {
        let mut guard = SourceGuard::new(3, 0.0, 0.0);
        assert_eq!(guard.admit(src(1), 10, Tick(0)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 10, Tick(0)), GuardVerdict::Duplicate);
        assert_eq!(guard.admit(src(1), 10, Tick(2)), GuardVerdict::Duplicate);
        // Different source or doc id is a different key.
        assert_eq!(guard.admit(src(2), 10, Tick(2)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 11, Tick(2)), GuardVerdict::Admitted);
        // Window elapsed: tick 3 − admission tick 0 ≥ 3.
        assert_eq!(guard.admit(src(1), 10, Tick(3)), GuardVerdict::Admitted);
        assert_eq!(guard.deduped(), 2);
        assert_eq!(guard.admitted(), 4);
    }

    #[test]
    fn rejected_duplicates_do_not_extend_their_window() {
        let mut guard = SourceGuard::new(2, 0.0, 0.0);
        assert_eq!(guard.admit(src(1), 5, Tick(0)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 5, Tick(1)), GuardVerdict::Duplicate);
        // Window runs from the *admission* at tick 0, not the rejected
        // replay at tick 1.
        assert_eq!(guard.admit(src(1), 5, Tick(2)), GuardVerdict::Admitted);
    }

    #[test]
    fn rate_cap_meters_per_source() {
        let mut guard = SourceGuard::new(0, 2.0, 2.0);
        assert_eq!(guard.admit(src(1), 1, Tick(0)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 2, Tick(0)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 3, Tick(0)), GuardVerdict::RateCapped);
        // Another source has its own bucket.
        assert_eq!(guard.admit(src(2), 4, Tick(0)), GuardVerdict::Admitted);
        // One tick refills 2 tokens.
        assert_eq!(guard.admit(src(1), 5, Tick(1)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 6, Tick(1)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 7, Tick(1)), GuardVerdict::RateCapped);
        assert_eq!(guard.rate_capped(), 2);
    }

    #[test]
    fn duplicates_do_not_burn_tokens() {
        let mut guard = SourceGuard::new(5, 1.0, 1.0);
        assert_eq!(guard.admit(src(1), 1, Tick(0)), GuardVerdict::Admitted);
        // Bucket is dry, but the replay is judged a duplicate first.
        assert_eq!(guard.admit(src(1), 1, Tick(0)), GuardVerdict::Duplicate);
        assert_eq!(guard.admit(src(1), 2, Tick(0)), GuardVerdict::RateCapped);
    }

    #[test]
    fn expiry_bounds_dedup_memory() {
        let mut guard = SourceGuard::new(2, 0.0, 0.0);
        for tick in 0..50u64 {
            guard.admit(src(1), tick, Tick(tick));
        }
        // Only keys admitted within the last 2 ticks survive.
        assert!(guard.to_snapshot().dedup.len() <= 2);
    }

    #[test]
    fn ticks_below_current_clamp_to_current() {
        let mut guard = SourceGuard::new(3, 0.0, 0.0);
        assert_eq!(guard.admit(src(1), 1, Tick(5)), GuardVerdict::Admitted);
        // A late arrival is metered at the current tick (5), where the
        // pipeline folds its observations: still within key 1's window.
        assert_eq!(guard.admit(src(1), 1, Tick(2)), GuardVerdict::Duplicate);
        // A fresh late key anchors its window at the clamped tick too.
        assert_eq!(guard.admit(src(1), 2, Tick(0)), GuardVerdict::Admitted);
        assert_eq!(guard.admit(src(1), 2, Tick(7)), GuardVerdict::Duplicate);
        assert_eq!(guard.admit(src(1), 2, Tick(8)), GuardVerdict::Admitted);
    }

    #[test]
    fn snapshot_round_trips_and_continues_identically() {
        let mut guard = SourceGuard::new(4, 1.5, 3.0);
        for (s, d, t) in [(1, 1, 0), (1, 1, 0), (2, 2, 0), (1, 3, 1), (1, 4, 1), (1, 5, 1)] {
            guard.admit(src(s), d, Tick(t));
        }
        let snap = guard.to_snapshot();
        let mut restored = SourceGuard::from_snapshot(4, 1.5, 3.0, snap.clone());
        assert_eq!(restored.to_snapshot(), snap);
        for (s, d, t) in [(1, 6, 2), (2, 2, 2), (1, 1, 3), (1, 7, 9)] {
            assert_eq!(
                guard.admit(src(s), d, Tick(t)),
                restored.admit(src(s), d, Tick(t)),
                "diverged on ({s}, {d}, {t})"
            );
        }
        assert_eq!(guard.to_snapshot(), restored.to_snapshot());
    }
}
