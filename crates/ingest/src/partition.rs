//! The partitioning pre-pass: documents → shard-bucketed pair
//! observations.
//!
//! Pair counting partitions cleanly by the registry's
//! [routing table](RoutingTable): every co-occurrence `(tick, packed
//! pair)` touches exactly one shard of the pair registry. Tokenizing a
//! batch once and bucketing its observations up front is what lets the
//! application step fan out one writer per shard without any locking —
//! and because the pre-pass preserves document order within each bucket,
//! the per-shard write sequence is identical to sequential feeding.
//!
//! Routing is *versioned*: the spec carries a [`SharedRouting`] handle,
//! every [`partition_docs`] call snapshots the current epoch, and the
//! resulting batch records which epoch it was bucketed under. When a
//! rebalance lands between partitioning (on a worker thread) and
//! application (on the sink thread), the consumer detects the stale epoch
//! and re-partitions under the fresh table — see
//! `StagePipeline::process_partitioned` in `enblogue-core`.

use enblogue_types::{Document, RoutingTable, SharedRouting, TagId, TagPair, Tick, TickSpec};

/// Everything the partitioner needs to know about the consuming engine.
///
/// Mirrors the relevant slice of `EnBlogueConfig`; sinks hand it out so
/// partitioning workers can run far away from the engine state. The
/// routing handle stays live: workers see rebalances published after the
/// spec was handed out.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Stream-time discretisation (assigns each document its tick).
    pub tick_spec: TickSpec,
    /// Whether entity annotations join tags in the pair space
    /// ("tag/entity mixtures as emergent topics", §3).
    pub use_entities: bool,
    /// The consuming registry's live routing handle (pair key → shard).
    pub routing: SharedRouting,
}

impl PartitionSpec {
    /// A spec routing uniformly over `shards` static shards — the shape
    /// used by tests and sinks without a rebalancer.
    pub fn with_static_shards(tick_spec: TickSpec, use_entities: bool, shards: usize) -> Self {
        PartitionSpec { tick_spec, use_entities, routing: SharedRouting::uniform(shards) }
    }

    /// The shard-store pool size of the current routing epoch (the bucket
    /// count of batches partitioned now).
    pub fn shards(&self) -> usize {
        self.routing.snapshot().shard_count()
    }
}

/// One batch's pair observations, bucketed by pair shard.
///
/// Bucket `i` holds every `(tick, packed)` observation routed to shard
/// `i`, in document order — the exact subsequence of writes a sequential
/// feeder would have sent to that shard.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedBatch {
    buckets: Vec<Vec<(Tick, u64)>>,
    /// Documents the batch was built from.
    pub docs: usize,
    /// Total pair observations across all buckets.
    pub observations: usize,
    /// The routing epoch the batch was bucketed under. Consumers compare
    /// this against their registry's current epoch; a mismatch means a
    /// rebalance migrated shard ownership after bucketing, and the batch
    /// must be re-partitioned before application.
    pub routing_epoch: u64,
}

impl PartitionedBatch {
    /// The per-shard observation buckets (index = shard).
    pub fn buckets(&self) -> &[Vec<(Tick, u64)>] {
        &self.buckets
    }

    /// Number of shards the batch was partitioned for.
    pub fn shard_count(&self) -> usize {
        self.buckets.len()
    }
}

/// The effective annotation set of `doc` under `spec`, appended to `buf`
/// (cleared first). Tags merged with entities when the spec says so —
/// byte-for-byte the set the engine's per-document path uses.
pub fn annotations_of<'a>(
    doc: &Document,
    use_entities: bool,
    buf: &'a mut Vec<TagId>,
) -> &'a [TagId] {
    buf.clear();
    if use_entities {
        buf.extend(doc.annotations());
    } else {
        buf.extend(doc.tags.iter().copied());
    }
    buf
}

/// Calls `f` with the packed key of every unordered annotation pair, in
/// enumeration order (`i < j` over the slice).
///
/// This is *the* definition of a document's pair observations — the
/// sequential counting stage and the partitioning pre-pass both call it,
/// so the two feed paths cannot diverge on pair semantics.
///
/// # Panics
/// Panics if `annotations` contains duplicates (a pair needs two distinct
/// tags; builders deduplicate, manual mutation must `normalize`).
#[inline]
pub fn for_each_pair(annotations: &[TagId], mut f: impl FnMut(u64)) {
    for i in 0..annotations.len() {
        for j in i + 1..annotations.len() {
            f(TagPair::new(annotations[i], annotations[j]).packed());
        }
    }
}

/// Tokenizes and pairs `docs` once, bucketing every co-occurrence
/// observation by its pair shard under the spec's *current* routing
/// epoch (recorded in the returned batch).
pub fn partition_docs(docs: &[Document], spec: &PartitionSpec) -> PartitionedBatch {
    partition_docs_routed(docs, spec, &spec.routing.snapshot())
}

/// [`partition_docs`] against an explicit routing snapshot (callers that
/// already hold one avoid the handle read).
pub fn partition_docs_routed(
    docs: &[Document],
    spec: &PartitionSpec,
    table: &RoutingTable,
) -> PartitionedBatch {
    let mut buckets: Vec<Vec<(Tick, u64)>> = (0..table.shard_count()).map(|_| Vec::new()).collect();
    let mut observations = 0usize;
    let mut annotation_buf: Vec<TagId> = Vec::with_capacity(16);
    for doc in docs {
        let tick = spec.tick_spec.tick_of(doc.timestamp);
        let annotations = annotations_of(doc, spec.use_entities, &mut annotation_buf);
        for_each_pair(annotations, |packed| {
            buckets[table.route(packed)].push((tick, packed));
            observations += 1;
        });
    }
    PartitionedBatch { buckets, docs: docs.len(), observations, routing_epoch: table.epoch() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::Timestamp;

    fn doc(id: u64, hour: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::from_hours(hour))
            .tags(tags.iter().map(|&t| TagId(t)))
            .build()
    }

    fn spec(shards: usize) -> PartitionSpec {
        PartitionSpec::with_static_shards(TickSpec::hourly(), true, shards)
    }

    /// The reference observation stream: what a sequential feeder emits.
    fn sequential_observations(docs: &[Document], spec: &PartitionSpec) -> Vec<(Tick, u64)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for doc in docs {
            let tick = spec.tick_spec.tick_of(doc.timestamp);
            let annotations = annotations_of(doc, spec.use_entities, &mut buf);
            for i in 0..annotations.len() {
                for j in i + 1..annotations.len() {
                    out.push((tick, TagPair::new(annotations[i], annotations[j]).packed()));
                }
            }
        }
        out
    }

    #[test]
    fn buckets_respect_shard_routing() {
        let docs = vec![doc(1, 0, &[1, 2, 3]), doc(2, 1, &[4, 5]), doc(3, 1, &[1, 5, 9])];
        let s = spec(4);
        let table = s.routing.snapshot();
        let batch = partition_docs(&docs, &s);
        assert_eq!(batch.docs, 3);
        assert_eq!(batch.observations, 3 + 1 + 3);
        assert_eq!(batch.routing_epoch, 0, "uniform table is epoch 0");
        for (shard, bucket) in batch.buckets().iter().enumerate() {
            for &(_, packed) in bucket {
                assert_eq!(table.route(packed), shard, "observation in the wrong bucket");
            }
        }
    }

    #[test]
    fn partitioning_follows_published_rebalances() {
        // One hot document; move every slot to shard 1 and re-partition.
        let docs = vec![doc(1, 0, &[1, 2])];
        let s = spec(2);
        let before = partition_docs(&docs, &s);
        let table = s.routing.snapshot();
        s.routing.publish(table.reassigned(vec![1; table.slot_count()]));
        let after = partition_docs(&docs, &s);
        assert_eq!(after.routing_epoch, 1);
        assert_ne!(before.routing_epoch, after.routing_epoch, "stale batches are detectable");
        assert!(after.buckets()[0].is_empty());
        assert_eq!(after.buckets()[1].len(), 1, "all observations re-routed to shard 1");
    }

    #[test]
    fn union_of_buckets_equals_sequential_stream() {
        let docs = vec![doc(1, 0, &[1, 2, 3]), doc(2, 0, &[2, 3]), doc(3, 2, &[1, 2, 3, 4])];
        let s = spec(3);
        let batch = partition_docs(&docs, &s);
        let mut merged: Vec<(Tick, u64)> =
            batch.buckets().iter().flat_map(|b| b.iter().copied()).collect();
        let mut reference = sequential_observations(&docs, &s);
        merged.sort_unstable();
        reference.sort_unstable();
        assert_eq!(merged, reference);
    }

    #[test]
    fn per_shard_order_matches_sequential_subsequence() {
        let docs: Vec<Document> =
            (0..20).map(|i| doc(i, i / 5, &[(i % 7) as u32, (i % 3) as u32 + 10, 42])).collect();
        let s = spec(4);
        let table = s.routing.snapshot();
        let batch = partition_docs(&docs, &s);
        let reference = sequential_observations(&docs, &s);
        for (shard, bucket) in batch.buckets().iter().enumerate() {
            let expected: Vec<(Tick, u64)> = reference
                .iter()
                .copied()
                .filter(|&(_, packed)| table.route(packed) == shard)
                .collect();
            assert_eq!(*bucket, expected, "shard {shard} order diverged");
        }
    }

    #[test]
    fn entities_follow_the_spec() {
        let mut d = doc(1, 0, &[1]);
        d.entities.push(TagId(99));
        d.normalize();
        let with = partition_docs(std::slice::from_ref(&d), &spec(2));
        assert_eq!(with.observations, 1, "tag/entity pair counted");
        let without = partition_docs(
            std::slice::from_ref(&d),
            &PartitionSpec { use_entities: false, ..spec(2) },
        );
        assert_eq!(without.observations, 0, "entities ignored when disabled");
    }

    #[test]
    fn single_shard_collects_everything_in_order() {
        let docs = vec![doc(1, 0, &[1, 2]), doc(2, 1, &[3, 4])];
        let s = spec(1);
        let batch = partition_docs(&docs, &s);
        assert_eq!(batch.shard_count(), 1);
        assert_eq!(batch.buckets()[0], sequential_observations(&docs, &s));
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = partition_docs(&[], &spec(0));
    }
}
