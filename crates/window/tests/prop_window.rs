//! Property-based tests for sliding-window primitives and sketches.

use enblogue_types::Tick;
use enblogue_window::{
    CountMinSketch, ExponentialHistogram, RingBuffer, SlidingStats, SpaceSaving, TickSeries, TopK,
    WindowedCounter,
};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// The ring buffer behaves exactly like a capacity-bounded VecDeque.
    #[test]
    fn ring_matches_vecdeque(capacity in 1usize..16, ops in proptest::collection::vec(0i64..1000, 0..200)) {
        let mut ring = RingBuffer::new(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        for v in ops {
            let evicted = ring.push(v);
            model.push_back(v);
            let expected_evicted = if model.len() > capacity { model.pop_front() } else { None };
            prop_assert_eq!(evicted, expected_evicted);
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.iter().copied().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(ring.newest().copied(), model.back().copied());
            prop_assert_eq!(ring.oldest().copied(), model.front().copied());
        }
    }

    /// TickSeries sum always equals the sum of its values, under arbitrary
    /// tick gaps and same-tick accumulation.
    #[test]
    fn tick_series_sum_consistent(
        window in 1usize..12,
        steps in proptest::collection::vec((0u64..4, 0u32..100), 1..100),
    ) {
        let mut series = TickSeries::new(window);
        let mut tick = 0u64;
        for (gap, value) in steps {
            tick += gap; // gap 0 = same-tick accumulate
            series.record(Tick(tick), value as f64);
            let direct: f64 = series.values().sum();
            prop_assert!((series.sum() - direct).abs() < 1e-6);
            prop_assert!(series.len() <= window);
            prop_assert_eq!(series.newest_tick(), Some(Tick(tick)));
        }
    }

    /// WindowedCounter equals brute-force counting over the retained window.
    #[test]
    fn windowed_counter_matches_bruteforce(
        window in 1usize..8,
        events in proptest::collection::vec((0u64..3, 0u32..6), 1..150),
    ) {
        let mut counter: WindowedCounter<u32> = WindowedCounter::new(window);
        let mut history: Vec<(u64, u32)> = Vec::new();
        let mut tick = 0u64;
        for (gap, key) in events {
            tick += gap;
            counter.increment(Tick(tick), key);
            history.push((tick, key));
        }
        let lo = tick.saturating_sub(window as u64 - 1);
        for key in 0u32..6 {
            let expected = history.iter().filter(|&&(t, k)| k == key && t >= lo).count() as u64;
            prop_assert_eq!(counter.count(key), expected, "key {}", key);
        }
        let expected_total = history.iter().filter(|&&(t, _)| t >= lo).count() as u64;
        prop_assert_eq!(counter.total_events(), expected_total);
    }

    /// SlidingStats mean/variance match the textbook formulas on the window.
    #[test]
    fn sliding_stats_match_definition(
        capacity in 1usize..10,
        values in proptest::collection::vec(-100.0f64..100.0, 1..60),
    ) {
        let mut stats = SlidingStats::new(capacity);
        for &v in &values {
            stats.push(v);
        }
        let window: Vec<f64> = values[values.len().saturating_sub(capacity)..].to_vec();
        let n = window.len() as f64;
        let mean = window.iter().sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6);
        if window.len() >= 2 {
            let var = window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            prop_assert!((stats.variance() - var).abs() < 1e-6, "{} vs {}", stats.variance(), var);
        }
    }

    /// Count-Min never underestimates.
    #[test]
    fn cms_upper_bounds_truth(keys in proptest::collection::vec(0u32..64, 1..500)) {
        let mut cms = CountMinSketch::new(128, 4);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            cms.increment(&k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (k, &count) in &truth {
            prop_assert!(cms.estimate(k) >= count);
        }
        prop_assert_eq!(cms.total(), keys.len() as u64);
    }

    /// Space-Saving: monitored estimates upper-bound truth, and
    /// `estimate − error` lower-bounds it.
    #[test]
    fn spacesaving_bounds_truth(capacity in 1usize..16, keys in proptest::collection::vec(0u64..40, 1..400)) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            ss.increment(k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (&k, &count) in &truth {
            if let Some(est) = ss.estimate(k) {
                prop_assert!(est >= count, "estimate {} < truth {}", est, count);
                let err = ss.error(k).unwrap();
                prop_assert!(est - err <= count, "lower bound {} > truth {}", est - err, count);
            }
        }
        // Guarantee: any key with count > N/m is monitored.
        let n = keys.len() as u64;
        for (&k, &count) in &truth {
            if count > n / capacity as u64 {
                prop_assert!(ss.estimate(k).is_some(), "heavy hitter {} (count {}) evicted", k, count);
            }
        }
    }

    /// DGIM estimate is within the guaranteed relative error of the true
    /// windowed count.
    #[test]
    fn dgim_relative_error_bounded(
        window in 8u64..256,
        gaps in proptest::collection::vec(0u64..4, 1..400),
    ) {
        let mut eh = ExponentialHistogram::new(window, 2);
        let mut arrivals: Vec<u64> = Vec::new();
        let mut ts = 0u64;
        for gap in gaps {
            ts += gap;
            eh.record(ts);
            arrivals.push(ts);
        }
        let est = eh.estimate(ts);
        let cutoff = ts.saturating_sub(window);
        let truth = arrivals.iter().filter(|&&a| a >= cutoff).count() as u64;
        // DGIM with k=2: relative error ≤ 1/2 (plus 1 absolute slack for
        // the half-bucket rounding on tiny counts).
        let bound = truth / 2 + 1;
        prop_assert!(est <= truth + bound, "over: est {} truth {}", est, truth);
        prop_assert!(est + bound >= truth, "under: est {} truth {}", est, truth);
    }

    /// TopK returns exactly the k best entries, best-first, matching a full
    /// sort of the offered items.
    #[test]
    fn topk_matches_full_sort(
        k in 1usize..10,
        items in proptest::collection::vec((0u32..1000, 0.0f64..1.0), 1..80),
    ) {
        // Dedup keys: TopK semantics are per-offer; duplicate keys with
        // different scores are a caller error in the engine, so test the
        // unique-key contract.
        let mut seen = std::collections::HashSet::new();
        let items: Vec<(u32, f64)> = items.into_iter().filter(|(k, _)| seen.insert(*k)).collect();

        let mut topk = TopK::new(k);
        for &(key, score) in &items {
            topk.offer(key, score);
        }
        let got: Vec<u32> = topk.into_sorted().iter().map(|r| r.key).collect();

        let mut expected = items.clone();
        expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        expected.truncate(k);
        let expected: Vec<u32> = expected.into_iter().map(|(key, _)| key).collect();
        prop_assert_eq!(got, expected);
    }
}
