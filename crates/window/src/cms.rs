//! Count-Min sketch: approximate frequencies in sub-linear space.

use std::hash::{BuildHasher, Hash};

use enblogue_types::FxBuildHasher;

/// A Count-Min sketch over hashable keys.
///
/// One of the pluggable "sketching operators that map stream items into
/// synopses" (§4.1). Estimates are upper-biased: `estimate(k) >= true(k)`,
/// and with width `w = ⌈e/ε⌉`, depth `d = ⌈ln(1/δ)⌉`, the overestimate is
/// at most `ε·N` with probability `1 − δ` (N = total count).
///
/// Rows derive per-row hash values from one 64-bit Fx hash via the Kirsch–
/// Mitzenmacher double-hashing trick (`h_i = h1 + i·h2`), which avoids
/// hashing the key `d` times.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<u64>,
    total: u64,
    hasher: FxBuildHasher,
}

impl CountMinSketch {
    /// A sketch with explicit dimensions.
    ///
    /// # Panics
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0, "sketch width must be positive");
        assert!(depth > 0, "sketch depth must be positive");
        CountMinSketch {
            width,
            depth,
            rows: vec![0; width * depth],
            total: 0,
            hasher: FxBuildHasher::default(),
        }
    }

    /// A sketch sized for additive error `epsilon·N` with failure
    /// probability `delta`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn with_error_bounds(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    /// Sketch width (counters per row).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total count of all insertions.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn index(&self, row: usize, h1: u64, h2: u64) -> usize {
        let h = h1.wrapping_add((row as u64).wrapping_mul(h2));
        row * self.width + (h % self.width as u64) as usize
    }

    #[inline]
    fn hash_pair<K: Hash>(&self, key: &K) -> (u64, u64) {
        let h = self.hasher.hash_one(key);
        // Split into two independent-ish halves; force h2 odd so strides
        // cover the row.
        let h1 = h;
        let h2 = (h >> 32) | 1;
        (h1, h2)
    }

    /// Adds `by` occurrences of `key`.
    pub fn add<K: Hash>(&mut self, key: &K, by: u64) {
        let (h1, h2) = self.hash_pair(key);
        for row in 0..self.depth {
            let idx = self.index(row, h1, h2);
            self.rows[idx] += by;
        }
        self.total += by;
    }

    /// Records one occurrence of `key`.
    #[inline]
    pub fn increment<K: Hash>(&mut self, key: &K) {
        self.add(key, 1);
    }

    /// Upper-biased estimate of the count of `key`.
    pub fn estimate<K: Hash>(&self, key: &K) -> u64 {
        let (h1, h2) = self.hash_pair(key);
        (0..self.depth).map(|row| self.rows[self.index(row, h1, h2)]).min().unwrap_or(0)
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.rows.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// Memory footprint of the counter array in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(64, 4);
        for i in 0u32..500 {
            cms.add(&(i % 50), 1);
        }
        for key in 0u32..50 {
            assert!(cms.estimate(&key) >= 10, "key {key} underestimated");
        }
        assert_eq!(cms.total(), 500);
    }

    #[test]
    fn exact_when_sparse() {
        let mut cms = CountMinSketch::new(1024, 4);
        cms.add(&"volcano", 3);
        cms.add(&"iceland", 7);
        assert_eq!(cms.estimate(&"volcano"), 3);
        assert_eq!(cms.estimate(&"iceland"), 7);
        assert_eq!(cms.estimate(&"unrelated"), 0);
    }

    #[test]
    fn error_bound_holds_on_zipfish_load() {
        // ε = 0.01, δ = 0.01 ⇒ overestimate ≤ 0.01·N w.p. 0.99. We assert a
        // loose deterministic version on a fixed workload.
        let mut cms = CountMinSketch::with_error_bounds(0.01, 0.01);
        let mut truth = std::collections::HashMap::new();
        for i in 0u64..10_000 {
            let key = i % (1 + i % 97); // skewed repetition
            cms.increment(&key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let n = cms.total();
        let slack = (0.02 * n as f64) as u64; // double the nominal ε for determinism
        for (key, &count) in &truth {
            let est = cms.estimate(key);
            assert!(est >= count);
            assert!(est <= count + slack, "key {key}: est {est} vs true {count}");
        }
    }

    #[test]
    fn with_error_bounds_sizes_sensibly() {
        let cms = CountMinSketch::with_error_bounds(0.001, 0.01);
        assert!(cms.width() >= 2718);
        assert!(cms.depth() >= 4);
        assert!(cms.memory_bytes() >= cms.width() * cms.depth() * 8);
    }

    #[test]
    fn clear_resets() {
        let mut cms = CountMinSketch::new(16, 2);
        cms.add(&1u32, 5);
        cms.clear();
        assert_eq!(cms.estimate(&1u32), 0);
        assert_eq!(cms.total(), 0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = CountMinSketch::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn bad_epsilon_panics() {
        let _ = CountMinSketch::with_error_bounds(1.5, 0.1);
    }
}
