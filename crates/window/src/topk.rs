//! Bounded top-k ranking maintenance.

use std::collections::BinaryHeap;

/// An entry in a [`TopK`] ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked<K> {
    /// The ranked key.
    pub key: K,
    /// Its score (higher = better ranked).
    pub score: f64,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry<K> {
    key: K,
    score: f64,
}

impl<K: Ord> PartialEq for HeapEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.key == other.key
    }
}
impl<K: Ord> Eq for HeapEntry<K> {}

impl<K: Ord> Ord for HeapEntry<K> {
    /// "Greater" = worse ranked (lower score, then larger key), so that the
    /// max-heap root is the worst retained entry and ties are deterministic.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores must not be NaN")
            .then_with(|| self.key.cmp(&other.key))
    }
}
impl<K: Ord> PartialOrd for HeapEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Maintains the k highest-scored keys seen in one ranking round.
///
/// The final ranking operator of the engine: shift scores for all tracked
/// pairs are offered each tick; `into_sorted` yields the emergent-topic
/// ranking ("the topics that have bigger scores are considered more
/// emergent and ranked higher", §3(iii)).
///
/// NaN scores are rejected; ties are broken by key for determinism.
#[derive(Debug, Clone)]
pub struct TopK<K: Ord + Copy> {
    k: usize,
    heap: BinaryHeap<HeapEntry<K>>,
}

impl<K: Ord + Copy> TopK<K> {
    /// A collector keeping the `k` best entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// The configured k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entry has been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers `(key, score)`; keeps it only if it ranks in the top k.
    /// Returns `true` if the entry was retained.
    ///
    /// # Panics
    /// Panics if `score` is NaN.
    pub fn offer(&mut self, key: K, score: f64) -> bool {
        assert!(!score.is_nan(), "NaN scores are not rankable");
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { key, score });
            return true;
        }
        // Heap root = current worst of the kept entries.
        let worst = self.heap.peek().expect("heap non-empty at capacity");
        let candidate = HeapEntry { key, score };
        // `candidate < worst` in heap order means candidate ranks higher.
        if candidate < *worst {
            self.heap.pop();
            self.heap.push(candidate);
            true
        } else {
            false
        }
    }

    /// The lowest retained score (the bar to beat), if at capacity.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Consumes the collector, returning entries best-first.
    pub fn into_sorted(self) -> Vec<Ranked<K>> {
        let mut entries: Vec<HeapEntry<K>> = self.heap.into_vec();
        // In this Ord, "smaller" = better ranked, so ascending sort is
        // already best-first.
        entries.sort_unstable();
        entries.into_iter().map(|e| Ranked { key: e.key, score: e.score }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut topk: TopK<u32> = TopK::new(3);
        for (key, score) in [(1, 0.5), (2, 0.9), (3, 0.1), (4, 0.7), (5, 0.3)] {
            topk.offer(key, score);
        }
        let ranked = topk.into_sorted();
        let keys: Vec<u32> = ranked.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 4, 1]);
        assert_eq!(ranked[0].score, 0.9);
    }

    #[test]
    fn offer_reports_retention() {
        let mut topk: TopK<u32> = TopK::new(2);
        assert!(topk.offer(1, 0.1));
        assert!(topk.offer(2, 0.2));
        assert!(!topk.offer(3, 0.05), "worse than both kept entries");
        assert!(topk.offer(4, 0.15));
        let keys: Vec<u32> = topk.into_sorted().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 4]);
    }

    #[test]
    fn threshold_only_at_capacity() {
        let mut topk: TopK<u32> = TopK::new(2);
        assert_eq!(topk.threshold(), None);
        topk.offer(1, 0.4);
        assert_eq!(topk.threshold(), None);
        topk.offer(2, 0.6);
        assert_eq!(topk.threshold(), Some(0.4));
        topk.offer(3, 0.5);
        assert_eq!(topk.threshold(), Some(0.5));
    }

    #[test]
    fn ties_break_on_key_deterministically() {
        let mut a: TopK<u32> = TopK::new(2);
        a.offer(10, 0.5);
        a.offer(20, 0.5);
        a.offer(30, 0.5);
        let keys_a: Vec<u32> = a.into_sorted().iter().map(|r| r.key).collect();

        let mut b: TopK<u32> = TopK::new(2);
        b.offer(30, 0.5);
        b.offer(10, 0.5);
        b.offer(20, 0.5);
        let keys_b: Vec<u32> = b.into_sorted().iter().map(|r| r.key).collect();

        assert_eq!(keys_a, keys_b, "insertion order must not matter");
        assert_eq!(keys_a, vec![10, 20], "smaller keys win ties");
    }

    #[test]
    fn fewer_offers_than_k() {
        let mut topk: TopK<u32> = TopK::new(5);
        topk.offer(1, 1.0);
        topk.offer(2, 2.0);
        let ranked = topk.into_sorted();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].key, 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        let mut topk: TopK<u32> = TopK::new(2);
        topk.offer(1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _: TopK<u32> = TopK::new(0);
    }
}
