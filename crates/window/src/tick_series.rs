//! Tick-aligned sliding window over scalar per-tick values.

use crate::ring::RingBuffer;
use enblogue_types::Tick;

/// A sliding window of the last `W` per-tick values with O(1) sum.
///
/// `TickSeries` is gap-aware: advancing from tick 5 to tick 9 fills ticks
/// 6–8 with zeros, so series derived from sparse streams stay aligned with
/// stream time. The correlation tracker keeps one `TickSeries` per tracked
/// quantity (|D(a)|, |D(b)|, |D(a)∩D(b)|).
#[derive(Debug, Clone)]
pub struct TickSeries {
    ring: RingBuffer<f64>,
    sum: f64,
    /// The tick the *newest* slot belongs to; `None` before the first push.
    newest_tick: Option<Tick>,
}

impl TickSeries {
    /// Creates a series windowed over `window_ticks` ticks.
    ///
    /// # Panics
    /// Panics if `window_ticks == 0`.
    pub fn new(window_ticks: usize) -> Self {
        TickSeries { ring: RingBuffer::new(window_ticks), sum: 0.0, newest_tick: None }
    }

    /// The window length in ticks.
    #[inline]
    pub fn window(&self) -> usize {
        self.ring.capacity()
    }

    /// Rehydrates a series from its dehydrated parts (see
    /// [`TickSeries::values`], [`TickSeries::newest_tick`] and
    /// [`TickSeries::sum`]).
    ///
    /// `sum` is taken verbatim rather than recomputed: the live field is a
    /// running float sum shaped by past evictions, and restoring bitwise
    /// state is exactly the point of the snapshot seam.
    ///
    /// # Panics
    /// Panics if `window_ticks` is zero, more values than the window are
    /// supplied, or values exist without a newest tick.
    pub fn from_parts(
        window_ticks: usize,
        newest_tick: Option<Tick>,
        values: Vec<f64>,
        sum: f64,
    ) -> Self {
        assert!(values.len() <= window_ticks, "more values than the window holds");
        assert!(
            newest_tick.is_some() || values.is_empty(),
            "values require a newest tick to anchor them"
        );
        let mut ring = RingBuffer::new(window_ticks);
        for value in values {
            ring.push(value);
        }
        TickSeries { ring, sum, newest_tick }
    }

    /// Number of ticks currently held (≤ window).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no tick has been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records `value` as the total for `tick`.
    ///
    /// Ticks must be recorded in non-decreasing order. Recording the same
    /// tick again *adds* to its slot (partial aggregation); skipping ticks
    /// zero-fills the gap.
    ///
    /// # Panics
    /// Panics if `tick` is older than the newest recorded tick.
    pub fn record(&mut self, tick: Tick, value: f64) {
        match self.newest_tick {
            None => {
                self.push_value(value);
                self.newest_tick = Some(tick);
            }
            Some(newest) if tick == newest => {
                // Accumulate into the current slot.
                self.sum += value;
                *self.ring.newest_mut().expect("newest slot exists") += value;
            }
            Some(newest) => {
                assert!(
                    tick > newest,
                    "ticks must be recorded in non-decreasing order (got {tick} after {newest})"
                );
                let gap = tick.since(newest);
                for _ in 1..gap {
                    self.push_value(0.0);
                }
                self.push_value(value);
                self.newest_tick = Some(tick);
            }
        }
    }

    /// Advances the window to `tick` without adding any count.
    ///
    /// Equivalent to `record(tick, 0.0)` when `tick` is newer; a no-op when
    /// `tick` equals the newest recorded tick.
    pub fn advance_to(&mut self, tick: Tick) {
        match self.newest_tick {
            Some(newest) if tick <= newest => {}
            _ => self.record(tick, 0.0),
        }
    }

    fn push_value(&mut self, value: f64) {
        if let Some(evicted) = self.ring.push(value) {
            self.sum -= evicted;
        }
        self.sum += value;
    }

    /// Sum of all values in the window.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean over the ticks currently held (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.ring.is_empty() {
            0.0
        } else {
            self.sum / self.ring.len() as f64
        }
    }

    /// Mean over the *full* window length, counting missing ticks as zero.
    ///
    /// This is the "sliding-window average on the document stream" of
    /// §3(i): a tag seen once in a 24-tick window has popularity 1/24 even
    /// while the stream is young.
    #[inline]
    pub fn window_mean(&self) -> f64 {
        self.sum / self.ring.capacity() as f64
    }

    /// The newest value (0 if empty).
    #[inline]
    pub fn newest(&self) -> f64 {
        self.ring.newest().copied().unwrap_or(0.0)
    }

    /// The tick of the newest slot.
    #[inline]
    pub fn newest_tick(&self) -> Option<Tick> {
        self.newest_tick
    }

    /// Values oldest → newest.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.ring.iter().copied()
    }

    /// Collects the window into a `Vec` (oldest → newest).
    pub fn to_vec(&self) -> Vec<f64> {
        self.values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums() {
        let mut s = TickSeries::new(3);
        s.record(Tick(0), 2.0);
        s.record(Tick(1), 3.0);
        assert_eq!(s.sum(), 5.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.window_mean(), 5.0 / 3.0);
        s.record(Tick(2), 1.0);
        s.record(Tick(3), 4.0); // evicts tick 0
        assert_eq!(s.sum(), 8.0);
        assert_eq!(s.to_vec(), vec![3.0, 1.0, 4.0]);
    }

    #[test]
    fn gap_fills_with_zeros() {
        let mut s = TickSeries::new(4);
        s.record(Tick(0), 5.0);
        s.record(Tick(3), 7.0);
        assert_eq!(s.to_vec(), vec![5.0, 0.0, 0.0, 7.0]);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn gap_larger_than_window_clears_old_content() {
        let mut s = TickSeries::new(3);
        s.record(Tick(0), 9.0);
        s.record(Tick(10), 1.0);
        assert_eq!(s.to_vec(), vec![0.0, 0.0, 1.0]);
        assert_eq!(s.sum(), 1.0);
        assert_eq!(s.newest_tick(), Some(Tick(10)));
    }

    #[test]
    fn same_tick_accumulates() {
        let mut s = TickSeries::new(3);
        s.record(Tick(2), 1.0);
        s.record(Tick(2), 2.5);
        assert_eq!(s.newest(), 3.5);
        assert_eq!(s.sum(), 3.5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing order")]
    fn out_of_order_tick_panics() {
        let mut s = TickSeries::new(3);
        s.record(Tick(5), 1.0);
        s.record(Tick(4), 1.0);
    }

    #[test]
    fn advance_to_is_idempotent() {
        let mut s = TickSeries::new(3);
        s.record(Tick(1), 2.0);
        s.advance_to(Tick(1));
        s.advance_to(Tick(1));
        assert_eq!(s.sum(), 2.0);
        s.advance_to(Tick(3));
        assert_eq!(s.to_vec(), vec![2.0, 0.0, 0.0]);
        // Advancing backwards is a no-op, not a panic.
        s.advance_to(Tick(2));
        assert_eq!(s.newest_tick(), Some(Tick(3)));
    }

    #[test]
    fn eviction_keeps_sum_consistent() {
        let mut s = TickSeries::new(2);
        for t in 0..100 {
            s.record(Tick(t), t as f64);
        }
        assert_eq!(s.to_vec(), vec![98.0, 99.0]);
        assert_eq!(s.sum(), 197.0);
    }
}
