//! DGIM exponential histogram: approximate event counting over a sliding
//! time window in logarithmic space (Datar, Gionis, Indyk, Motwani 2002).

use std::collections::VecDeque;

/// One bucket: `size` events, the newest of which arrived at `newest_ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    newest_ts: u64,
    size: u64,
}

/// Approximate count of events within the trailing `window` time units,
/// using O(log²(window)) space.
///
/// A pluggable synopsis (§4.1) for counting very high-rate streams (e.g.
/// per-tag tweet arrivals) where exact per-tick maps would be too large.
/// The classic DGIM guarantee: at most `1/(2·(k/2))` relative error where
/// `k` is the max number of buckets per size; with `max_per_size = 2` the
/// estimate is within 50%, larger values tighten the bound.
#[derive(Debug, Clone)]
pub struct ExponentialHistogram {
    window: u64,
    max_per_size: usize,
    /// Buckets newest-first; sizes non-decreasing from front to back.
    buckets: VecDeque<Bucket>,
    last_ts: u64,
}

impl ExponentialHistogram {
    /// A histogram over the trailing `window` time units, allowing up to
    /// `max_per_size` buckets of each size (≥ 2; higher = more accurate).
    ///
    /// # Panics
    /// Panics if `window == 0` or `max_per_size < 2`.
    pub fn new(window: u64, max_per_size: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(max_per_size >= 2, "DGIM needs at least 2 buckets per size");
        ExponentialHistogram { window, max_per_size, buckets: VecDeque::new(), last_ts: 0 }
    }

    /// The window length in time units.
    #[inline]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Records one event at time `ts` (non-decreasing).
    ///
    /// # Panics
    /// Panics if `ts` precedes a previously recorded event.
    pub fn record(&mut self, ts: u64) {
        assert!(ts >= self.last_ts, "events must arrive in time order");
        self.last_ts = ts;
        self.expire(ts);
        self.buckets.push_front(Bucket { newest_ts: ts, size: 1 });
        self.merge();
    }

    fn expire(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(back) = self.buckets.back() {
            // A bucket is expired when its *newest* event left the window:
            // then every event it represents is outside.
            if back.newest_ts < cutoff {
                self.buckets.pop_back();
            } else {
                break;
            }
        }
    }

    #[allow(clippy::while_let_loop)] // explicit break on empty slot reads clearer here
    fn merge(&mut self) {
        // Walk from the newest end; whenever more than `max_per_size`
        // buckets share a size, merge the two oldest of that size.
        let mut i = 0usize;
        loop {
            let size = match self.buckets.get(i) {
                Some(b) => b.size,
                None => break,
            };
            let mut run_end = i;
            while run_end < self.buckets.len() && self.buckets[run_end].size == size {
                run_end += 1;
            }
            let run_len = run_end - i;
            if run_len > self.max_per_size {
                // Merge the two oldest in the run (indices run_end-2, run_end-1).
                let older = self.buckets[run_end - 1];
                let newer = self.buckets[run_end - 2];
                self.buckets[run_end - 2] = Bucket { newest_ts: newer.newest_ts, size: size * 2 };
                self.buckets.remove(run_end - 1);
                // The merged bucket may now overflow the next size; continue
                // scanning from it.
                i = run_end - 2;
                // Keep `older` for clarity of intent; its events are absorbed.
                let _ = older;
            } else {
                i = run_end;
            }
        }
    }

    /// Estimated number of events in `(now − window, now]`.
    ///
    /// Uses the standard DGIM estimator: full size of all unexpired buckets
    /// except the oldest, plus half of the oldest bucket.
    pub fn estimate(&mut self, now: u64) -> u64 {
        assert!(now >= self.last_ts, "estimates must not precede recorded events");
        self.last_ts = now;
        self.expire(now);
        let n = self.buckets.len();
        if n == 0 {
            return 0;
        }
        let mut total: u64 = self.buckets.iter().take(n - 1).map(|b| b.size).sum();
        total += self.buckets[n - 1].size.div_ceil(2);
        total
    }

    /// Number of buckets currently held (the space usage).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_few_events() {
        let mut eh = ExponentialHistogram::new(100, 2);
        eh.record(1);
        eh.record(2);
        assert_eq!(eh.estimate(2), 2);
    }

    #[test]
    fn expires_old_events() {
        let mut eh = ExponentialHistogram::new(10, 2);
        eh.record(0);
        eh.record(1);
        assert_eq!(eh.estimate(5), 2);
        // At t=20 both events (ts 0, 1) are far outside the window.
        assert_eq!(eh.estimate(20), 0);
    }

    #[test]
    fn estimate_within_dgim_bound() {
        // Uniform arrivals: 1 event per time unit for 10_000 units,
        // window 1000. True count inside the window is ~1000.
        let mut eh = ExponentialHistogram::new(1_000, 2);
        for ts in 0..10_000u64 {
            eh.record(ts);
        }
        let est = eh.estimate(9_999);
        let truth = 1_000u64;
        let rel_err = (est as f64 - truth as f64).abs() / truth as f64;
        assert!(rel_err <= 0.5, "relative error {rel_err} exceeds DGIM bound");
    }

    #[test]
    fn higher_max_per_size_is_tighter() {
        let mut coarse = ExponentialHistogram::new(1_000, 2);
        let mut fine = ExponentialHistogram::new(1_000, 8);
        for ts in 0..20_000u64 {
            coarse.record(ts);
            fine.record(ts);
        }
        let truth = 1_000f64;
        let err_coarse = (coarse.estimate(19_999) as f64 - truth).abs() / truth;
        let err_fine = (fine.estimate(19_999) as f64 - truth).abs() / truth;
        assert!(err_fine <= err_coarse + 1e-9);
        assert!(err_fine <= 0.15, "k=8 should be within ~1/8: got {err_fine}");
    }

    #[test]
    fn space_is_logarithmic() {
        let mut eh = ExponentialHistogram::new(1_000_000, 2);
        for ts in 0..100_000u64 {
            eh.record(ts);
        }
        // log2(100_000) ≈ 17; with ≤ 3 buckets materialised per size before
        // merging, anything under ~60 is fine (exact counting would be 100k).
        assert!(eh.bucket_count() < 64, "bucket count {} not logarithmic", eh.bucket_count());
    }

    #[test]
    fn bursts_then_silence() {
        let mut eh = ExponentialHistogram::new(50, 4);
        for ts in 0..100u64 {
            eh.record(ts);
        }
        // Silence: estimates shrink as the window slides past the burst.
        let at_100 = eh.estimate(100);
        let at_130 = eh.estimate(130);
        let at_200 = eh.estimate(200);
        assert!(at_100 >= at_130);
        assert!(at_130 >= at_200);
        assert_eq!(at_200, 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut eh = ExponentialHistogram::new(10, 2);
        eh.record(5);
        eh.record(3);
    }

    #[test]
    fn sizes_nondecreasing_invariant() {
        let mut eh = ExponentialHistogram::new(10_000, 2);
        for ts in 0..5_000u64 {
            eh.record(ts);
            if ts % 997 == 0 {
                let sizes: Vec<u64> = eh.buckets.iter().map(|b| b.size).collect();
                for w in sizes.windows(2) {
                    assert!(
                        w[0] <= w[1],
                        "bucket sizes must be non-decreasing oldest-ward: {sizes:?}"
                    );
                }
            }
        }
    }
}
