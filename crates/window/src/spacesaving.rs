//! Space-Saving heavy hitters (Metwally, Agrawal, El Abbadi 2005).

use enblogue_types::FxHashMap;
use std::hash::Hash;

/// The Space-Saving algorithm: approximate top-k frequent items with `m`
/// counters.
///
/// EnBlogue can select seed tags from a sketch instead of exact windowed
/// counters when the tag universe is huge (ablation P5). Guarantees: every
/// item with true count `> N/m` is in the summary, and each reported count
/// overestimates the true count by at most its stored `error`.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Copy> {
    capacity: usize,
    /// key → (count, error). Size ≤ capacity.
    counters: FxHashMap<K, (u64, u64)>,
    total: u64,
}

impl<K: Eq + Hash + Copy> SpaceSaving<K> {
    /// A summary with `capacity` monitored items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "summary capacity must be positive");
        SpaceSaving { capacity, counters: FxHashMap::default(), total: 0 }
    }

    /// Number of monitored item slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of observed occurrences.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of currently monitored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether nothing has been observed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Observes `by` occurrences of `key`.
    pub fn add(&mut self, key: K, by: u64)
    where
        K: Ord,
    {
        self.total += by;
        if let Some((count, _)) = self.counters.get_mut(&key) {
            *count += by;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, (by, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // error bound (classic Space-Saving replacement). Ties break on
        // the smallest key, not map order, so the summary is a pure
        // function of the observation sequence — a snapshot-restored map
        // (different layout, same contents) evicts identically.
        let (&min_key, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|(&key, &(count, _))| (count, key))
            .expect("non-empty at capacity");
        self.counters.remove(&min_key);
        self.counters.insert(key, (min_count + by, min_count));
    }

    /// Observes one occurrence of `key`.
    #[inline]
    pub fn increment(&mut self, key: K)
    where
        K: Ord,
    {
        self.add(key, 1);
    }

    /// The estimated count of `key` (upper bound on the true count), or
    /// `None` if the key is not monitored.
    pub fn estimate(&self, key: K) -> Option<u64> {
        self.counters.get(&key).map(|&(count, _)| count)
    }

    /// The maximum overestimation for `key`, if monitored.
    pub fn error(&self, key: K) -> Option<u64> {
        self.counters.get(&key).map(|&(_, error)| error)
    }

    /// *Guaranteed* heavy hitters: monitored items whose lower bound
    /// (`count − error`) is at least `threshold`.
    pub fn guaranteed_at_least(&self, threshold: u64) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut out: Vec<(K, u64)> = self
            .counters
            .iter()
            .filter(|(_, (count, error))| count - error >= threshold)
            .map(|(&k, &(count, _))| (k, count))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The `n` items with the largest estimated counts, descending
    /// (deterministic tie-break on key).
    pub fn top_n(&self, n: usize) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut all: Vec<(K, u64)> =
            self.counters.iter().map(|(&k, &(count, _))| (k, count)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Memory footprint estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.capacity * (std::mem::size_of::<K>() + 2 * std::mem::size_of::<u64>())
    }

    /// All monitored counters as `(key, estimate, error)`, sorted by key —
    /// dehydrated state for the snapshot seam.
    pub fn entries(&self) -> Vec<(K, u64, u64)>
    where
        K: Ord,
    {
        let mut out: Vec<(K, u64, u64)> =
            self.counters.iter().map(|(&k, &(count, error))| (k, count, error)).collect();
        out.sort_unstable_by_key(|&(k, _, _)| k);
        out
    }

    /// Rehydrates a summary from [`SpaceSaving::entries`] output plus the
    /// grand total.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or more entries than the capacity are
    /// supplied.
    pub fn from_parts(capacity: usize, total: u64, entries: Vec<(K, u64, u64)>) -> Self {
        assert!(capacity > 0, "summary capacity must be positive");
        assert!(entries.len() <= capacity, "more entries than the summary monitors");
        let mut counters = FxHashMap::default();
        for (key, count, error) in entries {
            counters.insert(key, (count, error));
        }
        SpaceSaving { capacity, counters, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.increment(1);
        }
        for _ in 0..3 {
            ss.increment(2);
        }
        assert_eq!(ss.estimate(1), Some(5));
        assert_eq!(ss.estimate(2), Some(3));
        assert_eq!(ss.error(1), Some(0));
        assert_eq!(ss.estimate(99), None);
    }

    #[test]
    fn eviction_keeps_overestimates_bounded() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(2);
        ss.add(1, 10);
        ss.add(2, 5);
        ss.increment(3); // evicts key 2 (min count 5); key 3 gets count 6, error 5
        assert_eq!(ss.estimate(2), None);
        assert_eq!(ss.estimate(3), Some(6));
        assert_eq!(ss.error(3), Some(5));
        // True count of 3 is 1; estimate 6 ≥ 1 and estimate − error = 1 = truth.
    }

    #[test]
    fn heavy_hitters_always_survive() {
        // Space-Saving guarantee: any item with count > N/m is monitored.
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(10);
        // One dominant key amid noise from 1000 distinct keys.
        let mut n = 0u64;
        for round in 0..200u32 {
            ss.increment(7);
            n += 1;
            for noise in 0..5u32 {
                ss.increment(1000 + round * 5 + noise);
                n += 1;
            }
        }
        let estimate = ss.estimate(7).expect("dominant key must be monitored");
        assert!(estimate >= 200, "estimate must upper-bound the true count");
        assert!(200 > n / 10, "test premise: key 7 is a guaranteed heavy hitter");
        assert!(!ss.guaranteed_at_least(100).is_empty());
        assert_eq!(ss.guaranteed_at_least(100)[0].0, 7);
    }

    #[test]
    fn top_n_orders_deterministically() {
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(5);
        ss.add(4, 6);
        ss.add(2, 9);
        ss.add(8, 6);
        assert_eq!(ss.top_n(2), vec![(2, 9), (4, 6)]);
        assert_eq!(ss.top_n(3), vec![(2, 9), (4, 6), (8, 6)]);
    }

    #[test]
    fn estimates_upper_bound_truth_under_churn() {
        let mut ss: SpaceSaving<u64> = SpaceSaving::new(8);
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut state = 42u64;
        for _ in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Skew: low keys much more frequent.
            let key = (state >> 33) % 64;
            let key = key * key / 64;
            ss.increment(key);
            *truth.entry(key).or_insert(0) += 1;
        }
        for (&key, &count) in &truth {
            if let Some(est) = ss.estimate(key) {
                assert!(est >= count, "key {key}: {est} < {count}");
                let err = ss.error(key).unwrap();
                assert!(est - err <= count, "lower bound exceeded truth");
            }
        }
        assert_eq!(ss.total(), 5_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: SpaceSaving<u32> = SpaceSaving::new(0);
    }
}
