//! HyperLogLog: approximate distinct counting (Flajolet et al. 2007).
//!
//! Another pluggable synopsis (§4.1): estimating the number of *distinct*
//! documents, users or tags in a high-rate stream with a few kilobytes of
//! state. Includes the standard small-range (linear counting) and bias
//! corrections, giving a typical relative error of `1.04/√m`.

use enblogue_types::FxBuildHasher;
use std::hash::{BuildHasher, Hash};

/// A HyperLogLog distinct-count estimator with `2^precision` registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
    hasher: FxBuildHasher,
}

impl HyperLogLog {
    /// An estimator with `2^precision` registers (`4 ≤ precision ≤ 16`).
    ///
    /// Typical choice: precision 12 → 4096 registers → ~1.6% error.
    ///
    /// # Panics
    /// Panics if `precision` is outside `4..=16`.
    pub fn new(precision: u8) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16");
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
            hasher: FxBuildHasher::default(),
        }
    }

    /// Number of registers.
    #[inline]
    pub fn m(&self) -> usize {
        self.registers.len()
    }

    /// Memory footprint of the register array in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Observes one item.
    pub fn insert<T: Hash>(&mut self, item: &T) {
        // FxHash is fast but has no avalanche (sequential keys produce
        // correlated bits); HLL's register indexing and rank statistics
        // need uniformly mixed bits, so finalize with murmur3's fmix64.
        let hash = fmix64(self.hasher.hash_one(item));
        let index = (hash >> (64 - self.precision)) as usize;
        // Rank = position of the leftmost 1 in the remaining bits (1-based).
        let rest = hash << self.precision;
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if self.registers[index] < rank {
            self.registers[index] = rank;
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2.0f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        // 64-bit hashes make the large-range correction irrelevant at any
        // realistic cardinality.
        raw
    }

    /// Merges another sketch of the same precision (union semantics).
    ///
    /// # Panics
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if *a < b {
                *a = b;
            }
        }
    }

    /// Resets the sketch.
    pub fn clear(&mut self) {
        self.registers.iter_mut().for_each(|r| *r = 0);
    }
}

/// Murmur3's 64-bit finalizer: full avalanche in three multiply-xor steps.
#[inline]
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(estimate: f64, truth: f64) -> f64 {
        (estimate - truth).abs() / truth
    }

    #[test]
    fn small_cardinalities_are_nearly_exact() {
        let mut hll = HyperLogLog::new(12);
        for i in 0u64..100 {
            hll.insert(&i);
        }
        assert!(relative_error(hll.estimate(), 100.0) < 0.05, "got {}", hll.estimate());
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for _ in 0..50 {
            for i in 0u64..200 {
                hll.insert(&i);
            }
        }
        assert!(relative_error(hll.estimate(), 200.0) < 0.05, "got {}", hll.estimate());
    }

    #[test]
    fn large_cardinalities_within_theoretical_error() {
        let mut hll = HyperLogLog::new(12); // 1.04/√4096 ≈ 1.6%
        let n = 200_000u64;
        for i in 0..n {
            hll.insert(&i);
        }
        let err = relative_error(hll.estimate(), n as f64);
        assert!(err < 0.05, "relative error {err} too high (estimate {})", hll.estimate());
    }

    #[test]
    fn precision_trades_memory_for_accuracy() {
        let n = 50_000u64;
        let run = |precision: u8| {
            let mut hll = HyperLogLog::new(precision);
            for i in 0..n {
                hll.insert(&i);
            }
            relative_error(hll.estimate(), n as f64)
        };
        // Not strictly monotone per-instance, but order-of-magnitude holds.
        let coarse = run(6);
        let fine = run(14);
        assert!(fine < coarse.max(0.05), "fine {fine} vs coarse {coarse}");
        assert_eq!(HyperLogLog::new(6).memory_bytes(), 64);
        assert_eq!(HyperLogLog::new(14).memory_bytes(), 16_384);
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        for i in 0u64..10_000 {
            a.insert(&i);
        }
        for i in 5_000u64..15_000 {
            b.insert(&i);
        }
        a.merge(&b);
        assert!(relative_error(a.estimate(), 15_000.0) < 0.05, "union estimate {}", a.estimate());
    }

    #[test]
    fn clear_resets() {
        let mut hll = HyperLogLog::new(8);
        for i in 0u64..1000 {
            hll.insert(&i);
        }
        hll.clear();
        assert!(hll.estimate() < 1.0);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatched_precision() {
        let mut a = HyperLogLog::new(8);
        let b = HyperLogLog::new(10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision must be in")]
    fn precision_bounds_enforced() {
        let _ = HyperLogLog::new(3);
    }
}
