//! Exponentially decaying values with configurable half-life.

use enblogue_types::Timestamp;

/// A score that halves every `half_life_ms` of stream time.
///
/// This implements the paper's scoring rule (§3(iii)): "the score of a topic
/// is the maximum of the current prediction error and the prediction errors
/// from the past, dampened appropriately using an exponential decline factor
/// with a half life of approximately 2 days."
///
/// The value is stored lazily as `(value, last_update)`; reading at time `t`
/// applies `value · 2^(-(t - last_update)/half_life)`.
#[derive(Debug, Clone, Copy)]
pub struct DecayValue {
    half_life_ms: f64,
    value: f64,
    last_update: Timestamp,
}

impl DecayValue {
    /// The paper's default half-life: approximately two days.
    pub const DEFAULT_HALF_LIFE_MS: u64 = 2 * Timestamp::DAY;

    /// A zero score with the given half-life.
    ///
    /// # Panics
    /// Panics if `half_life_ms == 0`.
    pub fn new(half_life_ms: u64) -> Self {
        assert!(half_life_ms > 0, "half-life must be positive");
        DecayValue { half_life_ms: half_life_ms as f64, value: 0.0, last_update: Timestamp::ZERO }
    }

    /// A zero score with the paper's ≈2-day half-life.
    pub fn with_default_half_life() -> Self {
        DecayValue::new(Self::DEFAULT_HALF_LIFE_MS)
    }

    /// The configured half-life in milliseconds.
    #[inline]
    pub fn half_life_ms(&self) -> u64 {
        self.half_life_ms as u64
    }

    /// The decayed value as of `now`.
    ///
    /// Reading at a time before the last update returns the undecayed value
    /// (time never runs backwards in a stream; tolerating equal timestamps
    /// keeps same-tick reads exact).
    pub fn value_at(&self, now: Timestamp) -> f64 {
        let elapsed = now.since(self.last_update) as f64;
        if elapsed <= 0.0 || self.value == 0.0 {
            return self.value;
        }
        self.value * (-std::f64::consts::LN_2 * elapsed / self.half_life_ms).exp()
    }

    /// Applies the paper's decayed-max update: the stored score becomes
    /// `max(observation, decayed previous score)` as of `now`. Returns the
    /// new score.
    pub fn observe_max(&mut self, now: Timestamp, observation: f64) -> f64 {
        let decayed = self.value_at(now);
        self.value = decayed.max(observation);
        self.last_update = now;
        self.value
    }

    /// [`DecayValue::observe_max`] with the exponential memoized through
    /// `memo`.
    ///
    /// Bit-identical to the plain form: the decay factor is a pure
    /// function of `(elapsed, half_life)` and the memo is keyed on
    /// exactly those inputs. Batch callers updating many values that
    /// share one half-life and update cadence — the tick close, where
    /// every live pair was last touched at the previous close — pay one
    /// `exp` per distinct elapsed time instead of one per value.
    pub fn observe_max_memo(
        &mut self,
        now: Timestamp,
        observation: f64,
        memo: &mut DecayMemo,
    ) -> f64 {
        let elapsed = now.since(self.last_update) as f64;
        let decayed = if elapsed <= 0.0 || self.value == 0.0 {
            self.value
        } else {
            self.value * memo.factor_for(elapsed, self.half_life_ms)
        };
        self.value = decayed.max(observation);
        self.last_update = now;
        self.value
    }

    /// Overwrites the value at `now` (used by tests and resets).
    pub fn set(&mut self, now: Timestamp, value: f64) {
        self.value = value;
        self.last_update = now;
    }

    /// The last time the value was updated.
    #[inline]
    pub fn last_update(&self) -> Timestamp {
        self.last_update
    }
}

/// Single-entry memo for the exponential decay factor, shared across many
/// [`DecayValue`] updates with the same `(elapsed, half_life)` inputs.
///
/// See [`DecayValue::observe_max_memo`]. The cache starts poisoned with
/// NaN keys so the first lookup always computes.
#[derive(Debug, Clone, Copy)]
pub struct DecayMemo {
    elapsed_ms: f64,
    half_life_ms: f64,
    factor: f64,
}

impl DecayMemo {
    /// An empty memo.
    pub fn new() -> Self {
        DecayMemo { elapsed_ms: f64::NAN, half_life_ms: f64::NAN, factor: 1.0 }
    }

    #[inline]
    fn factor_for(&mut self, elapsed_ms: f64, half_life_ms: f64) -> f64 {
        if elapsed_ms != self.elapsed_ms || half_life_ms != self.half_life_ms {
            self.elapsed_ms = elapsed_ms;
            self.half_life_ms = half_life_ms;
            self.factor = (-std::f64::consts::LN_2 * elapsed_ms / half_life_ms).exp();
        }
        self.factor
    }
}

impl Default for DecayMemo {
    fn default() -> Self {
        DecayMemo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn halves_after_one_half_life() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::ZERO, 8.0);
        approx(d.value_at(Timestamp::from_days(1)), 4.0);
        approx(d.value_at(Timestamp::from_days(2)), 2.0);
        approx(d.value_at(Timestamp::from_days(3)), 1.0);
    }

    #[test]
    fn default_half_life_is_two_days() {
        let mut d = DecayValue::with_default_half_life();
        d.set(Timestamp::ZERO, 1.0);
        approx(d.value_at(Timestamp::from_days(2)), 0.5);
    }

    #[test]
    fn observe_max_keeps_larger_decayed_past() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.observe_max(Timestamp::ZERO, 8.0);
        // One day later the past score has decayed to 4; a smaller new
        // observation must not displace it.
        let score = d.observe_max(Timestamp::from_days(1), 1.0);
        approx(score, 4.0);
        // A larger observation takes over.
        let score = d.observe_max(Timestamp::from_days(1), 10.0);
        approx(score, 10.0);
    }

    #[test]
    fn zero_stays_zero() {
        let d = DecayValue::new(Timestamp::HOUR);
        assert_eq!(d.value_at(Timestamp::from_days(100)), 0.0);
    }

    #[test]
    fn reading_in_the_past_returns_undecayed() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::from_days(5), 2.0);
        approx(d.value_at(Timestamp::from_days(3)), 2.0);
        approx(d.value_at(Timestamp::from_days(5)), 2.0);
    }

    #[test]
    fn decay_is_continuous_not_stepped() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::ZERO, 1.0);
        let half_day = d.value_at(Timestamp::from_hours(12));
        approx(half_day, 0.5f64.sqrt());
    }

    #[test]
    fn memoized_observe_max_is_bit_identical() {
        // Two identical values stepped through the same schedule, one via
        // the plain update and one via the memoized update (memo shared
        // across values and reused across ticks, as the close loop does).
        let mut memo = DecayMemo::new();
        for half_life in [Timestamp::HOUR, Timestamp::DAY, 2 * Timestamp::DAY] {
            let mut plain = DecayValue::new(half_life);
            let mut memoed = DecayValue::new(half_life);
            let observations = [0.8, 0.0, 0.3, 0.0, 0.0, 1.2, 0.9];
            for (i, &obs) in observations.iter().enumerate() {
                let now = Timestamp::from_hours(6 * (i as u64 + 1));
                let a = plain.observe_max(now, obs);
                let b = memoed.observe_max_memo(now, obs, &mut memo);
                assert_eq!(a.to_bits(), b.to_bits(), "diverged at step {i}");
            }
            assert_eq!(
                plain.value_at(Timestamp::from_days(30)).to_bits(),
                memoed.value_at(Timestamp::from_days(30)).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        let _ = DecayValue::new(0);
    }
}
