//! Exponentially decaying values with configurable half-life.

use enblogue_types::Timestamp;

/// A score that halves every `half_life_ms` of stream time.
///
/// This implements the paper's scoring rule (§3(iii)): "the score of a topic
/// is the maximum of the current prediction error and the prediction errors
/// from the past, dampened appropriately using an exponential decline factor
/// with a half life of approximately 2 days."
///
/// The value is stored lazily as `(value, last_update)`; reading at time `t`
/// applies `value · 2^(-(t - last_update)/half_life)`.
#[derive(Debug, Clone, Copy)]
pub struct DecayValue {
    half_life_ms: f64,
    value: f64,
    last_update: Timestamp,
}

impl DecayValue {
    /// The paper's default half-life: approximately two days.
    pub const DEFAULT_HALF_LIFE_MS: u64 = 2 * Timestamp::DAY;

    /// A zero score with the given half-life.
    ///
    /// # Panics
    /// Panics if `half_life_ms == 0`.
    pub fn new(half_life_ms: u64) -> Self {
        assert!(half_life_ms > 0, "half-life must be positive");
        DecayValue { half_life_ms: half_life_ms as f64, value: 0.0, last_update: Timestamp::ZERO }
    }

    /// A zero score with the paper's ≈2-day half-life.
    pub fn with_default_half_life() -> Self {
        DecayValue::new(Self::DEFAULT_HALF_LIFE_MS)
    }

    /// The configured half-life in milliseconds.
    #[inline]
    pub fn half_life_ms(&self) -> u64 {
        self.half_life_ms as u64
    }

    /// The decayed value as of `now`.
    ///
    /// Reading at a time before the last update returns the undecayed value
    /// (time never runs backwards in a stream; tolerating equal timestamps
    /// keeps same-tick reads exact).
    pub fn value_at(&self, now: Timestamp) -> f64 {
        let elapsed = now.since(self.last_update) as f64;
        if elapsed <= 0.0 || self.value == 0.0 {
            return self.value;
        }
        self.value * (-std::f64::consts::LN_2 * elapsed / self.half_life_ms).exp()
    }

    /// Applies the paper's decayed-max update: the stored score becomes
    /// `max(observation, decayed previous score)` as of `now`. Returns the
    /// new score.
    pub fn observe_max(&mut self, now: Timestamp, observation: f64) -> f64 {
        let decayed = self.value_at(now);
        self.value = decayed.max(observation);
        self.last_update = now;
        self.value
    }

    /// Overwrites the value at `now` (used by tests and resets).
    pub fn set(&mut self, now: Timestamp, value: f64) {
        self.value = value;
        self.last_update = now;
    }

    /// The last time the value was updated.
    #[inline]
    pub fn last_update(&self) -> Timestamp {
        self.last_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn halves_after_one_half_life() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::ZERO, 8.0);
        approx(d.value_at(Timestamp::from_days(1)), 4.0);
        approx(d.value_at(Timestamp::from_days(2)), 2.0);
        approx(d.value_at(Timestamp::from_days(3)), 1.0);
    }

    #[test]
    fn default_half_life_is_two_days() {
        let mut d = DecayValue::with_default_half_life();
        d.set(Timestamp::ZERO, 1.0);
        approx(d.value_at(Timestamp::from_days(2)), 0.5);
    }

    #[test]
    fn observe_max_keeps_larger_decayed_past() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.observe_max(Timestamp::ZERO, 8.0);
        // One day later the past score has decayed to 4; a smaller new
        // observation must not displace it.
        let score = d.observe_max(Timestamp::from_days(1), 1.0);
        approx(score, 4.0);
        // A larger observation takes over.
        let score = d.observe_max(Timestamp::from_days(1), 10.0);
        approx(score, 10.0);
    }

    #[test]
    fn zero_stays_zero() {
        let d = DecayValue::new(Timestamp::HOUR);
        assert_eq!(d.value_at(Timestamp::from_days(100)), 0.0);
    }

    #[test]
    fn reading_in_the_past_returns_undecayed() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::from_days(5), 2.0);
        approx(d.value_at(Timestamp::from_days(3)), 2.0);
        approx(d.value_at(Timestamp::from_days(5)), 2.0);
    }

    #[test]
    fn decay_is_continuous_not_stepped() {
        let mut d = DecayValue::new(Timestamp::DAY);
        d.set(Timestamp::ZERO, 1.0);
        let half_day = d.value_at(Timestamp::from_hours(12));
        approx(half_day, 0.5f64.sqrt());
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        let _ = DecayValue::new(0);
    }
}
