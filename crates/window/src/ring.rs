//! Fixed-capacity circular buffer.

/// A fixed-capacity ring buffer that evicts the oldest element on overflow.
///
/// The workhorse behind tick-aligned windows: pushing the value of the
/// newest tick evicts the value that just left the window. Iteration order
/// is oldest → newest.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// Creates an empty ring with room for `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer { buf: Vec::with_capacity(capacity), head: 0, len: 0, capacity }
    }

    /// Maximum number of elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ring is at capacity (the next push evicts).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Pushes `value`, returning the evicted oldest element if full.
    pub fn push(&mut self, value: T) -> Option<T> {
        if self.buf.len() < self.capacity {
            // Still filling the backing storage.
            self.buf.push(value);
            self.len += 1;
            None
        } else {
            let slot = (self.head + self.len) % self.capacity;
            let evicted = std::mem::replace(&mut self.buf[slot], value);
            if self.len == self.capacity {
                self.head = (self.head + 1) % self.capacity;
                Some(evicted)
            } else {
                self.len += 1;
                None
            }
        }
    }

    /// Removes and returns the oldest element.
    pub fn pop_oldest(&mut self) -> Option<T>
    where
        T: Default,
    {
        if self.len == 0 {
            return None;
        }
        let value = std::mem::take(&mut self.buf[self.head]);
        self.head = (self.head + 1) % self.capacity;
        self.len -= 1;
        Some(value)
    }

    /// The element `i` steps from the oldest (0 = oldest).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i < self.len {
            Some(&self.buf[(self.head + i) % self.capacity])
        } else {
            None
        }
    }

    /// Mutable access to the element `i` steps from the oldest.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i < self.len {
            let idx = (self.head + i) % self.capacity;
            Some(&mut self.buf[idx])
        } else {
            None
        }
    }

    /// Mutable access to the most recently pushed element.
    #[inline]
    pub fn newest_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            self.get_mut(self.len - 1)
        }
    }

    /// The most recently pushed element.
    #[inline]
    pub fn newest(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.get(self.len - 1)
        }
    }

    /// The oldest element still in the ring.
    #[inline]
    pub fn oldest(&self) -> Option<&T> {
        self.get(0)
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| &self.buf[(self.head + i) % self.capacity])
    }

    /// Clears the ring without releasing storage.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_in_fifo_order() {
        let mut ring = RingBuffer::new(3);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert!(ring.is_full());
        assert_eq!(ring.push(4), Some(1));
        assert_eq!(ring.push(5), Some(2));
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn accessors_track_ends() {
        let mut ring = RingBuffer::new(2);
        assert_eq!(ring.newest(), None);
        assert_eq!(ring.oldest(), None);
        ring.push(10);
        assert_eq!(ring.newest(), Some(&10));
        assert_eq!(ring.oldest(), Some(&10));
        ring.push(20);
        ring.push(30);
        assert_eq!(ring.oldest(), Some(&20));
        assert_eq!(ring.newest(), Some(&30));
        assert_eq!(ring.get(0), Some(&20));
        assert_eq!(ring.get(1), Some(&30));
        assert_eq!(ring.get(2), None);
    }

    #[test]
    fn pop_oldest_drains_fifo() {
        let mut ring = RingBuffer::new(3);
        for i in 1..=5 {
            ring.push(i);
        }
        assert_eq!(ring.pop_oldest(), Some(3));
        assert_eq!(ring.pop_oldest(), Some(4));
        ring.push(6);
        assert_eq!(ring.pop_oldest(), Some(5));
        assert_eq!(ring.pop_oldest(), Some(6));
        assert_eq!(ring.pop_oldest(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut ring = RingBuffer::new(2);
        ring.push("a");
        ring.push("b");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.push("c"), None);
        assert_eq!(ring.newest(), Some(&"c"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: RingBuffer<u8> = RingBuffer::new(0);
    }

    #[test]
    fn capacity_one_always_replaces() {
        let mut ring = RingBuffer::new(1);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), Some(1));
        assert_eq!(ring.push(3), Some(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.newest(), Some(&3));
    }
}
