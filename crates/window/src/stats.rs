//! Windowed mean/variance statistics.

use crate::ring::RingBuffer;

/// Sliding mean and variance over the last `W` observations.
///
/// Used for the *volatility* seed-selection criterion (§3(i) lists
/// "popularity and volatility") and by the burst-detection baseline, which
/// gates on `rate > mean + γ·stddev`.
///
/// Maintains running Σx and Σx² so updates are O(1). Windows in this system
/// are short (tens to hundreds of slots) and values are event counts, so
/// catastrophic cancellation is not a practical concern; variance is clamped
/// at zero to absorb rounding.
#[derive(Debug, Clone)]
pub struct SlidingStats {
    ring: RingBuffer<f64>,
    sum: f64,
    sum_sq: f64,
}

impl SlidingStats {
    /// Stats over a window of `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        SlidingStats { ring: RingBuffer::new(capacity), sum: 0.0, sum_sq: 0.0 }
    }

    /// Records an observation, evicting the oldest when full.
    pub fn push(&mut self, value: f64) {
        if let Some(old) = self.ring.push(value) {
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.sum += value;
        self.sum_sq += value * value;
    }

    /// Number of observations currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no observation has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Window capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Mean of the held observations (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.ring.is_empty() {
            0.0
        } else {
            self.sum / self.ring.len() as f64
        }
    }

    /// Population variance of the held observations (0 if < 2 samples).
    pub fn variance(&self) -> f64 {
        let n = self.ring.len();
        if n < 2 {
            return 0.0;
        }
        let n = n as f64;
        let mean = self.sum / n;
        (self.sum_sq / n - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    #[inline]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    ///
    /// This is the *volatility* measure: tags whose frequency swings widely
    /// relative to their level score high.
    pub fn coefficient_of_variation(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev() / mean
        }
    }

    /// Z-score of `value` against the window (0 when stddev is 0).
    pub fn zscore(&self, value: f64) -> f64 {
        let sd = self.stddev();
        if sd < f64::EPSILON {
            0.0
        } else {
            (value - self.mean()) / sd
        }
    }

    /// The running `(Σx, Σx²)` sums — dehydrated state for the snapshot
    /// seam. These are *running* sums shaped by past evictions, so they
    /// can differ from fresh sums over [`SlidingStats::values`] in the
    /// last float bits; restoring them verbatim keeps derived statistics
    /// (and everything ranked from them) bit-identical.
    #[inline]
    pub fn sums(&self) -> (f64, f64) {
        (self.sum, self.sum_sq)
    }

    /// Rehydrates stats from [`SlidingStats::values`] and
    /// [`SlidingStats::sums`] output.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or more values than the capacity are
    /// supplied.
    pub fn from_parts(capacity: usize, values: Vec<f64>, sum: f64, sum_sq: f64) -> Self {
        assert!(values.len() <= capacity, "more values than the window holds");
        let mut ring = RingBuffer::new(capacity);
        for value in values {
            ring.push(value);
        }
        SlidingStats { ring, sum, sum_sq }
    }

    /// The most recent observation (0 if empty).
    #[inline]
    pub fn newest(&self) -> f64 {
        self.ring.newest().copied().unwrap_or(0.0)
    }

    /// Observations oldest → newest.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.ring.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn mean_and_variance_match_definition() {
        let mut s = SlidingStats::new(10);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        approx(s.mean(), 5.0);
        approx(s.variance(), 4.0);
        approx(s.stddev(), 2.0);
    }

    #[test]
    fn eviction_keeps_running_sums_exact() {
        let mut s = SlidingStats::new(3);
        for v in [100.0, 1.0, 2.0, 3.0] {
            s.push(v);
        }
        // Window now holds 1, 2, 3.
        approx(s.mean(), 2.0);
        approx(s.variance(), 2.0 / 3.0);
    }

    #[test]
    fn degenerate_cases() {
        let mut s = SlidingStats::new(4);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.zscore(5.0), 0.0);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0, "single sample has zero variance");
        assert_eq!(s.newest(), 3.0);
    }

    #[test]
    fn zscore_is_standardised() {
        let mut s = SlidingStats::new(10);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        approx(s.zscore(7.0), 1.0);
        approx(s.zscore(5.0), 0.0);
        approx(s.zscore(1.0), -2.0);
    }

    #[test]
    fn constant_series_has_zero_cv() {
        let mut s = SlidingStats::new(5);
        for _ in 0..5 {
            s.push(4.0);
        }
        approx(s.coefficient_of_variation(), 0.0);
        approx(s.zscore(10.0), 0.0);
    }

    #[test]
    fn cv_scales_with_spread() {
        let mut low = SlidingStats::new(4);
        let mut high = SlidingStats::new(4);
        for v in [9.0, 10.0, 11.0, 10.0] {
            low.push(v);
        }
        for v in [1.0, 19.0, 2.0, 18.0] {
            high.push(v);
        }
        assert!(high.coefficient_of_variation() > low.coefficient_of_variation());
    }

    #[test]
    fn variance_never_negative() {
        let mut s = SlidingStats::new(3);
        for v in [1e9, 1e9 + 1.0, 1e9 + 2.0, 1e9 + 1.0] {
            s.push(v);
        }
        assert!(s.variance() >= 0.0);
    }
}
