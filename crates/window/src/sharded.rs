//! Hash-sharded windowed counting.
//!
//! A [`ShardedWindowedCounter`] splits one logical [`WindowedCounter`] into
//! `N` independent shards so writers can route keys (the caller supplies
//! the shard index — routing policy lives with the keys, e.g.
//! `enblogue_types::shard_of_packed` for packed tag pairs) and tick close
//! can advance or scan shards in parallel. Aggregates over all shards are
//! exact: a key lives in exactly one shard.

use crate::counter::WindowedCounter;
use enblogue_types::Tick;
use std::hash::Hash;

/// `N` tick-windowed per-key counters behind one facade.
pub struct ShardedWindowedCounter<K: Eq + Hash + Copy> {
    shards: Vec<WindowedCounter<K>>,
}

impl<K: Eq + Hash + Copy> ShardedWindowedCounter<K> {
    /// `shards` windowed counters, each spanning `window_ticks`.
    ///
    /// # Panics
    /// Panics if `shards` is zero (delegated window-size validation panics
    /// if `window_ticks` is zero).
    pub fn new(shards: usize, window_ticks: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardedWindowedCounter {
            shards: (0..shards).map(|_| WindowedCounter::new(window_ticks)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counts `key` into `tick` in the shard at `shard_index`.
    ///
    /// The caller owns the routing: the same key **must** always be sent
    /// to the same shard, or windowed counts will split across shards.
    pub fn increment(&mut self, shard_index: usize, tick: Tick, key: K) {
        self.shards[shard_index].increment(tick, key);
    }

    /// Mutable access to the per-shard counters (index = shard), so
    /// callers can hand one shard to each worker of a parallel ingest
    /// fan-out. The routing contract of
    /// [`ShardedWindowedCounter::increment`] applies unchanged.
    pub fn shards_mut(&mut self) -> &mut [WindowedCounter<K>] {
        &mut self.shards
    }

    /// Read access to the per-shard counters (index = shard) — the
    /// snapshot seam: serializers walk each shard's windowed state.
    pub fn shards(&self) -> &[WindowedCounter<K>] {
        &self.shards
    }

    /// Reassembles a sharded counter from per-shard counters restored via
    /// [`WindowedCounter::from_per_tick_counts`]. The caller owns routing
    /// consistency, exactly as with [`ShardedWindowedCounter::increment`].
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<WindowedCounter<K>>) -> Self {
        assert!(!shards.is_empty(), "shard count must be positive");
        ShardedWindowedCounter { shards }
    }

    /// The windowed count of `key`, which must be routed to `shard_index`.
    pub fn count(&self, shard_index: usize, key: K) -> u64 {
        self.shards[shard_index].count(key)
    }

    /// Advances every shard's window so its newest slot is `tick`.
    pub fn advance_to(&mut self, tick: Tick) {
        for shard in &mut self.shards {
            shard.advance_to(tick);
        }
    }

    /// Distinct keys alive across all shards (exact: keys don't repeat
    /// across shards under consistent routing).
    pub fn distinct_keys(&self) -> usize {
        self.shards.iter().map(WindowedCounter::distinct_keys).sum()
    }

    /// Total events in the window across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(WindowedCounter::total_events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy routing used by the tests: low bits of the key.
    fn route(key: u64, shards: usize) -> usize {
        (key % shards as u64) as usize
    }

    #[test]
    fn counts_are_exact_under_consistent_routing() {
        let shards = 4;
        let mut sharded: ShardedWindowedCounter<u64> = ShardedWindowedCounter::new(shards, 3);
        let mut reference: WindowedCounter<u64> = WindowedCounter::new(3);
        for tick in 0..6u64 {
            for key in 0..20u64 {
                if (key + tick) % 3 == 0 {
                    sharded.increment(route(key, shards), Tick(tick), key);
                    reference.increment(Tick(tick), key);
                }
            }
            sharded.advance_to(Tick(tick));
            reference.advance_to(Tick(tick));
            for key in 0..20u64 {
                assert_eq!(
                    sharded.count(route(key, shards), key),
                    reference.count(key),
                    "key {key} at tick {tick}"
                );
            }
            assert_eq!(sharded.distinct_keys(), reference.distinct_keys());
            assert_eq!(sharded.total_events(), reference.total_events());
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_counter() {
        let mut sharded: ShardedWindowedCounter<u32> = ShardedWindowedCounter::new(1, 2);
        sharded.increment(0, Tick(0), 7);
        sharded.increment(0, Tick(1), 7);
        assert_eq!(sharded.count(0, 7), 2);
        sharded.advance_to(Tick(2));
        assert_eq!(sharded.count(0, 7), 1, "tick 0 expired");
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _: ShardedWindowedCounter<u32> = ShardedWindowedCounter::new(0, 2);
    }

    #[test]
    fn extract_and_merge_move_window_state_between_shards() {
        // The migration recipe shard rebalancing uses: extract from the
        // donor's counter, merge into the receiver's, via `shards_mut`.
        let mut sharded: ShardedWindowedCounter<u64> = ShardedWindowedCounter::new(2, 3);
        sharded.increment(0, Tick(0), 42);
        sharded.increment(0, Tick(1), 42);
        sharded.increment(0, Tick(1), 7);
        sharded.advance_to(Tick(1));
        let series = sharded.shards_mut()[0].extract_key(42).expect("live key");
        sharded.shards_mut()[1].merge_key(42, &series);
        assert_eq!(sharded.count(0, 42), 0);
        assert_eq!(sharded.count(1, 42), 2, "counts preserved across the move");
        assert_eq!(sharded.count(0, 7), 1, "unmoved keys stay put");
        assert_eq!(sharded.total_events(), 3);
        sharded.advance_to(Tick(3)); // tick 0 expires in the new home too
        assert_eq!(sharded.count(1, 42), 1);
        assert!(sharded.shards_mut()[0].extract_key(999).is_none(), "dead keys extract nothing");
    }
}
