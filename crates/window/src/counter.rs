//! Exact per-key counts over a sliding window of ticks.

use enblogue_types::{FxHashMap, Tick};
use std::collections::VecDeque;
use std::hash::Hash;

/// Exact sliding-window counter: for each key, how many events occurred in
/// the last `W` ticks.
///
/// This is the statistics operator behind seed selection (§3(i)): tag
/// popularity is the sliding-window average of per-tick document counts.
/// The structure keeps one small map per tick plus a running total per key;
/// advancing the window subtracts the expiring tick's map, so totals stay
/// exact without rescanning.
#[derive(Debug, Clone)]
pub struct WindowedCounter<K: Eq + Hash + Copy> {
    window_ticks: usize,
    /// Per-tick counts, oldest first. `ticks.len() <= window_ticks`.
    ticks: VecDeque<FxHashMap<K, u64>>,
    /// Sum over all per-tick maps.
    totals: FxHashMap<K, u64>,
    /// The tick the newest map belongs to.
    newest_tick: Option<Tick>,
}

impl<K: Eq + Hash + Copy> WindowedCounter<K> {
    /// A counter windowed over `window_ticks` ticks.
    ///
    /// # Panics
    /// Panics if `window_ticks == 0`.
    pub fn new(window_ticks: usize) -> Self {
        assert!(window_ticks > 0, "window must span at least one tick");
        WindowedCounter {
            window_ticks,
            ticks: VecDeque::with_capacity(window_ticks),
            totals: FxHashMap::default(),
            newest_tick: None,
        }
    }

    /// The window length in ticks.
    #[inline]
    pub fn window(&self) -> usize {
        self.window_ticks
    }

    /// Advances the window so its newest slot is `tick`, expiring old ticks.
    ///
    /// Must be called with non-decreasing ticks; calling with the current
    /// tick is a no-op.
    pub fn advance_to(&mut self, tick: Tick) {
        let Some(newest) = self.newest_tick else {
            self.ticks.push_back(FxHashMap::default());
            self.newest_tick = Some(tick);
            return;
        };
        if tick <= newest {
            return;
        }
        let gap = tick.since(newest) as usize;
        if gap >= self.window_ticks {
            // Everything expires at once.
            self.ticks.clear();
            self.totals.clear();
            self.ticks.push_back(FxHashMap::default());
        } else {
            for _ in 0..gap {
                if self.ticks.len() == self.window_ticks {
                    self.expire_oldest();
                }
                self.ticks.push_back(FxHashMap::default());
            }
        }
        self.newest_tick = Some(tick);
    }

    fn expire_oldest(&mut self) {
        let Some(expired) = self.ticks.pop_front() else { return };
        for (key, count) in expired {
            match self.totals.get_mut(&key) {
                Some(total) => {
                    *total -= count;
                    if *total == 0 {
                        self.totals.remove(&key);
                    }
                }
                None => unreachable!("totals out of sync with per-tick maps"),
            }
        }
    }

    /// Adds `by` occurrences of `key` in `tick` (advancing the window).
    pub fn add(&mut self, tick: Tick, key: K, by: u64) {
        self.advance_to(tick);
        debug_assert_eq!(self.newest_tick, Some(tick).max(self.newest_tick), "add into the past");
        if by == 0 {
            return;
        }
        let map = self.ticks.back_mut().expect("advance_to ensures a newest slot");
        *map.entry(key).or_insert(0) += by;
        *self.totals.entry(key).or_insert(0) += by;
    }

    /// Records one occurrence of `key` in `tick`.
    #[inline]
    pub fn increment(&mut self, tick: Tick, key: K) {
        self.add(tick, key, 1);
    }

    /// The exact count of `key` over the current window.
    #[inline]
    pub fn count(&self, key: K) -> u64 {
        self.totals.get(&key).copied().unwrap_or(0)
    }

    /// The count of `key` in the newest tick only.
    pub fn count_in_newest_tick(&self, key: K) -> u64 {
        self.ticks.back().and_then(|m| m.get(&key)).copied().unwrap_or(0)
    }

    /// Sliding-window average: count / window length.
    #[inline]
    pub fn window_average(&self, key: K) -> f64 {
        self.count(key) as f64 / self.window_ticks as f64
    }

    /// Number of keys with a non-zero count in the window.
    #[inline]
    pub fn distinct_keys(&self) -> usize {
        self.totals.len()
    }

    /// Iterates over `(key, windowed count)` for all live keys.
    pub fn iter(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.totals.iter().map(|(&k, &v)| (k, v))
    }

    /// The `n` keys with the largest windowed counts, descending.
    ///
    /// Ties break on nothing in particular (keys are opaque); callers that
    /// need determinism sort the result again by key.
    pub fn top_n(&self, n: usize) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut all: Vec<(K, u64)> = self.iter().collect();
        // Deterministic: count desc, then key asc.
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// The newest tick the counter has seen.
    #[inline]
    pub fn newest_tick(&self) -> Option<Tick> {
        self.newest_tick
    }

    /// Total number of events in the window across all keys.
    pub fn total_events(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Removes `key` from the counter, returning its per-tick window
    /// series — the donor half of a shard migration.
    ///
    /// Returns `None` if the key has no live counts (nothing to move).
    pub fn extract_key(&mut self, key: K) -> Option<KeyWindow> {
        let total = self.totals.remove(&key)?;
        let counts: Vec<u64> =
            self.ticks.iter_mut().map(|map| map.remove(&key).unwrap_or(0)).collect();
        debug_assert_eq!(counts.iter().sum::<u64>(), total, "totals out of sync");
        Some(KeyWindow {
            newest_tick: self.newest_tick.expect("live counts imply an open window"),
            counts,
        })
    }

    /// Releases excess capacity of the per-tick and total maps. Call
    /// after bulk [`WindowedCounter::extract_key`] removals (a shard
    /// migration): iteration and expiry walk map *capacity*, so a donor
    /// that keeps the capacity of its departed keys pays for them on
    /// every subsequent tick.
    pub fn shrink_to_fit(&mut self) {
        self.totals.shrink_to_fit();
        for map in &mut self.ticks {
            map.shrink_to_fit();
        }
    }

    /// Exports the per-tick count maps, oldest → newest — the counter's
    /// full dehydrated state for snapshot/restore (see
    /// [`WindowedCounter::from_per_tick_counts`]). Inner vectors are in
    /// map order; serializers that need stable bytes sort them by key.
    pub fn per_tick_counts(&self) -> Vec<Vec<(K, u64)>> {
        self.ticks.iter().map(|map| map.iter().map(|(&k, &v)| (k, v)).collect()).collect()
    }

    /// Rehydrates a counter from [`WindowedCounter::per_tick_counts`]
    /// output plus the newest tick. Totals are rebuilt exactly (integer
    /// sums), so a round-trip preserves every windowed count bit-for-bit.
    ///
    /// # Panics
    /// Panics if `window_ticks` is zero, more tick maps than the window
    /// are supplied, or tick maps exist without a newest tick.
    pub fn from_per_tick_counts(
        window_ticks: usize,
        newest_tick: Option<Tick>,
        per_tick: Vec<Vec<(K, u64)>>,
    ) -> Self {
        assert!(per_tick.len() <= window_ticks, "more tick maps than the window holds");
        assert!(
            newest_tick.is_some() || per_tick.is_empty(),
            "tick maps require a newest tick to anchor them"
        );
        let mut counter = WindowedCounter::new(window_ticks);
        counter.newest_tick = newest_tick;
        for entries in per_tick {
            let mut map = FxHashMap::default();
            for (key, count) in entries {
                if count > 0 {
                    *map.entry(key).or_insert(0) += count;
                    *counter.totals.entry(key).or_insert(0) += count;
                }
            }
            counter.ticks.push_back(map);
        }
        counter
    }

    /// Merges an extracted window series into this counter — the receiver
    /// half of a shard migration. Counts land in the tick slots they came
    /// from (series entries older than this counter's window expire).
    ///
    /// Adding is exact: if `key` already has counts here, the series adds
    /// on top, so `extract_key` → `merge_key` between two counters of the
    /// same window length preserves every windowed count bit-for-bit.
    ///
    /// # Panics
    /// Panics if the series is longer than the window (it cannot have come
    /// from a counter of the same length).
    pub fn merge_key(&mut self, key: K, series: &KeyWindow) {
        assert!(series.counts.len() <= self.window_ticks, "series exceeds the window");
        // Align: the receiver must cover at least the series' newest tick.
        self.advance_to(series.newest_tick);
        let newest = self.newest_tick.expect("advance_to opened the window");
        // The receiver may already be *ahead* of the donor (the donor saw
        // no events recently); entries then sit deeper in the past and may
        // have expired entirely.
        let lag = newest.since(series.newest_tick) as usize;
        let mut merged_total = 0u64;
        for (i, &count) in series.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // Position from the back of the receiver's deque.
            let back_offset = (series.counts.len() - 1 - i) + lag;
            if back_offset >= self.window_ticks {
                continue; // expired relative to the receiver's window
            }
            // Materialise empty slots for ticks the receiver never saw.
            while self.ticks.len() <= back_offset {
                self.ticks.push_front(FxHashMap::default());
            }
            let index = self.ticks.len() - 1 - back_offset;
            *self.ticks[index].entry(key).or_insert(0) += count;
            merged_total += count;
        }
        if merged_total > 0 {
            *self.totals.entry(key).or_insert(0) += merged_total;
        }
    }
}

/// A key's windowed per-tick counts, detached from its counter (see
/// [`WindowedCounter::extract_key`] / [`WindowedCounter::merge_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyWindow {
    /// The tick the last entry of `counts` belongs to.
    pub newest_tick: Tick,
    /// Per-tick counts, oldest → newest (length ≤ the donor's window).
    pub counts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.increment(Tick(0), 1);
        c.increment(Tick(0), 1);
        c.increment(Tick(1), 2);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.distinct_keys(), 2);
    }

    #[test]
    fn expiry_subtracts_old_ticks() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.increment(Tick(0), 7);
        c.increment(Tick(1), 7);
        assert_eq!(c.count(7), 2);
        c.increment(Tick(2), 7); // tick 0 expires
        assert_eq!(c.count(7), 2);
        c.advance_to(Tick(3)); // tick 1 expires
        assert_eq!(c.count(7), 1);
        c.advance_to(Tick(4)); // tick 2 expires
        assert_eq!(c.count(7), 0);
        assert_eq!(c.distinct_keys(), 0);
    }

    #[test]
    fn large_gap_clears_everything() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.increment(Tick(0), 5);
        c.advance_to(Tick(100));
        assert_eq!(c.count(5), 0);
        assert_eq!(c.total_events(), 0);
        assert_eq!(c.newest_tick(), Some(Tick(100)));
    }

    #[test]
    fn window_average_divides_by_window_length() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(4);
        c.add(Tick(0), 9, 6);
        assert_eq!(c.window_average(9), 1.5);
    }

    #[test]
    fn top_n_is_deterministic() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.add(Tick(0), 1, 5);
        c.add(Tick(0), 2, 9);
        c.add(Tick(0), 3, 5);
        c.add(Tick(0), 4, 1);
        assert_eq!(c.top_n(3), vec![(2, 9), (1, 5), (3, 5)]);
        assert_eq!(c.top_n(0), vec![]);
        assert_eq!(c.top_n(10).len(), 4);
    }

    #[test]
    fn count_in_newest_tick_is_tick_local() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.add(Tick(0), 1, 4);
        c.add(Tick(1), 1, 2);
        assert_eq!(c.count_in_newest_tick(1), 2);
        assert_eq!(c.count(1), 6);
    }

    #[test]
    fn add_zero_is_noop_but_advances() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.add(Tick(5), 1, 0);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.newest_tick(), Some(Tick(5)));
    }

    #[test]
    fn extract_then_merge_preserves_counts_and_expiry() {
        let mut donor: WindowedCounter<u32> = WindowedCounter::new(4);
        donor.add(Tick(0), 7, 2);
        donor.add(Tick(1), 7, 3);
        donor.add(Tick(3), 7, 5);
        let mut receiver: WindowedCounter<u32> = WindowedCounter::new(4);
        receiver.advance_to(Tick(3));
        receiver.add(Tick(3), 7, 1); // pre-existing counts add up exactly

        let series = donor.extract_key(7).expect("live key");
        assert_eq!(series.newest_tick, Tick(3));
        assert_eq!(donor.count(7), 0, "donor forgets the key");
        assert_eq!(donor.total_events(), 0);

        receiver.merge_key(7, &series);
        assert_eq!(receiver.count(7), 11);
        // Expiry must behave as if the counts had always lived here.
        receiver.advance_to(Tick(4)); // window is now ticks 1..=4
        assert_eq!(receiver.count(7), 9, "tick 0 expired");
        receiver.advance_to(Tick(6)); // window is now ticks 3..=6
        assert_eq!(receiver.count(7), 6, "only the merged tick-3 counts remain");
        receiver.advance_to(Tick(7));
        assert_eq!(receiver.count(7), 0);
    }

    #[test]
    fn merge_into_a_counter_that_ran_ahead_expires_old_ticks() {
        let mut donor: WindowedCounter<u32> = WindowedCounter::new(3);
        donor.add(Tick(0), 9, 4);
        donor.add(Tick(2), 9, 1);
        let series = donor.extract_key(9).unwrap();
        let mut receiver: WindowedCounter<u32> = WindowedCounter::new(3);
        receiver.advance_to(Tick(3)); // one tick ahead of the donor
        receiver.merge_key(9, &series);
        assert_eq!(receiver.count(9), 1, "tick-0 counts are already out of window");
        receiver.advance_to(Tick(5));
        assert_eq!(receiver.count(9), 0);
    }

    #[test]
    fn extract_missing_key_is_none() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.increment(Tick(0), 1);
        assert!(c.extract_key(2).is_none());
        assert_eq!(c.count(1), 1, "other keys untouched");
    }

    #[test]
    fn totals_match_brute_force_over_random_ops() {
        // Deterministic pseudo-random walk compared against a brute-force
        // recomputation from retained per-tick history.
        let window = 5usize;
        let mut c: WindowedCounter<u32> = WindowedCounter::new(window);
        let mut history: Vec<(u64, u32)> = Vec::new(); // (tick, key)
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut tick = 0u64;
        for _ in 0..2_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 10) as u32;
            if state.is_multiple_of(7) {
                tick += (state >> 60) % 3;
            }
            c.increment(Tick(tick), key);
            history.push((tick, key));

            if state.is_multiple_of(13) {
                let lo = tick.saturating_sub(window as u64 - 1);
                for probe in 0..10u32 {
                    let expected = history
                        .iter()
                        .filter(|&&(t, k)| k == probe && t >= lo && t <= tick)
                        .count() as u64;
                    assert_eq!(c.count(probe), expected, "key {probe} at tick {tick}");
                }
            }
        }
    }
}
