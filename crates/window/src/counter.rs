//! Exact per-key counts over a sliding window of ticks.

use enblogue_types::{FxHashMap, Tick};
use std::hash::Hash;

/// Exact sliding-window counter: for each key, how many events occurred in
/// the last `W` ticks.
///
/// This is the statistics operator behind seed selection (§3(i)): tag
/// popularity is the sliding-window average of per-tick document counts.
///
/// Storage is lane-based rather than map-per-tick: every live key owns one
/// `W`-long circular *count lane* in a contiguous `u64` arena, all lanes
/// sharing a single column cursor (the column of the newest tick). An
/// ingest is one hash probe plus two array writes; a tick advance rotates
/// the cursor and expires the entering column with a linear arena walk —
/// no per-tick map is allocated or dropped, which is what keeps the
/// steady-state tick close allocation-free. Running per-key totals make
/// reads O(1), exactly as before; keys whose total reaches zero leave the
/// key index and their lane returns to a free list.
#[derive(Debug, Clone)]
pub struct WindowedCounter<K: Eq + Hash + Copy> {
    window_ticks: usize,
    /// The tick the cursor column belongs to.
    newest_tick: Option<Tick>,
    /// Number of tick columns currently covered (≤ `window_ticks`); mirrors
    /// the per-tick map count of the historical layout so snapshots stay
    /// byte-identical.
    held: usize,
    /// Column of the newest tick within every lane.
    cursor: usize,
    /// Key → lane slot.
    index: FxHashMap<K, u32>,
    /// Slot → key (stale for free slots).
    keys: Vec<K>,
    /// Slot → windowed total (0 for free slots — a live key always has a
    /// positive total).
    totals: Vec<u64>,
    /// The lane arena: slot `s`'s counts live at `s*W ..= s*W + W-1`.
    /// Columns outside the held range are zero.
    lanes: Vec<u64>,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
}

impl<K: Eq + Hash + Copy> WindowedCounter<K> {
    /// A counter windowed over `window_ticks` ticks.
    ///
    /// # Panics
    /// Panics if `window_ticks == 0`.
    pub fn new(window_ticks: usize) -> Self {
        assert!(window_ticks > 0, "window must span at least one tick");
        WindowedCounter {
            window_ticks,
            newest_tick: None,
            held: 0,
            cursor: 0,
            index: FxHashMap::default(),
            keys: Vec::new(),
            totals: Vec::new(),
            lanes: Vec::new(),
            free: Vec::new(),
        }
    }

    /// The window length in ticks.
    #[inline]
    pub fn window(&self) -> usize {
        self.window_ticks
    }

    /// The arena column holding the tick `back_offset` steps before the
    /// newest one.
    #[inline]
    fn column(&self, back_offset: usize) -> usize {
        debug_assert!(back_offset < self.window_ticks);
        (self.cursor + self.window_ticks - back_offset) % self.window_ticks
    }

    /// Advances the window so its newest slot is `tick`, expiring old ticks.
    ///
    /// Must be called with non-decreasing ticks; calling with the current
    /// tick is a no-op.
    pub fn advance_to(&mut self, tick: Tick) {
        let Some(newest) = self.newest_tick else {
            self.newest_tick = Some(tick);
            self.held = self.held.max(1);
            return;
        };
        if tick <= newest {
            return;
        }
        let gap = tick.since(newest) as usize;
        if gap >= self.window_ticks {
            // Everything expires at once.
            self.index.clear();
            self.keys.clear();
            self.totals.clear();
            self.lanes.clear();
            self.free.clear();
            self.held = 1;
            self.cursor = 0;
        } else {
            for _ in 0..gap {
                self.cursor = (self.cursor + 1) % self.window_ticks;
                if self.held == self.window_ticks {
                    self.expire_column(self.cursor);
                } else {
                    // The entering column is outside the held range, hence
                    // already all-zero.
                    self.held += 1;
                }
            }
        }
        self.newest_tick = Some(tick);
    }

    /// Subtracts and zeroes column `col` across all lanes (the oldest tick
    /// leaving the window), retiring keys whose total reaches zero.
    fn expire_column(&mut self, col: usize) {
        let window = self.window_ticks;
        for slot in 0..self.totals.len() {
            let count = self.lanes[slot * window + col];
            if count == 0 {
                continue;
            }
            self.lanes[slot * window + col] = 0;
            self.totals[slot] -= count;
            if self.totals[slot] == 0 {
                self.index.remove(&self.keys[slot]);
                self.free.push(slot as u32);
            }
        }
    }

    /// The lane slot of `key`, allocating one if needed.
    fn ensure_slot(&mut self, key: K) -> usize {
        if let Some(&slot) = self.index.get(&key) {
            return slot as usize;
        }
        let slot = match self.free.pop() {
            // A freed lane is all-zero by construction (its total reached
            // zero, or it was extracted).
            Some(slot) => {
                self.keys[slot as usize] = key;
                slot as usize
            }
            None => {
                let slot = self.keys.len();
                self.keys.push(key);
                self.totals.push(0);
                self.lanes.resize(self.lanes.len() + self.window_ticks, 0);
                slot
            }
        };
        self.index.insert(key, slot as u32);
        slot
    }

    /// Adds `by` occurrences of `key` in `tick` (advancing the window).
    pub fn add(&mut self, tick: Tick, key: K, by: u64) {
        self.advance_to(tick);
        debug_assert_eq!(self.newest_tick, Some(tick).max(self.newest_tick), "add into the past");
        if by == 0 {
            return;
        }
        let slot = self.ensure_slot(key);
        self.lanes[slot * self.window_ticks + self.cursor] += by;
        self.totals[slot] += by;
    }

    /// Records one occurrence of `key` in `tick`.
    #[inline]
    pub fn increment(&mut self, tick: Tick, key: K) {
        self.add(tick, key, 1);
    }

    /// The exact count of `key` over the current window.
    #[inline]
    pub fn count(&self, key: K) -> u64 {
        self.index.get(&key).map_or(0, |&slot| self.totals[slot as usize])
    }

    /// Bulk [`WindowedCounter::count`]: writes `out[i] = count(keys[i])`
    /// for every key.
    ///
    /// This is the tick-close variant — the batched scoring loop fetches
    /// one tile's worth of windowed actuals in a single call, keeping the
    /// index probes together instead of interleaving them with scoring
    /// work. Allocation-free.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `keys`.
    pub fn counts_for_keys(&self, keys: &[K], out: &mut [u64]) {
        assert!(out.len() >= keys.len(), "output must hold one count per key");
        for (o, key) in out.iter_mut().zip(keys.iter()) {
            *o = self.index.get(key).map_or(0, |&slot| self.totals[slot as usize]);
        }
    }

    /// The count of `key` in the newest tick only.
    pub fn count_in_newest_tick(&self, key: K) -> u64 {
        self.index
            .get(&key)
            .map_or(0, |&slot| self.lanes[slot as usize * self.window_ticks + self.cursor])
    }

    /// Sliding-window average: count / window length.
    #[inline]
    pub fn window_average(&self, key: K) -> f64 {
        self.count(key) as f64 / self.window_ticks as f64
    }

    /// Number of keys with a non-zero count in the window.
    #[inline]
    pub fn distinct_keys(&self) -> usize {
        self.index.len()
    }

    /// Iterates over `(key, windowed count)` for all live keys.
    pub fn iter(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.index.iter().map(|(&key, &slot)| (key, self.totals[slot as usize]))
    }

    /// The `n` keys with the largest windowed counts, descending (ties
    /// break on the smaller key).
    ///
    /// Selects the top `n` in O(keys) before sorting only those — the same
    /// `select_nth_unstable` trick cap eviction uses, which matters when a
    /// few seeds are picked out of a large tag population every tick.
    pub fn top_n(&self, n: usize) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        if n == 0 {
            return Vec::new();
        }
        let mut all: Vec<(K, u64)> = self.iter().collect();
        // Deterministic: count desc, then key asc (a total order — keys
        // are unique).
        let cmp = |a: &(K, u64), b: &(K, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if all.len() > n {
            all.select_nth_unstable_by(n - 1, cmp);
            all.truncate(n);
        }
        all.sort_unstable_by(cmp);
        all
    }

    /// The newest tick the counter has seen.
    #[inline]
    pub fn newest_tick(&self) -> Option<Tick> {
        self.newest_tick
    }

    /// Total number of events in the window across all keys.
    pub fn total_events(&self) -> u64 {
        // Free slots hold a zero total, so the dense sum is exact.
        self.totals.iter().sum()
    }

    /// Removes `key` from the counter, returning its per-tick window
    /// series — the donor half of a shard migration.
    ///
    /// Returns `None` if the key has no live counts (nothing to move).
    pub fn extract_key(&mut self, key: K) -> Option<KeyWindow> {
        let slot = self.index.remove(&key)? as usize;
        let window = self.window_ticks;
        let mut counts = Vec::with_capacity(self.held);
        for back_offset in (0..self.held).rev() {
            let col = self.column(back_offset);
            counts.push(self.lanes[slot * window + col]);
            self.lanes[slot * window + col] = 0;
        }
        debug_assert_eq!(counts.iter().sum::<u64>(), self.totals[slot], "totals out of sync");
        self.totals[slot] = 0;
        self.free.push(slot as u32);
        Some(KeyWindow {
            newest_tick: self.newest_tick.expect("live counts imply an open window"),
            counts,
        })
    }

    /// Releases excess capacity and compacts the lane arena onto the live
    /// keys. Call after bulk [`WindowedCounter::extract_key`] removals (a
    /// shard migration): expiry walks every lane *slot*, so a donor that
    /// keeps the lanes of its departed keys pays for them on every
    /// subsequent tick.
    pub fn shrink_to_fit(&mut self) {
        let window = self.window_ticks;
        let live = self.index.len();
        let mut keys = Vec::with_capacity(live);
        let mut totals = Vec::with_capacity(live);
        let mut lanes = Vec::with_capacity(live * window);
        for slot in 0..self.totals.len() {
            if self.totals[slot] == 0 {
                continue;
            }
            let new_slot = keys.len() as u32;
            keys.push(self.keys[slot]);
            totals.push(self.totals[slot]);
            lanes.extend_from_slice(&self.lanes[slot * window..(slot + 1) * window]);
            *self.index.get_mut(&self.keys[slot]).expect("live slot is indexed") = new_slot;
        }
        self.keys = keys;
        self.totals = totals;
        self.lanes = lanes;
        self.free.clear();
        self.free.shrink_to_fit();
        self.index.shrink_to_fit();
    }

    /// Exports the per-tick count entries, oldest → newest — the counter's
    /// full dehydrated state for snapshot/restore (see
    /// [`WindowedCounter::from_per_tick_counts`]). Inner vectors are in
    /// arbitrary key order; serializers that need stable bytes sort them
    /// by key. Only non-zero counts are exported (a key never has a stored
    /// zero in the historical map layout this format mirrors).
    pub fn per_tick_counts(&self) -> Vec<Vec<(K, u64)>> {
        let window = self.window_ticks;
        (0..self.held)
            .rev()
            .map(|back_offset| {
                let col = self.column(back_offset);
                self.index
                    .iter()
                    .filter_map(|(&key, &slot)| {
                        let count = self.lanes[slot as usize * window + col];
                        (count > 0).then_some((key, count))
                    })
                    .collect()
            })
            .collect()
    }

    /// Rehydrates a counter from [`WindowedCounter::per_tick_counts`]
    /// output plus the newest tick. Totals are rebuilt exactly (integer
    /// sums), so a round-trip preserves every windowed count bit-for-bit.
    ///
    /// # Panics
    /// Panics if `window_ticks` is zero, more tick maps than the window
    /// are supplied, or tick maps exist without a newest tick.
    pub fn from_per_tick_counts(
        window_ticks: usize,
        newest_tick: Option<Tick>,
        per_tick: Vec<Vec<(K, u64)>>,
    ) -> Self {
        assert!(per_tick.len() <= window_ticks, "more tick maps than the window holds");
        assert!(
            newest_tick.is_some() || per_tick.is_empty(),
            "tick maps require a newest tick to anchor them"
        );
        let mut counter = WindowedCounter::new(window_ticks);
        counter.newest_tick = newest_tick;
        counter.held = per_tick.len();
        counter.cursor = per_tick.len().saturating_sub(1);
        for (offset, entries) in per_tick.into_iter().enumerate() {
            for (key, count) in entries {
                if count > 0 {
                    let slot = counter.ensure_slot(key);
                    counter.lanes[slot * window_ticks + offset] += count;
                    counter.totals[slot] += count;
                }
            }
        }
        counter
    }

    /// Merges an extracted window series into this counter — the receiver
    /// half of a shard migration. Counts land in the tick slots they came
    /// from (series entries older than this counter's window expire).
    ///
    /// Adding is exact: if `key` already has counts here, the series adds
    /// on top, so `extract_key` → `merge_key` between two counters of the
    /// same window length preserves every windowed count bit-for-bit.
    ///
    /// # Panics
    /// Panics if the series is longer than the window (it cannot have come
    /// from a counter of the same length).
    pub fn merge_key(&mut self, key: K, series: &KeyWindow) {
        assert!(series.counts.len() <= self.window_ticks, "series exceeds the window");
        // Align: the receiver must cover at least the series' newest tick.
        self.advance_to(series.newest_tick);
        let newest = self.newest_tick.expect("advance_to opened the window");
        // The receiver may already be *ahead* of the donor (the donor saw
        // no events recently); entries then sit deeper in the past and may
        // have expired entirely.
        let lag = newest.since(series.newest_tick) as usize;
        let mut merged_total = 0u64;
        for (i, &count) in series.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let back_offset = (series.counts.len() - 1 - i) + lag;
            if back_offset >= self.window_ticks {
                continue; // expired relative to the receiver's window
            }
            // Cover ticks the receiver never saw (their columns are zero).
            self.held = self.held.max(back_offset + 1);
            let slot = self.ensure_slot(key);
            let at = slot * self.window_ticks + self.column(back_offset);
            self.lanes[at] += count;
            self.totals[slot] += count;
            merged_total += count;
        }
        debug_assert!(merged_total == 0 || self.count(key) >= merged_total);
    }
}

/// A key's windowed per-tick counts, detached from its counter (see
/// [`WindowedCounter::extract_key`] / [`WindowedCounter::merge_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyWindow {
    /// The tick the last entry of `counts` belongs to.
    pub newest_tick: Tick,
    /// Per-tick counts, oldest → newest (length ≤ the donor's window).
    pub counts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.increment(Tick(0), 1);
        c.increment(Tick(0), 1);
        c.increment(Tick(1), 2);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.distinct_keys(), 2);
    }

    #[test]
    fn expiry_subtracts_old_ticks() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.increment(Tick(0), 7);
        c.increment(Tick(1), 7);
        assert_eq!(c.count(7), 2);
        c.increment(Tick(2), 7); // tick 0 expires
        assert_eq!(c.count(7), 2);
        c.advance_to(Tick(3)); // tick 1 expires
        assert_eq!(c.count(7), 1);
        c.advance_to(Tick(4)); // tick 2 expires
        assert_eq!(c.count(7), 0);
        assert_eq!(c.distinct_keys(), 0);
    }

    #[test]
    fn bulk_counts_match_single_lookups() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.add(Tick(0), 1, 4);
        c.add(Tick(1), 2, 7);
        c.add(Tick(2), 1, 1);
        let keys = [1u32, 2, 3, 1];
        let mut out = [u64::MAX; 5];
        c.counts_for_keys(&keys, &mut out);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(out[i], c.count(k));
        }
        assert_eq!(out[4], u64::MAX, "slots past the keys are untouched");
        c.counts_for_keys(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "one count per key")]
    fn bulk_counts_reject_short_output() {
        let c: WindowedCounter<u32> = WindowedCounter::new(2);
        let mut out = [0u64; 1];
        c.counts_for_keys(&[1, 2], &mut out);
    }

    #[test]
    fn large_gap_clears_everything() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.increment(Tick(0), 5);
        c.advance_to(Tick(100));
        assert_eq!(c.count(5), 0);
        assert_eq!(c.total_events(), 0);
        assert_eq!(c.newest_tick(), Some(Tick(100)));
    }

    #[test]
    fn window_average_divides_by_window_length() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(4);
        c.add(Tick(0), 9, 6);
        assert_eq!(c.window_average(9), 1.5);
    }

    #[test]
    fn top_n_is_deterministic() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.add(Tick(0), 1, 5);
        c.add(Tick(0), 2, 9);
        c.add(Tick(0), 3, 5);
        c.add(Tick(0), 4, 1);
        assert_eq!(c.top_n(3), vec![(2, 9), (1, 5), (3, 5)]);
        assert_eq!(c.top_n(0), vec![]);
        assert_eq!(c.top_n(10).len(), 4);
        assert_eq!(c.top_n(10), vec![(2, 9), (1, 5), (3, 5), (4, 1)]);
    }

    #[test]
    fn top_n_selection_matches_full_sort() {
        // The select-then-sort fast path must agree with a plain full sort
        // for every n, including heavy count ties.
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        for key in 0..50u32 {
            c.add(Tick(0), key, (key % 7) as u64 + 1);
        }
        let mut full: Vec<(u32, u64)> = c.iter().collect();
        full.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for n in [1usize, 3, 7, 49, 50, 60] {
            let mut expected = full.clone();
            expected.truncate(n);
            assert_eq!(c.top_n(n), expected, "top_n({n})");
        }
    }

    #[test]
    fn count_in_newest_tick_is_tick_local() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        c.add(Tick(0), 1, 4);
        c.add(Tick(1), 1, 2);
        assert_eq!(c.count_in_newest_tick(1), 2);
        assert_eq!(c.count(1), 6);
    }

    #[test]
    fn add_zero_is_noop_but_advances() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.add(Tick(5), 1, 0);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.newest_tick(), Some(Tick(5)));
    }

    #[test]
    fn freed_lanes_are_reused_cleanly() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.add(Tick(0), 1, 3);
        c.advance_to(Tick(2)); // key 1 fully expires, lane freed
        assert_eq!(c.distinct_keys(), 0);
        // A different key must land on the recycled lane with no residue.
        c.add(Tick(2), 2, 5);
        assert_eq!(c.count(2), 5);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.count_in_newest_tick(2), 5);
        assert_eq!(c.total_events(), 5);
    }

    #[test]
    fn extract_then_merge_preserves_counts_and_expiry() {
        let mut donor: WindowedCounter<u32> = WindowedCounter::new(4);
        donor.add(Tick(0), 7, 2);
        donor.add(Tick(1), 7, 3);
        donor.add(Tick(3), 7, 5);
        let mut receiver: WindowedCounter<u32> = WindowedCounter::new(4);
        receiver.advance_to(Tick(3));
        receiver.add(Tick(3), 7, 1); // pre-existing counts add up exactly

        let series = donor.extract_key(7).expect("live key");
        assert_eq!(series.newest_tick, Tick(3));
        assert_eq!(donor.count(7), 0, "donor forgets the key");
        assert_eq!(donor.total_events(), 0);

        receiver.merge_key(7, &series);
        assert_eq!(receiver.count(7), 11);
        // Expiry must behave as if the counts had always lived here.
        receiver.advance_to(Tick(4)); // window is now ticks 1..=4
        assert_eq!(receiver.count(7), 9, "tick 0 expired");
        receiver.advance_to(Tick(6)); // window is now ticks 3..=6
        assert_eq!(receiver.count(7), 6, "only the merged tick-3 counts remain");
        receiver.advance_to(Tick(7));
        assert_eq!(receiver.count(7), 0);
    }

    #[test]
    fn merge_into_a_counter_that_ran_ahead_expires_old_ticks() {
        let mut donor: WindowedCounter<u32> = WindowedCounter::new(3);
        donor.add(Tick(0), 9, 4);
        donor.add(Tick(2), 9, 1);
        let series = donor.extract_key(9).unwrap();
        let mut receiver: WindowedCounter<u32> = WindowedCounter::new(3);
        receiver.advance_to(Tick(3)); // one tick ahead of the donor
        receiver.merge_key(9, &series);
        assert_eq!(receiver.count(9), 1, "tick-0 counts are already out of window");
        receiver.advance_to(Tick(5));
        assert_eq!(receiver.count(9), 0);
    }

    #[test]
    fn merge_materialises_older_ticks_the_receiver_never_saw() {
        let mut donor: WindowedCounter<u32> = WindowedCounter::new(4);
        donor.add(Tick(0), 3, 2);
        donor.add(Tick(2), 3, 1);
        let series = donor.extract_key(3).unwrap();
        // A receiver whose window only just opened at the donor's newest
        // tick: the merge must back-fill the older tick slots.
        let mut receiver: WindowedCounter<u32> = WindowedCounter::new(4);
        receiver.advance_to(Tick(2));
        receiver.merge_key(3, &series);
        assert_eq!(receiver.count(3), 3);
        assert_eq!(receiver.per_tick_counts().len(), 3, "ticks 0..=2 covered");
        receiver.advance_to(Tick(3)); // window now 0..=3: nothing expires yet
        assert_eq!(receiver.count(3), 3);
        receiver.advance_to(Tick(4)); // tick 0 expires
        assert_eq!(receiver.count(3), 1);
    }

    #[test]
    fn extract_missing_key_is_none() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(2);
        c.increment(Tick(0), 1);
        assert!(c.extract_key(2).is_none());
        assert_eq!(c.count(1), 1, "other keys untouched");
    }

    #[test]
    fn per_tick_round_trip_preserves_everything() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(4);
        c.add(Tick(1), 1, 2);
        c.add(Tick(2), 2, 3);
        c.advance_to(Tick(4));
        let per_tick = c.per_tick_counts();
        assert_eq!(per_tick.len(), 4, "ticks 1..=4 held");
        let restored = WindowedCounter::from_per_tick_counts(4, c.newest_tick(), per_tick);
        assert_eq!(restored.count(1), 2);
        assert_eq!(restored.count(2), 3);
        assert_eq!(restored.distinct_keys(), c.distinct_keys());
        assert_eq!(restored.total_events(), c.total_events());
        assert_eq!(restored.newest_tick(), c.newest_tick());
        // Expiry continues exactly where the original would.
        let mut restored = restored;
        let mut original = c;
        for tick in 5..9u64 {
            restored.advance_to(Tick(tick));
            original.advance_to(Tick(tick));
            assert_eq!(restored.count(1), original.count(1), "key 1 at tick {tick}");
            assert_eq!(restored.count(2), original.count(2), "key 2 at tick {tick}");
        }
    }

    #[test]
    fn shrink_to_fit_compacts_and_keeps_counts() {
        let mut c: WindowedCounter<u32> = WindowedCounter::new(3);
        for key in 0..20u32 {
            c.add(Tick(0), key, key as u64 + 1);
        }
        for key in 0..15u32 {
            c.extract_key(key);
        }
        c.shrink_to_fit();
        assert_eq!(c.distinct_keys(), 5);
        for key in 15..20u32 {
            assert_eq!(c.count(key), key as u64 + 1);
        }
        c.advance_to(Tick(3));
        assert_eq!(c.total_events(), 0, "expiry still works on the compacted arena");
    }

    #[test]
    fn totals_match_brute_force_over_random_ops() {
        // Deterministic pseudo-random walk compared against a brute-force
        // recomputation from retained per-tick history.
        let window = 5usize;
        let mut c: WindowedCounter<u32> = WindowedCounter::new(window);
        let mut history: Vec<(u64, u32)> = Vec::new(); // (tick, key)
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut tick = 0u64;
        for _ in 0..2_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 10) as u32;
            if state.is_multiple_of(7) {
                tick += (state >> 60) % 3;
            }
            c.increment(Tick(tick), key);
            history.push((tick, key));

            if state.is_multiple_of(13) {
                let lo = tick.saturating_sub(window as u64 - 1);
                for probe in 0..10u32 {
                    let expected = history
                        .iter()
                        .filter(|&&(t, k)| k == probe && t >= lo && t <= tick)
                        .count() as u64;
                    assert_eq!(c.count(probe), expected, "key {probe} at tick {tick}");
                }
            }
        }
    }
}
