//! Sliding-window primitives and stream synopses for EnBlogue.
//!
//! The paper's engine exposes "plug-in options for sketching operators that
//! map stream items into synopses, statistics operators, …" (§4.1). This
//! crate provides those building blocks:
//!
//! * [`RingBuffer`] — fixed-capacity circular buffer,
//! * [`TickSeries`] — tick-aligned sliding window over per-tick values with
//!   O(1) aggregates,
//! * [`WindowedCounter`] — exact per-key counts over the last *W* ticks
//!   (implements the "sliding-window average on the document stream" used
//!   for seed selection, §3(i)),
//! * [`ShardedWindowedCounter`] — the same, hash-sharded into *N*
//!   independent counters so writers route keys and tick close can fan out
//!   shard-parallel (the pair-count substrate of the sharded registry),
//! * [`SlidingStats`] — windowed mean/variance for volatility measures,
//! * [`DecayValue`] — exponentially decaying score with configurable
//!   half-life (the "exponential decline factor with a half life of
//!   approximately 2 days", §3(iii)),
//! * [`CountMinSketch`] — approximate frequencies in sub-linear space,
//! * [`SpaceSaving`] — approximate heavy hitters (sketch-based seed
//!   selection alternative; ablation P5),
//! * [`ExponentialHistogram`] — DGIM-style approximate windowed counting,
//! * [`HyperLogLog`] — approximate distinct counting in kilobytes,
//! * [`TopK`] — bounded score-ordered ranking maintenance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cms;
pub mod counter;
pub mod decay;
pub mod exphist;
pub mod hll;
pub mod ring;
pub mod sharded;
pub mod spacesaving;
pub mod stats;
pub mod tick_series;
pub mod topk;

pub use cms::CountMinSketch;
pub use counter::{KeyWindow, WindowedCounter};
pub use decay::{DecayMemo, DecayValue};
pub use exphist::ExponentialHistogram;
pub use hll::HyperLogLog;
pub use ring::RingBuffer;
pub use sharded::ShardedWindowedCounter;
pub use spacesaving::SpaceSaving;
pub use stats::SlidingStats;
pub use tick_series::TickSeries;
pub use topk::TopK;
