//! Information-theoretic similarity of tag/term usage.
//!
//! §3(ii): "In the more complex case of documents being represented by
//! their entire tag sets or term distributions, we can apply
//! information-theory measures like relative entropy to assess the
//! similarity of tag/term usage." A [`TermDistribution`] aggregates the
//! terms of all window documents carrying a tag; two tags whose term
//! distributions converge are talking about the same thing.

use enblogue_types::{FxHashMap, TagId};

/// A probability distribution over terms, built from term counts.
#[derive(Debug, Clone, Default)]
pub struct TermDistribution {
    counts: FxHashMap<TagId, u64>,
    total: u64,
}

impl TermDistribution {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` occurrences of `term`.
    pub fn add(&mut self, term: TagId, by: u64) {
        if by == 0 {
            return;
        }
        *self.counts.entry(term).or_insert(0) += by;
        self.total += by;
    }

    /// Removes `by` occurrences of `term` (used when a tick expires from
    /// the window).
    ///
    /// # Panics
    /// Panics in debug builds if more occurrences are removed than were
    /// added; release builds saturate.
    pub fn remove(&mut self, term: TagId, by: u64) {
        if by == 0 {
            return;
        }
        match self.counts.get_mut(&term) {
            Some(count) => {
                debug_assert!(*count >= by, "removing more of term {term} than present");
                let removed = by.min(*count);
                *count -= removed;
                if *count == 0 {
                    self.counts.remove(&term);
                }
                self.total -= removed.min(self.total);
            }
            None => debug_assert!(false, "removing absent term {term}"),
        }
    }

    /// Total number of term occurrences.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct terms.
    #[inline]
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Whether the distribution holds no mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The empirical probability of `term`.
    pub fn probability(&self, term: TagId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.get(&term).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Iterates `(term, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, u64)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Kullback–Leibler divergence `KL(self ‖ other)` in nats, with add-λ
    /// smoothing over the union vocabulary so the result is finite.
    ///
    /// Not symmetric; for a symmetric bounded measure use
    /// [`jensen_shannon`](Self::jensen_shannon). Returns 0 when either
    /// distribution is empty (no evidence ⇒ no divergence signal).
    pub fn kl_divergence(&self, other: &TermDistribution, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "smoothing constant must be positive for finite KL");
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        // Union vocabulary.
        let vocab: Vec<TagId> = {
            let mut v: Vec<TagId> =
                self.counts.keys().chain(other.counts.keys()).copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let v = vocab.len() as f64;
        let self_total = self.total as f64 + lambda * v;
        let other_total = other.total as f64 + lambda * v;
        let mut kl = 0.0;
        for term in vocab {
            let p = (self.counts.get(&term).copied().unwrap_or(0) as f64 + lambda) / self_total;
            let q = (other.counts.get(&term).copied().unwrap_or(0) as f64 + lambda) / other_total;
            kl += p * (p / q).ln();
        }
        kl.max(0.0)
    }

    /// Jensen–Shannon divergence in nats; symmetric and bounded by `ln 2`.
    pub fn jensen_shannon(&self, other: &TermDistribution) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let vocab: Vec<TagId> = {
            let mut v: Vec<TagId> =
                self.counts.keys().chain(other.counts.keys()).copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut jsd = 0.0;
        for term in vocab {
            let p = self.probability(term);
            let q = other.probability(term);
            let m = 0.5 * (p + q);
            if p > 0.0 {
                jsd += 0.5 * p * (p / m).ln();
            }
            if q > 0.0 {
                jsd += 0.5 * q * (q / m).ln();
            }
        }
        jsd.max(0.0)
    }

    /// Similarity in `[0, 1]` derived from Jensen–Shannon divergence:
    /// `1 − JSD/ln 2`. 1 = identical term usage, 0 = disjoint.
    ///
    /// This is the drop-in alternative to the set-overlap measures of
    /// [`crate::correlation`]: a *rise* in term-usage similarity of two
    /// tags is the distributional form of an emergent pair topic.
    pub fn js_similarity(&self, other: &TermDistribution) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        (1.0 - self.jensen_shannon(other) / std::f64::consts::LN_2).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TagId {
        TagId(i)
    }

    fn dist(pairs: &[(u32, u64)]) -> TermDistribution {
        let mut d = TermDistribution::new();
        for &(term, count) in pairs {
            d.add(t(term), count);
        }
        d
    }

    #[test]
    fn probabilities_normalise() {
        let d = dist(&[(1, 3), (2, 1)]);
        assert_eq!(d.total(), 4);
        assert_eq!(d.probability(t(1)), 0.75);
        assert_eq!(d.probability(t(2)), 0.25);
        assert_eq!(d.probability(t(3)), 0.0);
        assert_eq!(d.distinct_terms(), 2);
    }

    #[test]
    fn remove_undoes_add() {
        let mut d = dist(&[(1, 3), (2, 2)]);
        d.remove(t(1), 3);
        assert_eq!(d.probability(t(1)), 0.0);
        assert_eq!(d.total(), 2);
        assert_eq!(d.distinct_terms(), 1);
        d.remove(t(2), 2);
        assert!(d.is_empty());
    }

    #[test]
    fn kl_zero_for_identical() {
        let d1 = dist(&[(1, 5), (2, 5)]);
        let d2 = dist(&[(1, 5), (2, 5)]);
        assert!(d1.kl_divergence(&d2, 0.5) < 1e-9);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let p = dist(&[(1, 9), (2, 1)]);
        let q = dist(&[(1, 1), (2, 9)]);
        let pq = p.kl_divergence(&q, 0.5);
        let qp = q.kl_divergence(&p, 0.5);
        assert!(pq > 0.0);
        // These particular distributions are mirror images, so the two
        // directions agree; asymmetry shows with unequal totals/vocab.
        let r = dist(&[(1, 1), (2, 1), (3, 8)]);
        assert!((p.kl_divergence(&r, 0.5) - r.kl_divergence(&p, 0.5)).abs() > 1e-6);
        assert!(qp > 0.0);
    }

    #[test]
    fn kl_finite_on_disjoint_support() {
        let p = dist(&[(1, 10)]);
        let q = dist(&[(2, 10)]);
        let kl = p.kl_divergence(&q, 0.5);
        assert!(kl.is_finite());
        assert!(kl > 0.5, "disjoint supports should diverge strongly");
    }

    #[test]
    fn jsd_symmetric_and_bounded() {
        let p = dist(&[(1, 10), (2, 3)]);
        let q = dist(&[(2, 5), (3, 7)]);
        let pq = p.jensen_shannon(&q);
        let qp = q.jensen_shannon(&p);
        assert!((pq - qp).abs() < 1e-12);
        assert!(pq > 0.0);
        assert!(pq <= std::f64::consts::LN_2 + 1e-12);
    }

    #[test]
    fn jsd_maximal_on_disjoint_support() {
        let p = dist(&[(1, 5)]);
        let q = dist(&[(2, 5)]);
        assert!((p.jensen_shannon(&q) - std::f64::consts::LN_2).abs() < 1e-9);
        assert!(p.js_similarity(&q) < 1e-9);
    }

    #[test]
    fn js_similarity_one_for_identical() {
        let p = dist(&[(1, 2), (2, 8)]);
        let q = dist(&[(1, 4), (2, 16)]); // same distribution, double mass
        assert!((p.js_similarity(&q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_distributions_are_neutral() {
        let empty = TermDistribution::new();
        let d = dist(&[(1, 3)]);
        assert_eq!(empty.kl_divergence(&d, 0.5), 0.0);
        assert_eq!(d.jensen_shannon(&empty), 0.0);
        assert_eq!(d.js_similarity(&empty), 0.0);
    }

    #[test]
    fn similarity_rises_as_usage_converges() {
        // Simulates an emergent topic: tag B's term usage drifts towards A's.
        let a = dist(&[(1, 10), (2, 10), (3, 10)]);
        let b_far = dist(&[(4, 10), (5, 10), (6, 10)]);
        let b_mid = dist(&[(1, 5), (2, 5), (5, 10), (6, 10)]);
        let b_near = dist(&[(1, 9), (2, 9), (3, 9), (6, 3)]);
        let s_far = a.js_similarity(&b_far);
        let s_mid = a.js_similarity(&b_mid);
        let s_near = a.js_similarity(&b_near);
        assert!(s_far < s_mid && s_mid < s_near, "{s_far} < {s_mid} < {s_near}");
    }

    #[test]
    #[should_panic(expected = "smoothing constant must be positive")]
    fn kl_requires_positive_smoothing() {
        let p = dist(&[(1, 1)]);
        let q = dist(&[(2, 1)]);
        let _ = p.kl_divergence(&q, 0.0);
    }
}
