//! One-step-ahead forecasters for correlation series.
//!
//! §3(iii): "at any point in time we use the previous correlation values
//! and try to predict the current ones. If a predicted value is far away
//! from the real one then the topic is considered to be emergent and the
//! prediction error is used as a ranking criterion."
//!
//! All predictors are *stateless over the supplied history*: given the
//! window of previous correlation values (oldest → newest, excluding the
//! value being predicted) they return the forecast for the next value.
//! This makes them trivially pluggable as "shift prediction operators"
//! (§4.1) and exactly reproducible.

use serde::{Deserialize, Serialize};

/// A correlation history exposed as up to two contiguous slices (oldest →
/// newest), so ring-resident histories can be read **in place**.
///
/// The slab pair storage keeps every history in a strided arena ring; a
/// full ring is two contiguous runs (`head` = the older run, `tail` = the
/// wrapped newer run). Predictors consume this view directly, which is
/// what lets the tick-close scoring loop run without copying each history
/// into a scratch `Vec` first. A plain slice is the `tail.is_empty()`
/// special case ([`SeriesView::contiguous`]), and every accessor iterates
/// values in exactly the order the equivalent concatenated slice would —
/// predictions are bit-identical between the two representations.
#[derive(Debug, Clone, Copy)]
pub struct SeriesView<'a> {
    head: &'a [f64],
    tail: &'a [f64],
}

impl<'a> SeriesView<'a> {
    /// A view over `head` followed by `tail` (both oldest → newest).
    #[inline]
    pub fn new(head: &'a [f64], tail: &'a [f64]) -> Self {
        SeriesView { head, tail }
    }

    /// A view over one contiguous slice.
    #[inline]
    pub fn contiguous(values: &'a [f64]) -> Self {
        SeriesView { head: values, tail: &[] }
    }

    /// Number of values in the series.
    #[inline]
    pub fn len(self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether the series holds no values.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.head.is_empty() && self.tail.is_empty()
    }

    /// The value `i` steps from the oldest.
    #[inline]
    pub fn get(self, i: usize) -> Option<f64> {
        if i < self.head.len() {
            Some(self.head[i])
        } else {
            self.tail.get(i - self.head.len()).copied()
        }
    }

    /// The newest value.
    #[inline]
    pub fn last(self) -> Option<f64> {
        self.tail.last().or_else(|| self.head.last()).copied()
    }

    /// The view over the newest `n` values (the whole series if shorter).
    #[inline]
    pub fn suffix(self, n: usize) -> SeriesView<'a> {
        let skip = self.len().saturating_sub(n);
        if skip <= self.head.len() {
            SeriesView { head: &self.head[skip..], tail: self.tail }
        } else {
            SeriesView { head: &[], tail: &self.tail[skip - self.head.len()..] }
        }
    }

    /// Iterates oldest → newest.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = f64> + 'a {
        self.head.iter().chain(self.tail.iter()).copied()
    }

    /// Splits off the oldest value, returning it and the rest.
    #[inline]
    pub fn split_first(self) -> Option<(f64, SeriesView<'a>)> {
        match self.head.split_first() {
            Some((&first, rest)) => Some((first, SeriesView { head: rest, tail: self.tail })),
            None => self
                .tail
                .split_first()
                .map(|(&first, rest)| (first, SeriesView { head: rest, tail: &[] })),
        }
    }
}

/// Number of pair lanes a batched scoring tile holds.
///
/// Eight `f64` lanes are one cache line per time step in the time-major
/// tile layout, and wide enough to fill 2×AVX2 / 1×AVX-512 vectors when
/// the per-lane recurrences autovectorize across lanes.
pub const LANES: usize = 8;

/// A tile of [`LANES`] equal-length histories in **time-major** layout:
/// the value of lane `l` at step `t` (oldest → newest) lives at
/// `values[t * LANES + l]`.
///
/// This is the gather target of the batched tick close: the slab close
/// loop copies up to [`LANES`] ring-resident histories (rotation already
/// normalised away — each lane is written oldest → newest) into one
/// contiguous scratch buffer, then hands the tile to
/// [`Predictor::predict_batch`]. Time-major order is what lets recurrence
/// predictors (EWMA, Holt) vectorize: the time loop stays outer and
/// sequential per lane — preserving the scalar operation order bit for
/// bit — while the inner [`LANES`]-wide loop carries independent lanes.
#[derive(Debug, Clone, Copy)]
pub struct HistoryTile<'a> {
    values: &'a [f64],
    len: usize,
}

impl<'a> HistoryTile<'a> {
    /// A tile over `len` time steps of [`LANES`] lanes each.
    ///
    /// # Panics
    /// Panics unless `values.len() == len * LANES`.
    #[inline]
    pub fn new(values: &'a [f64], len: usize) -> Self {
        assert_eq!(values.len(), len * LANES, "time-major tile must hold len * LANES values");
        HistoryTile { values, len }
    }

    /// Shared history length of every lane.
    #[inline]
    pub fn len(self) -> usize {
        self.len
    }

    /// Whether the lanes hold no values.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The [`LANES`]-wide row of time step `t` (0 = oldest).
    ///
    /// Returned as a fixed-size array reference so kernel inner loops are
    /// bounds-check-free.
    #[inline]
    pub fn row(self, t: usize) -> &'a [f64; LANES] {
        self.values[t * LANES..(t + 1) * LANES].try_into().expect("row is LANES wide")
    }

    /// The value of `lane` at step `t` — the reference-path accessor.
    #[inline]
    pub fn lane_value(self, t: usize, lane: usize) -> f64 {
        self.values[t * LANES + lane]
    }
}

/// A one-step-ahead forecaster over a correlation series.
pub trait Predictor: Send + Sync {
    /// Predicts the next value from `history` (oldest → newest), supplied
    /// as a possibly-split [`SeriesView`] so ring-buffer histories are read
    /// in place.
    ///
    /// Returns `None` when the history is too short to say anything; the
    /// shift detector treats that as "no alarm" rather than a zero
    /// prediction, so brand-new pairs don't look emergent for free.
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64>;

    /// [`Predictor::predict_view`] over one contiguous slice.
    fn predict(&self, history: &[f64]) -> Option<f64> {
        self.predict_view(SeriesView::contiguous(history))
    }

    /// Batched [`Predictor::predict_view`] over a time-major tile of
    /// [`LANES`] equal-length histories.
    ///
    /// Writes one prediction per lane into `out` and returns `true`, or
    /// returns `false` — leaving `out` untouched — when the shared
    /// history length is below [`Predictor::min_history`] (the batched
    /// spelling of the scalar path's `None`; lanes share one length, so
    /// the gate is uniform across the tile).
    ///
    /// Contract: `out[l]` must be **bit-identical** to `predict_view`
    /// over lane `l`'s values. Lanes are independent — implementations
    /// vectorize *across* lanes but never reassociate any per-lane
    /// reduction, so tiling is invisible in rankings.
    ///
    /// The default implementation delegates lane by lane to
    /// [`Predictor::predict_view`] through a scratch copy — correct for
    /// any predictor, but allocating; the built-in predictors override it
    /// with lane-parallel kernels.
    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.len() < self.min_history() {
            return false;
        }
        let mut lane_buf = vec![0.0; tile.len()];
        for (lane, out_slot) in out.iter_mut().enumerate() {
            for (t, slot) in lane_buf.iter_mut().enumerate() {
                *slot = tile.lane_value(t, lane);
            }
            match self.predict_view(SeriesView::contiguous(&lane_buf)) {
                Some(v) => *out_slot = v,
                None => return false,
            }
        }
        true
    }

    /// Minimum history length required for a prediction.
    fn min_history(&self) -> usize;

    /// Short identifier for experiment output.
    fn name(&self) -> &'static str;
}

/// Predicts the last observed value (naïve / random-walk forecaster).
#[derive(Debug, Clone, Copy, Default)]
pub struct LastValue;

impl Predictor for LastValue {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        history.last()
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.is_empty() {
            return false;
        }
        *out = *tile.row(tile.len() - 1);
        true
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "last"
    }
}

/// Predicts the mean of the last `window` values.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// A moving average over `window` trailing values.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "moving-average window must be positive");
        MovingAverage { window }
    }
}

/// The trailing `window` of `history` and its mean — the window walk
/// shared by [`MovingAverage`] and [`LinearRegression`] (one sequential
/// left-to-right sum, so both stay bit-identical to their batched twins).
#[inline]
fn tail_mean(history: SeriesView<'_>, window: usize) -> (SeriesView<'_>, f64) {
    let tail = history.suffix(window);
    (tail, tail.iter().sum::<f64>() / tail.len() as f64)
}

impl Predictor for MovingAverage {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        Some(tail_mean(history, self.window).1)
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.is_empty() {
            return false;
        }
        let take = tile.len().min(self.window);
        let start = tile.len() - take;
        let mut acc = [0.0f64; LANES];
        for t in start..tile.len() {
            let row = tile.row(t);
            for l in 0..LANES {
                acc[l] += row[l];
            }
        }
        let n = take as f64;
        for l in 0..LANES {
            out[l] = acc[l] / n;
        }
        true
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "ma"
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// Higher `alpha` weights recent values more (α = 1 degenerates to
/// [`LastValue`]).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha }
    }
}

impl Predictor for Ewma {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        let (first, rest) = history.split_first()?;
        let mut level = first;
        for v in rest.iter() {
            level = self.alpha * v + (1.0 - self.alpha) * level;
        }
        Some(level)
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.is_empty() {
            return false;
        }
        // Time stays the outer, sequential loop — each lane runs the
        // exact scalar recurrence; only the lanes are parallel.
        let mut level = *tile.row(0);
        for t in 1..tile.len() {
            let row = tile.row(t);
            for l in 0..LANES {
                level[l] = self.alpha * row[l] + (1.0 - self.alpha) * level[l];
            }
        }
        *out = level;
        true
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Holt's double exponential smoothing: level + trend.
///
/// Tracks gradual drifts so only *sudden* jumps register as prediction
/// error — exactly the paper's "a shift is sudden if it cannot be
/// predicted using the previous correlation values".
#[derive(Debug, Clone, Copy)]
pub struct Holt {
    alpha: f64,
    beta: f64,
}

impl Holt {
    /// Holt smoothing with level factor `alpha` and trend factor `beta`,
    /// both in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Holt { alpha, beta }
    }
}

impl Predictor for Holt {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.len() < 2 {
            return None;
        }
        let first = history.get(0).expect("len checked");
        let second = history.get(1).expect("len checked");
        let mut level = first;
        let mut trend = second - first;
        for v in history.iter().skip(1) {
            let prev_level = level;
            level = self.alpha * v + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        Some(level + trend)
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.len() < 2 {
            return false;
        }
        let first = tile.row(0);
        let second = tile.row(1);
        let mut level = *first;
        let mut trend = [0.0f64; LANES];
        for l in 0..LANES {
            trend[l] = second[l] - first[l];
        }
        // Matches the scalar loop, which starts from index 1 (the second
        // value is smoothed into the state it also initialised).
        for t in 1..tile.len() {
            let row = tile.row(t);
            for l in 0..LANES {
                let prev_level = level[l];
                level[l] = self.alpha * row[l] + (1.0 - self.alpha) * (level[l] + trend[l]);
                trend[l] = self.beta * (level[l] - prev_level) + (1.0 - self.beta) * trend[l];
            }
        }
        for l in 0..LANES {
            out[l] = level[l] + trend[l];
        }
        true
    }

    fn min_history(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Ordinary least-squares line over the last `window` values, extrapolated
/// one step.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegression {
    window: usize,
}

impl LinearRegression {
    /// OLS over the trailing `window` values (≥ 2).
    ///
    /// # Panics
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "regression needs at least two points");
        LinearRegression { window }
    }
}

impl Predictor for LinearRegression {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.len() < 2 {
            return None;
        }
        let (tail, y_mean) = tail_mean(history, self.window);
        let n = tail.len() as f64;
        // x = 0..n-1, predict at x = n.
        let x_mean = (n - 1.0) / 2.0;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, y) in tail.iter().enumerate() {
            let dx = i as f64 - x_mean;
            sxy += dx * (y - y_mean);
            sxx += dx * dx;
        }
        let slope = if sxx.abs() < f64::EPSILON { 0.0 } else { sxy / sxx };
        Some(y_mean + slope * (n - x_mean))
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.len() < 2 {
            return false;
        }
        let take = tile.len().min(self.window);
        let start = tile.len() - take;
        let n = take as f64;
        let x_mean = (n - 1.0) / 2.0;
        let mut sum = [0.0f64; LANES];
        for t in start..tile.len() {
            let row = tile.row(t);
            for l in 0..LANES {
                sum[l] += row[l];
            }
        }
        let mut y_mean = [0.0f64; LANES];
        for l in 0..LANES {
            y_mean[l] = sum[l] / n;
        }
        let mut sxy = [0.0f64; LANES];
        // sxx depends only on the window shape, not on the values, so one
        // scalar accumulation serves every lane — the addition sequence is
        // the same one the scalar path interleaves with sxy.
        let mut sxx = 0.0;
        for (i, t) in (start..tile.len()).enumerate() {
            let dx = i as f64 - x_mean;
            let row = tile.row(t);
            for l in 0..LANES {
                sxy[l] += dx * (row[l] - y_mean[l]);
            }
            sxx += dx * dx;
        }
        for l in 0..LANES {
            let slope = if sxx.abs() < f64::EPSILON { 0.0 } else { sxy[l] / sxx };
            out[l] = y_mean[l] + slope * (n - x_mean);
        }
        true
    }

    fn min_history(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "ols"
    }
}

/// Seasonal-naïve forecaster: predicts the value one period ago.
///
/// News and social streams are strongly periodic (day/night cycles,
/// weekday/weekend). A popular tag's *regular* daily peak is not an
/// emergent topic; predicting "same as this time yesterday" makes
/// periodic structure invisible to shift detection while leaving genuine
/// novelty fully visible. Falls back to the last value while the history
/// is shorter than one period.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// A seasonal forecaster with the given period in ticks (e.g. 24 for
    /// daily seasonality over hourly ticks).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "season period must be positive");
        SeasonalNaive { period }
    }
}

impl Predictor for SeasonalNaive {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        if history.len() >= self.period {
            // The next value is one period after history[len - period].
            history.get(history.len() - self.period)
        } else {
            history.last()
        }
    }

    fn predict_batch(&self, tile: HistoryTile<'_>, out: &mut [f64; LANES]) -> bool {
        if tile.is_empty() {
            return false;
        }
        let t = if tile.len() >= self.period { tile.len() - self.period } else { tile.len() - 1 };
        *out = *tile.row(t);
        true
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "seasonal"
    }
}

/// Serializable predictor selector for engine configuration and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// [`LastValue`].
    Last,
    /// [`MovingAverage`] over the given window.
    MovingAverage(usize),
    /// [`Ewma`] with the given alpha.
    Ewma(f64),
    /// [`Holt`] with `(alpha, beta)`.
    Holt(f64, f64),
    /// [`LinearRegression`] over the given window.
    LinearRegression(usize),
    /// [`SeasonalNaive`] with the given period in ticks.
    SeasonalNaive(usize),
}

impl Default for PredictorKind {
    /// EWMA with α = 0.3 — smooth enough to ignore noise, fast enough to
    /// adapt after an event ends.
    fn default() -> Self {
        PredictorKind::Ewma(0.3)
    }
}

impl PredictorKind {
    /// The standard ablation set for experiment P4.
    pub fn ablation_set() -> Vec<PredictorKind> {
        vec![
            PredictorKind::Last,
            PredictorKind::MovingAverage(6),
            PredictorKind::Ewma(0.3),
            PredictorKind::Holt(0.4, 0.2),
            PredictorKind::LinearRegression(6),
            PredictorKind::SeasonalNaive(7),
        ]
    }

    /// Instantiates the predictor.
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Last => Box::new(LastValue),
            PredictorKind::MovingAverage(w) => Box::new(MovingAverage::new(w)),
            PredictorKind::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorKind::Holt(alpha, beta) => Box::new(Holt::new(alpha, beta)),
            PredictorKind::LinearRegression(w) => Box::new(LinearRegression::new(w)),
            PredictorKind::SeasonalNaive(period) => Box::new(SeasonalNaive::new(period)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn last_value_predicts_last() {
        assert_eq!(LastValue.predict(&[]), None);
        assert_eq!(LastValue.predict(&[0.2, 0.7]), Some(0.7));
    }

    #[test]
    fn moving_average_uses_tail_window() {
        let ma = MovingAverage::new(2);
        assert_eq!(ma.predict(&[]), None);
        approx(ma.predict(&[0.4]).unwrap(), 0.4);
        approx(ma.predict(&[100.0, 0.2, 0.4]).unwrap(), 0.3);
    }

    #[test]
    fn ewma_weights_recent_values() {
        let ewma = Ewma::new(0.5);
        assert_eq!(ewma.predict(&[]), None);
        approx(ewma.predict(&[1.0]).unwrap(), 1.0);
        // level = 0.5·0 + 0.5·1 = 0.5; then 0.5·1 + 0.5·0.5 = 0.75
        approx(ewma.predict(&[1.0, 0.0, 1.0]).unwrap(), 0.75);
        // α = 1 degenerates to last-value.
        approx(Ewma::new(1.0).predict(&[0.1, 0.9]).unwrap(), 0.9);
    }

    #[test]
    fn holt_extrapolates_linear_trends() {
        let holt = Holt::new(0.8, 0.8);
        assert_eq!(holt.predict(&[0.5]), None);
        // A clean linear ramp should be predicted almost exactly.
        let ramp: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let pred = holt.predict(&ramp).unwrap();
        assert!((pred - 1.0).abs() < 0.05, "holt on ramp predicted {pred}");
    }

    #[test]
    fn ols_extrapolates_exactly_on_lines() {
        let ols = LinearRegression::new(5);
        let line: Vec<f64> = (0..5).map(|i| 2.0 + 3.0 * i as f64).collect();
        approx(ols.predict(&line).unwrap(), 2.0 + 3.0 * 5.0);
        // Constant series ⇒ predicts the constant.
        approx(ols.predict(&[4.0, 4.0, 4.0]).unwrap(), 4.0);
        assert_eq!(ols.predict(&[1.0]), None);
    }

    #[test]
    fn ols_ignores_history_outside_window() {
        let ols = LinearRegression::new(3);
        // Garbage before the window must not affect the fit.
        let a = ols.predict(&[99.0, -5.0, 1.0, 2.0, 3.0]).unwrap();
        let b = ols.predict(&[1.0, 2.0, 3.0]).unwrap();
        approx(a, b);
    }

    #[test]
    fn flat_series_yields_zero_error_for_all() {
        let flat = vec![0.25; 12];
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let pred = p.predict(&flat).unwrap();
            assert!((pred - 0.25).abs() < 1e-6, "{} drifted on flat series: {pred}", p.name());
        }
    }

    #[test]
    fn sudden_jump_surprises_all_predictors() {
        // History is flat at 0.1; the actual new value is 0.6. Every
        // predictor must under-predict substantially — that *is* the shift
        // signal of the paper.
        let history = vec![0.1; 10];
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let pred = p.predict(&history).unwrap();
            assert!(0.6 - pred > 0.4, "{} failed to be surprised: {pred}", p.name());
        }
    }

    #[test]
    fn kind_builds_expected_names() {
        let names: Vec<&str> =
            PredictorKind::ablation_set().iter().map(|k| k.build().name()).collect();
        assert_eq!(names, vec!["last", "ma", "ewma", "holt", "ols", "seasonal"]);
    }

    #[test]
    fn seasonal_predicts_one_period_back() {
        let seasonal = SeasonalNaive::new(4);
        assert_eq!(seasonal.predict(&[]), None);
        // Short history falls back to last value.
        approx(seasonal.predict(&[0.3, 0.5]).unwrap(), 0.5);
        // Period-aligned: predicts history[len - period].
        let two_periods = vec![0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1];
        approx(seasonal.predict(&two_periods).unwrap(), 0.1);
        let at_peak = &two_periods[..5]; // next value is the peak slot
        approx(seasonal.predict(at_peak).unwrap(), 0.9);
    }

    #[test]
    fn seasonal_is_blind_to_periodic_peaks_where_others_alarm() {
        // A perfectly periodic series: peak every 4 ticks. The seasonal
        // predictor has zero error at the next peak; level predictors are
        // surprised every time.
        let mut series = Vec::new();
        for _ in 0..5 {
            series.extend_from_slice(&[0.1, 0.1, 0.1, 0.8]);
        }
        let history = &series[..series.len() - 1]; // next actual: 0.8 (peak)
        let seasonal = SeasonalNaive::new(4);
        let seasonal_err = (0.8 - seasonal.predict(history).unwrap()).max(0.0);
        let ewma_err = (0.8 - Ewma::new(0.3).predict(history).unwrap()).max(0.0);
        assert!(seasonal_err < 1e-9, "periodic peak fully predicted: {seasonal_err}");
        assert!(ewma_err > 0.4, "level predictor must be surprised: {ewma_err}");
    }

    #[test]
    fn split_views_predict_bit_identically_to_contiguous() {
        // Every predictor must produce the exact same bits whether the
        // history arrives as one slice or as any two-way split of it —
        // that is the contract that lets slab storage hand ring segments
        // to the scorer in place.
        let series: Vec<f64> = (0..12).map(|i| 0.07 * i as f64 + ((i % 3) as f64) * 0.11).collect();
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let whole = p.predict(&series);
            for cut in 0..=series.len() {
                let (head, tail) = series.split_at(cut);
                let split = p.predict_view(SeriesView::new(head, tail));
                assert_eq!(
                    whole.map(f64::to_bits),
                    split.map(f64::to_bits),
                    "{} diverged at cut {cut}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn series_view_accessors_match_concatenation() {
        let head = [1.0, 2.0];
        let tail = [3.0, 4.0, 5.0];
        let v = SeriesView::new(&head, &tail);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.get(0), Some(1.0));
        assert_eq!(v.get(3), Some(4.0));
        assert_eq!(v.get(5), None);
        assert_eq!(v.last(), Some(5.0));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.suffix(2).iter().collect::<Vec<_>>(), vec![4.0, 5.0]);
        assert_eq!(v.suffix(4).iter().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.suffix(9).len(), 5);
        let (first, rest) = v.split_first().unwrap();
        assert_eq!(first, 1.0);
        assert_eq!(rest.len(), 4);
        let empty = SeriesView::new(&[], &[]);
        assert!(empty.is_empty() && empty.last().is_none() && empty.split_first().is_none());
        let tail_only = SeriesView::new(&[], &tail);
        assert_eq!(tail_only.split_first().unwrap().0, 3.0);
    }

    /// Packs `LANES` equal-length histories into a time-major tile buffer.
    fn pack_tile(lanes: &[Vec<f64>; LANES]) -> (Vec<f64>, usize) {
        let len = lanes[0].len();
        let mut values = vec![0.0; len * LANES];
        for (l, lane) in lanes.iter().enumerate() {
            assert_eq!(lane.len(), len);
            for (t, &v) in lane.iter().enumerate() {
                values[t * LANES + l] = v;
            }
        }
        (values, len)
    }

    fn sample_lanes(len: usize) -> [Vec<f64>; LANES] {
        std::array::from_fn(|l| {
            (0..len).map(|t| 0.05 * (t as f64) + 0.13 * ((l * 7 + t * 3) % 5) as f64).collect()
        })
    }

    #[test]
    fn batch_kernels_are_bit_identical_to_scalar() {
        for len in [0usize, 1, 2, 3, 5, 8, 24] {
            let lanes = sample_lanes(len);
            let (values, len) = pack_tile(&lanes);
            let tile = HistoryTile::new(&values, len);
            for kind in PredictorKind::ablation_set() {
                let p = kind.build();
                let mut out = [f64::NAN; LANES];
                let produced = p.predict_batch(tile, &mut out);
                assert_eq!(
                    produced,
                    len >= p.min_history(),
                    "{} gate disagreed at len {len}",
                    p.name()
                );
                if !produced {
                    continue;
                }
                for (l, lane) in lanes.iter().enumerate() {
                    let scalar = p.predict(lane).expect("scalar must predict past min_history");
                    assert_eq!(
                        scalar.to_bits(),
                        out[l].to_bits(),
                        "{} lane {l} diverged at len {len}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn default_batch_impl_delegates_to_predict_view() {
        // A predictor that only implements the scalar path must still get
        // a correct (if slow) batched kernel for free.
        struct Custom;
        impl Predictor for Custom {
            fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
                history.last().map(|v| v * 2.0)
            }
            fn min_history(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "custom"
            }
        }
        let lanes = sample_lanes(6);
        let (values, len) = pack_tile(&lanes);
        let tile = HistoryTile::new(&values, len);
        let mut out = [0.0; LANES];
        assert!(Custom.predict_batch(tile, &mut out));
        for (l, lane) in lanes.iter().enumerate() {
            assert_eq!(out[l].to_bits(), (lane[len - 1] * 2.0).to_bits());
        }
        let empty = HistoryTile::new(&[], 0);
        assert!(!Custom.predict_batch(empty, &mut out), "short history gates the default impl");
    }

    #[test]
    fn batch_kernels_propagate_nan_like_scalar() {
        let mut lanes = sample_lanes(8);
        lanes[2][3] = f64::NAN;
        lanes[5][7] = f64::NAN;
        let (values, len) = pack_tile(&lanes);
        let tile = HistoryTile::new(&values, len);
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let mut out = [0.0; LANES];
            assert!(p.predict_batch(tile, &mut out));
            for (l, lane) in lanes.iter().enumerate() {
                let scalar = p.predict(lane).unwrap();
                assert_eq!(
                    scalar.to_bits(),
                    out[l].to_bits(),
                    "{} lane {l} NaN handling diverged",
                    p.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "len * LANES")]
    fn tile_rejects_ragged_buffers() {
        let _ = HistoryTile::new(&[0.0; 9], 1);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn seasonal_rejects_zero_period() {
        let _ = SeasonalNaive::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn regression_rejects_window_one() {
        let _ = LinearRegression::new(1);
    }
}
