//! One-step-ahead forecasters for correlation series.
//!
//! §3(iii): "at any point in time we use the previous correlation values
//! and try to predict the current ones. If a predicted value is far away
//! from the real one then the topic is considered to be emergent and the
//! prediction error is used as a ranking criterion."
//!
//! All predictors are *stateless over the supplied history*: given the
//! window of previous correlation values (oldest → newest, excluding the
//! value being predicted) they return the forecast for the next value.
//! This makes them trivially pluggable as "shift prediction operators"
//! (§4.1) and exactly reproducible.

use serde::{Deserialize, Serialize};

/// A correlation history exposed as up to two contiguous slices (oldest →
/// newest), so ring-resident histories can be read **in place**.
///
/// The slab pair storage keeps every history in a strided arena ring; a
/// full ring is two contiguous runs (`head` = the older run, `tail` = the
/// wrapped newer run). Predictors consume this view directly, which is
/// what lets the tick-close scoring loop run without copying each history
/// into a scratch `Vec` first. A plain slice is the `tail.is_empty()`
/// special case ([`SeriesView::contiguous`]), and every accessor iterates
/// values in exactly the order the equivalent concatenated slice would —
/// predictions are bit-identical between the two representations.
#[derive(Debug, Clone, Copy)]
pub struct SeriesView<'a> {
    head: &'a [f64],
    tail: &'a [f64],
}

impl<'a> SeriesView<'a> {
    /// A view over `head` followed by `tail` (both oldest → newest).
    #[inline]
    pub fn new(head: &'a [f64], tail: &'a [f64]) -> Self {
        SeriesView { head, tail }
    }

    /// A view over one contiguous slice.
    #[inline]
    pub fn contiguous(values: &'a [f64]) -> Self {
        SeriesView { head: values, tail: &[] }
    }

    /// Number of values in the series.
    #[inline]
    pub fn len(self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether the series holds no values.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.head.is_empty() && self.tail.is_empty()
    }

    /// The value `i` steps from the oldest.
    #[inline]
    pub fn get(self, i: usize) -> Option<f64> {
        if i < self.head.len() {
            Some(self.head[i])
        } else {
            self.tail.get(i - self.head.len()).copied()
        }
    }

    /// The newest value.
    #[inline]
    pub fn last(self) -> Option<f64> {
        self.tail.last().or_else(|| self.head.last()).copied()
    }

    /// The view over the newest `n` values (the whole series if shorter).
    #[inline]
    pub fn suffix(self, n: usize) -> SeriesView<'a> {
        let skip = self.len().saturating_sub(n);
        if skip <= self.head.len() {
            SeriesView { head: &self.head[skip..], tail: self.tail }
        } else {
            SeriesView { head: &[], tail: &self.tail[skip - self.head.len()..] }
        }
    }

    /// Iterates oldest → newest.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = f64> + 'a {
        self.head.iter().chain(self.tail.iter()).copied()
    }

    /// Splits off the oldest value, returning it and the rest.
    #[inline]
    pub fn split_first(self) -> Option<(f64, SeriesView<'a>)> {
        match self.head.split_first() {
            Some((&first, rest)) => Some((first, SeriesView { head: rest, tail: self.tail })),
            None => self
                .tail
                .split_first()
                .map(|(&first, rest)| (first, SeriesView { head: rest, tail: &[] })),
        }
    }
}

/// A one-step-ahead forecaster over a correlation series.
pub trait Predictor: Send + Sync {
    /// Predicts the next value from `history` (oldest → newest), supplied
    /// as a possibly-split [`SeriesView`] so ring-buffer histories are read
    /// in place.
    ///
    /// Returns `None` when the history is too short to say anything; the
    /// shift detector treats that as "no alarm" rather than a zero
    /// prediction, so brand-new pairs don't look emergent for free.
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64>;

    /// [`Predictor::predict_view`] over one contiguous slice.
    fn predict(&self, history: &[f64]) -> Option<f64> {
        self.predict_view(SeriesView::contiguous(history))
    }

    /// Minimum history length required for a prediction.
    fn min_history(&self) -> usize;

    /// Short identifier for experiment output.
    fn name(&self) -> &'static str;
}

/// Predicts the last observed value (naïve / random-walk forecaster).
#[derive(Debug, Clone, Copy, Default)]
pub struct LastValue;

impl Predictor for LastValue {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        history.last()
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "last"
    }
}

/// Predicts the mean of the last `window` values.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// A moving average over `window` trailing values.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "moving-average window must be positive");
        MovingAverage { window }
    }
}

impl Predictor for MovingAverage {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let tail = history.suffix(self.window);
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "ma"
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// Higher `alpha` weights recent values more (α = 1 degenerates to
/// [`LastValue`]).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha }
    }
}

impl Predictor for Ewma {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        let (first, rest) = history.split_first()?;
        let mut level = first;
        for v in rest.iter() {
            level = self.alpha * v + (1.0 - self.alpha) * level;
        }
        Some(level)
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Holt's double exponential smoothing: level + trend.
///
/// Tracks gradual drifts so only *sudden* jumps register as prediction
/// error — exactly the paper's "a shift is sudden if it cannot be
/// predicted using the previous correlation values".
#[derive(Debug, Clone, Copy)]
pub struct Holt {
    alpha: f64,
    beta: f64,
}

impl Holt {
    /// Holt smoothing with level factor `alpha` and trend factor `beta`,
    /// both in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Holt { alpha, beta }
    }
}

impl Predictor for Holt {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.len() < 2 {
            return None;
        }
        let first = history.get(0).expect("len checked");
        let second = history.get(1).expect("len checked");
        let mut level = first;
        let mut trend = second - first;
        for v in history.iter().skip(1) {
            let prev_level = level;
            level = self.alpha * v + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        Some(level + trend)
    }

    fn min_history(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Ordinary least-squares line over the last `window` values, extrapolated
/// one step.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegression {
    window: usize,
}

impl LinearRegression {
    /// OLS over the trailing `window` values (≥ 2).
    ///
    /// # Panics
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "regression needs at least two points");
        LinearRegression { window }
    }
}

impl Predictor for LinearRegression {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.len() < 2 {
            return None;
        }
        let tail = history.suffix(self.window);
        let n = tail.len() as f64;
        // x = 0..n-1, predict at x = n.
        let x_mean = (n - 1.0) / 2.0;
        let y_mean = tail.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, y) in tail.iter().enumerate() {
            let dx = i as f64 - x_mean;
            sxy += dx * (y - y_mean);
            sxx += dx * dx;
        }
        let slope = if sxx.abs() < f64::EPSILON { 0.0 } else { sxy / sxx };
        Some(y_mean + slope * (n - x_mean))
    }

    fn min_history(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "ols"
    }
}

/// Seasonal-naïve forecaster: predicts the value one period ago.
///
/// News and social streams are strongly periodic (day/night cycles,
/// weekday/weekend). A popular tag's *regular* daily peak is not an
/// emergent topic; predicting "same as this time yesterday" makes
/// periodic structure invisible to shift detection while leaving genuine
/// novelty fully visible. Falls back to the last value while the history
/// is shorter than one period.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// A seasonal forecaster with the given period in ticks (e.g. 24 for
    /// daily seasonality over hourly ticks).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "season period must be positive");
        SeasonalNaive { period }
    }
}

impl Predictor for SeasonalNaive {
    fn predict_view(&self, history: SeriesView<'_>) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        if history.len() >= self.period {
            // The next value is one period after history[len - period].
            history.get(history.len() - self.period)
        } else {
            history.last()
        }
    }

    fn min_history(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "seasonal"
    }
}

/// Serializable predictor selector for engine configuration and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// [`LastValue`].
    Last,
    /// [`MovingAverage`] over the given window.
    MovingAverage(usize),
    /// [`Ewma`] with the given alpha.
    Ewma(f64),
    /// [`Holt`] with `(alpha, beta)`.
    Holt(f64, f64),
    /// [`LinearRegression`] over the given window.
    LinearRegression(usize),
    /// [`SeasonalNaive`] with the given period in ticks.
    SeasonalNaive(usize),
}

impl Default for PredictorKind {
    /// EWMA with α = 0.3 — smooth enough to ignore noise, fast enough to
    /// adapt after an event ends.
    fn default() -> Self {
        PredictorKind::Ewma(0.3)
    }
}

impl PredictorKind {
    /// The standard ablation set for experiment P4.
    pub fn ablation_set() -> Vec<PredictorKind> {
        vec![
            PredictorKind::Last,
            PredictorKind::MovingAverage(6),
            PredictorKind::Ewma(0.3),
            PredictorKind::Holt(0.4, 0.2),
            PredictorKind::LinearRegression(6),
            PredictorKind::SeasonalNaive(7),
        ]
    }

    /// Instantiates the predictor.
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Last => Box::new(LastValue),
            PredictorKind::MovingAverage(w) => Box::new(MovingAverage::new(w)),
            PredictorKind::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorKind::Holt(alpha, beta) => Box::new(Holt::new(alpha, beta)),
            PredictorKind::LinearRegression(w) => Box::new(LinearRegression::new(w)),
            PredictorKind::SeasonalNaive(period) => Box::new(SeasonalNaive::new(period)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn last_value_predicts_last() {
        assert_eq!(LastValue.predict(&[]), None);
        assert_eq!(LastValue.predict(&[0.2, 0.7]), Some(0.7));
    }

    #[test]
    fn moving_average_uses_tail_window() {
        let ma = MovingAverage::new(2);
        assert_eq!(ma.predict(&[]), None);
        approx(ma.predict(&[0.4]).unwrap(), 0.4);
        approx(ma.predict(&[100.0, 0.2, 0.4]).unwrap(), 0.3);
    }

    #[test]
    fn ewma_weights_recent_values() {
        let ewma = Ewma::new(0.5);
        assert_eq!(ewma.predict(&[]), None);
        approx(ewma.predict(&[1.0]).unwrap(), 1.0);
        // level = 0.5·0 + 0.5·1 = 0.5; then 0.5·1 + 0.5·0.5 = 0.75
        approx(ewma.predict(&[1.0, 0.0, 1.0]).unwrap(), 0.75);
        // α = 1 degenerates to last-value.
        approx(Ewma::new(1.0).predict(&[0.1, 0.9]).unwrap(), 0.9);
    }

    #[test]
    fn holt_extrapolates_linear_trends() {
        let holt = Holt::new(0.8, 0.8);
        assert_eq!(holt.predict(&[0.5]), None);
        // A clean linear ramp should be predicted almost exactly.
        let ramp: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let pred = holt.predict(&ramp).unwrap();
        assert!((pred - 1.0).abs() < 0.05, "holt on ramp predicted {pred}");
    }

    #[test]
    fn ols_extrapolates_exactly_on_lines() {
        let ols = LinearRegression::new(5);
        let line: Vec<f64> = (0..5).map(|i| 2.0 + 3.0 * i as f64).collect();
        approx(ols.predict(&line).unwrap(), 2.0 + 3.0 * 5.0);
        // Constant series ⇒ predicts the constant.
        approx(ols.predict(&[4.0, 4.0, 4.0]).unwrap(), 4.0);
        assert_eq!(ols.predict(&[1.0]), None);
    }

    #[test]
    fn ols_ignores_history_outside_window() {
        let ols = LinearRegression::new(3);
        // Garbage before the window must not affect the fit.
        let a = ols.predict(&[99.0, -5.0, 1.0, 2.0, 3.0]).unwrap();
        let b = ols.predict(&[1.0, 2.0, 3.0]).unwrap();
        approx(a, b);
    }

    #[test]
    fn flat_series_yields_zero_error_for_all() {
        let flat = vec![0.25; 12];
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let pred = p.predict(&flat).unwrap();
            assert!((pred - 0.25).abs() < 1e-6, "{} drifted on flat series: {pred}", p.name());
        }
    }

    #[test]
    fn sudden_jump_surprises_all_predictors() {
        // History is flat at 0.1; the actual new value is 0.6. Every
        // predictor must under-predict substantially — that *is* the shift
        // signal of the paper.
        let history = vec![0.1; 10];
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let pred = p.predict(&history).unwrap();
            assert!(0.6 - pred > 0.4, "{} failed to be surprised: {pred}", p.name());
        }
    }

    #[test]
    fn kind_builds_expected_names() {
        let names: Vec<&str> =
            PredictorKind::ablation_set().iter().map(|k| k.build().name()).collect();
        assert_eq!(names, vec!["last", "ma", "ewma", "holt", "ols", "seasonal"]);
    }

    #[test]
    fn seasonal_predicts_one_period_back() {
        let seasonal = SeasonalNaive::new(4);
        assert_eq!(seasonal.predict(&[]), None);
        // Short history falls back to last value.
        approx(seasonal.predict(&[0.3, 0.5]).unwrap(), 0.5);
        // Period-aligned: predicts history[len - period].
        let two_periods = vec![0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1];
        approx(seasonal.predict(&two_periods).unwrap(), 0.1);
        let at_peak = &two_periods[..5]; // next value is the peak slot
        approx(seasonal.predict(at_peak).unwrap(), 0.9);
    }

    #[test]
    fn seasonal_is_blind_to_periodic_peaks_where_others_alarm() {
        // A perfectly periodic series: peak every 4 ticks. The seasonal
        // predictor has zero error at the next peak; level predictors are
        // surprised every time.
        let mut series = Vec::new();
        for _ in 0..5 {
            series.extend_from_slice(&[0.1, 0.1, 0.1, 0.8]);
        }
        let history = &series[..series.len() - 1]; // next actual: 0.8 (peak)
        let seasonal = SeasonalNaive::new(4);
        let seasonal_err = (0.8 - seasonal.predict(history).unwrap()).max(0.0);
        let ewma_err = (0.8 - Ewma::new(0.3).predict(history).unwrap()).max(0.0);
        assert!(seasonal_err < 1e-9, "periodic peak fully predicted: {seasonal_err}");
        assert!(ewma_err > 0.4, "level predictor must be surprised: {ewma_err}");
    }

    #[test]
    fn split_views_predict_bit_identically_to_contiguous() {
        // Every predictor must produce the exact same bits whether the
        // history arrives as one slice or as any two-way split of it —
        // that is the contract that lets slab storage hand ring segments
        // to the scorer in place.
        let series: Vec<f64> = (0..12).map(|i| 0.07 * i as f64 + ((i % 3) as f64) * 0.11).collect();
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let whole = p.predict(&series);
            for cut in 0..=series.len() {
                let (head, tail) = series.split_at(cut);
                let split = p.predict_view(SeriesView::new(head, tail));
                assert_eq!(
                    whole.map(f64::to_bits),
                    split.map(f64::to_bits),
                    "{} diverged at cut {cut}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn series_view_accessors_match_concatenation() {
        let head = [1.0, 2.0];
        let tail = [3.0, 4.0, 5.0];
        let v = SeriesView::new(&head, &tail);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.get(0), Some(1.0));
        assert_eq!(v.get(3), Some(4.0));
        assert_eq!(v.get(5), None);
        assert_eq!(v.last(), Some(5.0));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.suffix(2).iter().collect::<Vec<_>>(), vec![4.0, 5.0]);
        assert_eq!(v.suffix(4).iter().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.suffix(9).len(), 5);
        let (first, rest) = v.split_first().unwrap();
        assert_eq!(first, 1.0);
        assert_eq!(rest.len(), 4);
        let empty = SeriesView::new(&[], &[]);
        assert!(empty.is_empty() && empty.last().is_none() && empty.split_first().is_none());
        let tail_only = SeriesView::new(&[], &tail);
        assert_eq!(tail_only.split_first().unwrap().0, 3.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn seasonal_rejects_zero_period() {
        let _ = SeasonalNaive::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn regression_rejects_window_one() {
        let _ = LinearRegression::new(1);
    }
}
