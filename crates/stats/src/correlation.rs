//! Set-overlap correlation measures between two tags.
//!
//! Within a sliding window, let `a = |D(t1)|` and `b = |D(t2)|` be the
//! number of documents carrying each tag and `ab = |D(t1) ∩ D(t2)|` the
//! number carrying both (the "intersection size" of Figure 1), out of `n`
//! window documents. Each measure maps these counts to a correlation value;
//! all are normalised to `[0, 1]` so that shift detection and ranking can
//! treat them interchangeably.

use serde::{Deserialize, Serialize};

/// Windowed co-occurrence counts for a tag pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Documents containing the first tag.
    pub a: u64,
    /// Documents containing the second tag.
    pub b: u64,
    /// Documents containing both tags.
    pub ab: u64,
    /// Total documents in the window.
    pub n: u64,
}

impl PairCounts {
    /// Convenience constructor.
    pub fn new(a: u64, b: u64, ab: u64, n: u64) -> Self {
        PairCounts { a, b, ab, n }
    }

    /// Whether the counts are consistent (`ab ≤ min(a, b)`, `a, b ≤ n`).
    pub fn is_consistent(&self) -> bool {
        self.ab <= self.a.min(self.b) && self.a.max(self.b) <= self.n
    }
}

/// The correlation measure applied to windowed pair counts.
///
/// §3(ii): "There are multiple ways how to calculate a correlation measure
/// that reflects some notion of interestingness." These are the standard
/// set-association measures; the term-distribution variant lives in
/// [`crate::divergence`]. Ablation experiment P9 compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CorrelationMeasure {
    /// `|A∩B| / |A∪B|` — the default; symmetric, popularity-robust.
    #[default]
    Jaccard,
    /// `2|A∩B| / (|A|+|B|)` — Dice/Sørensen coefficient.
    Dice,
    /// `|A∩B| / min(|A|,|B|)` — overlap (containment) coefficient; reacts
    /// fastest when a small tag attaches to a big one.
    Overlap,
    /// `|A∩B| / sqrt(|A|·|B|)` — cosine on binary incidence vectors.
    Cosine,
    /// Normalised pointwise mutual information, mapped to `[0,1]`.
    NormalizedPmi,
    /// `|A∩B| / max(|A|,|B|)` — the probability that a document of the
    /// *popular* tag also carries the niche one; the most conservative
    /// measure, dominated by the popular side.
    Conditional,
}

impl CorrelationMeasure {
    /// All measures, for ablation sweeps.
    pub const ALL: [CorrelationMeasure; 6] = [
        CorrelationMeasure::Jaccard,
        CorrelationMeasure::Dice,
        CorrelationMeasure::Overlap,
        CorrelationMeasure::Cosine,
        CorrelationMeasure::NormalizedPmi,
        CorrelationMeasure::Conditional,
    ];

    /// Short identifier for experiment output.
    pub const fn name(self) -> &'static str {
        match self {
            CorrelationMeasure::Jaccard => "jaccard",
            CorrelationMeasure::Dice => "dice",
            CorrelationMeasure::Overlap => "overlap",
            CorrelationMeasure::Cosine => "cosine",
            CorrelationMeasure::NormalizedPmi => "npmi",
            CorrelationMeasure::Conditional => "conditional",
        }
    }

    /// Computes the correlation value in `[0, 1]`.
    ///
    /// Degenerate inputs (empty sets, zero window) yield 0 — an untracked
    /// pair is uncorrelated, never an error.
    pub fn compute(self, counts: PairCounts) -> f64 {
        let PairCounts { a, b, ab, n } = counts;
        if ab == 0 || a == 0 || b == 0 {
            return 0.0;
        }
        let (af, bf, abf) = (a as f64, b as f64, ab as f64);
        match self {
            CorrelationMeasure::Jaccard => {
                let union = af + bf - abf;
                if union <= 0.0 {
                    0.0
                } else {
                    abf / union
                }
            }
            CorrelationMeasure::Dice => 2.0 * abf / (af + bf),
            CorrelationMeasure::Overlap => abf / af.min(bf),
            CorrelationMeasure::Cosine => abf / (af * bf).sqrt(),
            CorrelationMeasure::NormalizedPmi => {
                if n == 0 {
                    return 0.0;
                }
                let nf = n as f64;
                let p_ab = abf / nf;
                let p_a = af / nf;
                let p_b = bf / nf;
                if p_ab >= 1.0 {
                    // All documents carry both tags: perfectly associated.
                    return 1.0;
                }
                let pmi = (p_ab / (p_a * p_b)).ln();
                // npmi ∈ [−1, 1]; clamp the anti-correlated half to 0 so
                // independence sits at ~0 like the other measures (mapping
                // [−1,1] → [0,1] would park independent pairs at 0.5, where
                // sampling drift looks like a shift).
                let npmi = pmi / (-p_ab.ln());
                npmi.clamp(0.0, 1.0)
            }
            CorrelationMeasure::Conditional => abf / af.max(bf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} !~ {b}");
    }

    #[test]
    fn jaccard_matches_definition() {
        let c = PairCounts::new(10, 5, 3, 100);
        approx(CorrelationMeasure::Jaccard.compute(c), 3.0 / 12.0);
    }

    #[test]
    fn dice_matches_definition() {
        let c = PairCounts::new(10, 5, 3, 100);
        approx(CorrelationMeasure::Dice.compute(c), 6.0 / 15.0);
    }

    #[test]
    fn overlap_matches_definition() {
        let c = PairCounts::new(10, 5, 3, 100);
        approx(CorrelationMeasure::Overlap.compute(c), 3.0 / 5.0);
    }

    #[test]
    fn cosine_matches_definition() {
        let c = PairCounts::new(10, 5, 3, 100);
        approx(CorrelationMeasure::Cosine.compute(c), 3.0 / (50.0f64).sqrt());
    }

    #[test]
    fn all_measures_zero_on_disjoint_sets() {
        let c = PairCounts::new(10, 5, 0, 100);
        for m in CorrelationMeasure::ALL {
            assert_eq!(m.compute(c), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn all_measures_zero_on_empty_window() {
        let c = PairCounts::default();
        for m in CorrelationMeasure::ALL {
            assert_eq!(m.compute(c), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn all_measures_bounded_unit_interval() {
        let cases = [
            PairCounts::new(10, 5, 3, 100),
            PairCounts::new(1, 1, 1, 1),
            PairCounts::new(50, 50, 50, 50),
            PairCounts::new(99, 1, 1, 100),
            PairCounts::new(2, 3, 1, 1000),
        ];
        for c in cases {
            assert!(c.is_consistent());
            for m in CorrelationMeasure::ALL {
                let v = m.compute(c);
                assert!((0.0..=1.0).contains(&v), "{} on {c:?} gave {v}", m.name());
            }
        }
    }

    #[test]
    fn identical_sets_score_one() {
        let c = PairCounts::new(7, 7, 7, 50);
        for m in [
            CorrelationMeasure::Jaccard,
            CorrelationMeasure::Dice,
            CorrelationMeasure::Overlap,
            CorrelationMeasure::Cosine,
            CorrelationMeasure::Conditional,
        ] {
            approx(m.compute(c), 1.0);
        }
        // NPMI of a perfectly-dependent non-universal pair is 1.
        assert!(CorrelationMeasure::NormalizedPmi.compute(c) > 0.99);
    }

    #[test]
    fn npmi_near_zero_for_independence() {
        // p(a)=p(b)=0.5, p(ab)=0.25 ⇒ pmi = 0 ⇒ npmi = 0.
        let c = PairCounts::new(500, 500, 250, 1000);
        approx(CorrelationMeasure::NormalizedPmi.compute(c), 0.0);
    }

    #[test]
    fn npmi_universal_pair_is_one() {
        let c = PairCounts::new(10, 10, 10, 10);
        approx(CorrelationMeasure::NormalizedPmi.compute(c), 1.0);
    }

    #[test]
    fn jaccard_is_popularity_robust_but_overlap_is_not() {
        // Figure 1's point: a peak in the popular tag alone must not move
        // the measure much. Doubling |A| with constant intersection:
        let before = PairCounts::new(100, 10, 5, 1000);
        let after = PairCounts::new(200, 10, 5, 1000);
        let jac_drop = CorrelationMeasure::Jaccard.compute(before)
            - CorrelationMeasure::Jaccard.compute(after);
        assert!(jac_drop > 0.0, "jaccard decreases when only popularity grows");
        // Overlap is completely insensitive to the popular side:
        approx(
            CorrelationMeasure::Overlap.compute(before),
            CorrelationMeasure::Overlap.compute(after),
        );
    }

    #[test]
    fn consistency_check_works() {
        assert!(PairCounts::new(5, 3, 3, 10).is_consistent());
        assert!(!PairCounts::new(5, 3, 4, 10).is_consistent(), "ab > min(a,b)");
        assert!(!PairCounts::new(11, 3, 1, 10).is_consistent(), "a > n");
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            CorrelationMeasure::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), CorrelationMeasure::ALL.len());
    }
}
