//! Shift detection: prediction error and the decayed-max topic score.
//!
//! §3(iii): a shift is *sudden* if it cannot be predicted from previous
//! correlation values; the (positive) prediction error is the emergence
//! signal, and a topic's score is the maximum of the current error and the
//! exponentially dampened past errors.

use crate::predict::{HistoryTile, Predictor, PredictorKind, SeriesView, LANES};
use serde::{Deserialize, Serialize};

/// How raw prediction errors are normalised into scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ErrorNormalization {
    /// Use the raw positive error `max(0, actual − predicted)`.
    ///
    /// Correlation measures are already in `[0, 1]`, so raw errors are
    /// comparable across pairs; this is the default.
    #[default]
    Absolute,
    /// Relative error `max(0, actual − predicted) / (predicted + ε)`.
    ///
    /// Emphasises pairs that started near zero — a jump from 0.01 to 0.1
    /// outranks a jump from 0.5 to 0.6.
    Relative,
}

impl ErrorNormalization {
    /// Applies the normalisation. `epsilon` guards division for
    /// [`ErrorNormalization::Relative`].
    pub fn apply(self, actual: f64, predicted: f64, epsilon: f64) -> f64 {
        let raw = (actual - predicted).max(0.0);
        match self {
            ErrorNormalization::Absolute => raw,
            ErrorNormalization::Relative => raw / (predicted.max(0.0) + epsilon),
        }
    }

    /// Short identifier for experiment output.
    pub const fn name(self) -> &'static str {
        match self {
            ErrorNormalization::Absolute => "abs",
            ErrorNormalization::Relative => "rel",
        }
    }
}

/// Computes per-observation shift signals from a correlation history.
///
/// The scorer is stateless: the engine feeds it the windowed correlation
/// history and the newly observed value; it returns the normalised positive
/// prediction error (the "shift magnitude"). Combining it with the decayed
/// maximum over time is the job of the per-pair state in `enblogue-core`
/// (via `enblogue_window::DecayValue`).
pub struct ShiftScorer {
    predictor: Box<dyn Predictor>,
    normalization: ErrorNormalization,
    epsilon: f64,
    /// Errors below this threshold are reported as 0 (noise floor).
    min_error: f64,
}

// The scorer is stateless per call and `Predictor` requires `Send + Sync`,
// so one scorer instance is shared by reference across shard workers during
// parallel tick close. This assertion keeps that contract load-bearing: a
// future `Cell`/`RefCell` inside a predictor fails compilation here, not as
// a data race.
const _: fn() = || {
    fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<ShiftScorer>();
};

impl ShiftScorer {
    /// Default noise floor: correlation wobbles below this are ignored.
    pub const DEFAULT_MIN_ERROR: f64 = 1e-3;

    /// A scorer using `kind` and `normalization`.
    pub fn new(kind: PredictorKind, normalization: ErrorNormalization) -> Self {
        ShiftScorer {
            predictor: kind.build(),
            normalization,
            epsilon: 0.05,
            min_error: Self::DEFAULT_MIN_ERROR,
        }
    }

    /// Overrides the relative-error epsilon.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Overrides the noise floor.
    #[must_use]
    pub fn with_min_error(mut self, min_error: f64) -> Self {
        assert!(min_error >= 0.0, "noise floor cannot be negative");
        self.min_error = min_error;
        self
    }

    /// The wrapped predictor's name.
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }

    /// The configured normalisation.
    pub fn normalization(&self) -> ErrorNormalization {
        self.normalization
    }

    /// Minimum history length before any score can be produced.
    pub fn min_history(&self) -> usize {
        self.predictor.min_history()
    }

    /// Scores one new observation against its history (oldest → newest,
    /// *excluding* `actual`).
    ///
    /// Returns `(shift_score, predicted)`; `None` while history is too
    /// short. Scores below the noise floor collapse to 0.
    pub fn score(&self, history: &[f64], actual: f64) -> Option<(f64, f64)> {
        self.score_view(SeriesView::contiguous(history), actual)
    }

    /// [`ShiftScorer::score`] over a possibly-split history view — the
    /// tick-close hot path: slab pair storage hands the scorer its ring
    /// segments directly, so no history is copied per pair per tick.
    /// Bit-identical to the contiguous form for the same values.
    pub fn score_view(&self, history: SeriesView<'_>, actual: f64) -> Option<(f64, f64)> {
        let predicted = self.predictor.predict_view(history)?;
        let err = self.normalization.apply(actual, predicted, self.epsilon);
        let score = if err < self.min_error { 0.0 } else { err };
        Some((score, predicted))
    }

    /// Batched [`ShiftScorer::score_view`] over a time-major tile of
    /// [`LANES`] equal-length histories with one actual per lane.
    ///
    /// Writes each lane's shift score into `out` and returns `true`
    /// (predicted values are not reported — the close loop discards
    /// them), or returns `false` when the shared history length is below
    /// the predictor's minimum — the batched spelling of the scalar
    /// path's `None`, which callers map to a zero shift.
    ///
    /// Per lane this applies exactly the scalar epilogue (normalisation,
    /// then the noise floor), so `out[l]` is bit-identical to
    /// `score_view` over lane `l`'s values.
    pub fn score_batch(
        &self,
        tile: HistoryTile<'_>,
        actuals: &[f64; LANES],
        out: &mut [f64; LANES],
    ) -> bool {
        let mut predicted = [0.0f64; LANES];
        if !self.predictor.predict_batch(tile, &mut predicted) {
            return false;
        }
        for l in 0..LANES {
            let err = self.normalization.apply(actuals[l], predicted[l], self.epsilon);
            out[l] = if err < self.min_error { 0.0 } else { err };
        }
        true
    }

    /// Scores an entire series, returning one score per index (`None`
    /// where history was insufficient). Useful for offline analysis and
    /// the Figure-1 harness.
    pub fn score_series(&self, series: &[f64]) -> Vec<Option<f64>> {
        (0..series.len()).map(|i| self.score(&series[..i], series[i]).map(|(s, _)| s)).collect()
    }
}

impl std::fmt::Debug for ShiftScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShiftScorer")
            .field("predictor", &self.predictor.name())
            .field("normalization", &self.normalization.name())
            .field("epsilon", &self.epsilon)
            .field("min_error", &self.min_error)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_error_is_positive_part() {
        let n = ErrorNormalization::Absolute;
        assert!((n.apply(0.7, 0.2, 0.05) - 0.5).abs() < 1e-12);
        assert_eq!(n.apply(0.2, 0.7, 0.05), 0.0, "drops are not emergent");
    }

    #[test]
    fn relative_error_amplifies_low_baselines() {
        let n = ErrorNormalization::Relative;
        let from_zero = n.apply(0.1, 0.0, 0.05);
        let from_half = n.apply(0.6, 0.5, 0.05);
        assert!(from_zero > from_half);
    }

    #[test]
    fn scorer_flags_sudden_jump_only() {
        let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
        let flat = vec![0.1; 8];
        let (score, predicted) = scorer.score(&flat, 0.1).unwrap();
        assert_eq!(score, 0.0, "flat continuation is not a shift");
        assert!((predicted - 0.1).abs() < 1e-9);

        let (score, _) = scorer.score(&flat, 0.5).unwrap();
        assert!(score > 0.35, "jump must score high, got {score}");
    }

    #[test]
    fn gradual_ramp_scores_below_sudden_jump() {
        let scorer = ShiftScorer::new(PredictorKind::Holt(0.4, 0.2), ErrorNormalization::Absolute);
        // Gradual: 0.1 → 0.5 over 8 steps.
        let ramp: Vec<f64> = (0..8).map(|i| 0.1 + 0.05 * i as f64).collect();
        let (ramp_score, _) = scorer.score(&ramp, 0.5).unwrap();
        // Sudden: flat 0.1 then 0.5.
        let flat = vec![0.1; 8];
        let (jump_score, _) = scorer.score(&flat, 0.5).unwrap();
        assert!(
            jump_score > 2.0 * ramp_score,
            "sudden ({jump_score}) must dominate gradual ({ramp_score})"
        );
    }

    #[test]
    fn no_score_without_history() {
        let scorer = ShiftScorer::new(PredictorKind::Last, ErrorNormalization::Absolute);
        assert!(scorer.score(&[], 0.9).is_none(), "a brand-new pair is not emergent by default");
        assert_eq!(scorer.min_history(), 1);
    }

    #[test]
    fn noise_floor_suppresses_wobble() {
        let scorer = ShiftScorer::new(PredictorKind::Last, ErrorNormalization::Absolute)
            .with_min_error(0.05);
        let (score, _) = scorer.score(&[0.200], 0.204).unwrap();
        assert_eq!(score, 0.0);
        let (score, _) = scorer.score(&[0.200], 0.30).unwrap();
        assert!(score > 0.0);
    }

    #[test]
    fn score_series_aligns_with_pointwise() {
        let scorer =
            ShiftScorer::new(PredictorKind::MovingAverage(3), ErrorNormalization::Absolute);
        let series = vec![0.1, 0.1, 0.1, 0.4, 0.1];
        let scores = scorer.score_series(&series);
        assert_eq!(scores.len(), 5);
        assert_eq!(scores[0], None, "no history for the first point");
        assert_eq!(scores[1], Some(0.0));
        let jump = scores[3].unwrap();
        assert!(jump > 0.25, "the jump at index 3 must register: {jump}");
        assert_eq!(scores[4], Some(0.0), "the drop back must not register");
    }

    #[test]
    fn score_batch_matches_score_view_per_lane() {
        let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Relative);
        let len = 6usize;
        let lanes: Vec<Vec<f64>> = (0..LANES)
            .map(|l| (0..len).map(|t| 0.02 * t as f64 + 0.09 * ((l + t) % 4) as f64).collect())
            .collect();
        let mut values = vec![0.0; len * LANES];
        for (l, lane) in lanes.iter().enumerate() {
            for (t, &v) in lane.iter().enumerate() {
                values[t * LANES + l] = v;
            }
        }
        let actuals: [f64; LANES] = std::array::from_fn(|l| 0.3 + 0.05 * l as f64);
        let mut out = [0.0; LANES];
        assert!(scorer.score_batch(HistoryTile::new(&values, len), &actuals, &mut out));
        for (l, lane) in lanes.iter().enumerate() {
            let (scalar, _) = scorer.score(lane, actuals[l]).unwrap();
            assert_eq!(scalar.to_bits(), out[l].to_bits(), "lane {l} diverged");
        }
        // Short history gates the whole tile, like the scalar `None`.
        let scorer = ShiftScorer::new(PredictorKind::Holt(0.4, 0.2), ErrorNormalization::Absolute);
        let one = vec![0.0; LANES];
        assert!(!scorer.score_batch(HistoryTile::new(&one, 1), &actuals, &mut out));
    }

    #[test]
    fn debug_format_names_components() {
        let scorer = ShiftScorer::new(PredictorKind::Holt(0.4, 0.2), ErrorNormalization::Relative);
        let s = format!("{scorer:?}");
        assert!(s.contains("holt") && s.contains("rel"));
    }
}
