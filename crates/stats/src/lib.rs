//! Correlation measures, divergences, predictors and shift scoring for
//! EnBlogue.
//!
//! This crate implements the mathematical machinery of §3 of the paper:
//!
//! * [`correlation`] — set-overlap correlation measures between two tags
//!   within a window ("there are multiple ways how to calculate a
//!   correlation measure that reflects some notion of interestingness"),
//! * [`divergence`] — information-theoretic measures over tag/term
//!   distributions ("we can apply information-theory measures like relative
//!   entropy to assess the similarity of tag/term usage"),
//! * [`predict`] — one-step-ahead forecasters: "at any point in time we use
//!   the previous correlation values and try to predict the current ones",
//! * [`shift`] — prediction-error scoring with the decayed-max rule ("the
//!   score of a topic is the maximum of the current prediction error and
//!   the prediction errors from the past, dampened … with a half life of
//!   approximately 2 days").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod divergence;
pub mod predict;
pub mod shift;

pub use correlation::{CorrelationMeasure, PairCounts};
pub use divergence::TermDistribution;
pub use predict::{HistoryTile, Predictor, PredictorKind, LANES};
pub use shift::{ErrorNormalization, ShiftScorer};
