//! Property-based bit-equality proofs for the lane-tiled batch scoring
//! kernels.
//!
//! The batched tick close only ships because every kernel is provably a
//! re-tiling of its scalar twin: for any history contents (including NaN
//! and extreme magnitudes), any shared history length (including
//! too-short), any ring rotation of the scalar input, and any predictor,
//! `predict_batch`/`score_batch` must reproduce the scalar path **bit for
//! bit** — same gate, same value, same NaN pattern.

use enblogue_stats::predict::{HistoryTile, PredictorKind, SeriesView, LANES};
use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
use proptest::prelude::*;

const MAX_LEN: usize = 24;

/// Strategy producing a raw lane cell: mostly small reals, sprinkled with
/// NaN, zero and huge magnitudes (correlations are [0, 1] in production,
/// but the kernels must not *depend* on that).
fn cell() -> impl Strategy<Value = f64> {
    (0u32..40, -1500i64..2500).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => 0.0,
        2 => 1e300,
        3 => -1e300,
        _ => v as f64 / 1000.0,
    })
}

/// Strategy producing `(len, flat time-major tile buffer)` with `len`
/// covering empty, shorter-than-min-history and full-window shapes.
fn tile_buffer() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (0usize..=MAX_LEN, proptest::collection::vec(cell(), MAX_LEN * LANES)).prop_map(
        |(len, mut values)| {
            values.truncate(len * LANES);
            (len, values)
        },
    )
}

/// Lane `l` of a time-major buffer, as the contiguous history the scalar
/// path would have seen.
fn lane_of(values: &[f64], len: usize, lane: usize) -> Vec<f64> {
    (0..len).map(|t| values[t * LANES + lane]).collect()
}

proptest! {
    /// `predict_batch` gates exactly like the scalar path and matches it
    /// bit for bit on every lane — including against every ring rotation
    /// of the scalar input (the slab hands the scalar path split views).
    #[test]
    fn predict_batch_is_bit_equal_to_scalar((len, values) in tile_buffer()) {
        let tile = HistoryTile::new(&values, len);
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            let mut out = [f64::NAN; LANES];
            let produced = p.predict_batch(tile, &mut out);
            prop_assert_eq!(
                produced,
                len >= p.min_history(),
                "{} gate diverged at len {}", p.name(), len
            );
            if !produced {
                continue;
            }
            for (l, &batch) in out.iter().enumerate() {
                let lane = lane_of(&values, len, l);
                let scalar = p.predict(&lane);
                prop_assert!(scalar.is_some(), "{} scalar refused past min_history", p.name());
                let scalar = scalar.unwrap();
                prop_assert_eq!(
                    scalar.to_bits(), batch.to_bits(),
                    "{} lane {} diverged (scalar {} vs batch {})",
                    p.name(), l, scalar, batch
                );
                // Ring rotations: every two-way split of the lane is the
                // same series, and the batch output must match them all.
                for cut in 0..=lane.len() {
                    let (head, tail) = lane.split_at(cut);
                    let split = p.predict_view(SeriesView::new(head, tail)).unwrap();
                    prop_assert_eq!(
                        split.to_bits(), batch.to_bits(),
                        "{} lane {} diverged from rotation at cut {}", p.name(), l, cut
                    );
                }
            }
        }
    }

    /// `score_batch` reproduces `score_view` bit for bit per lane — same
    /// normalisation, same noise floor, same short-history gate — for
    /// both error normalisations and every predictor.
    #[test]
    fn score_batch_is_bit_equal_to_score_view(
        (len, values) in tile_buffer(),
        actual_cells in proptest::collection::vec(cell(), LANES),
    ) {
        let tile = HistoryTile::new(&values, len);
        let mut actuals = [0.0f64; LANES];
        actuals.copy_from_slice(&actual_cells);
        for norm in [ErrorNormalization::Absolute, ErrorNormalization::Relative] {
            for kind in PredictorKind::ablation_set() {
                let scorer = ShiftScorer::new(kind, norm);
                let mut out = [f64::NAN; LANES];
                let produced = scorer.score_batch(tile, &actuals, &mut out);
                prop_assert_eq!(
                    produced,
                    len >= scorer.min_history(),
                    "{:?}/{} gate diverged at len {}", kind, norm.name(), len
                );
                if !produced {
                    continue;
                }
                for (l, &batch) in out.iter().enumerate() {
                    let lane = lane_of(&values, len, l);
                    let (scalar, _) = scorer
                        .score_view(SeriesView::contiguous(&lane), actuals[l])
                        .expect("scalar must score past min_history");
                    prop_assert_eq!(
                        scalar.to_bits(), batch.to_bits(),
                        "{:?}/{} lane {} diverged", kind, norm.name(), l
                    );
                }
            }
        }
    }
}
