//! Property-based tests for correlation measures, divergences and
//! predictors.

use enblogue_stats::correlation::{CorrelationMeasure, PairCounts};
use enblogue_stats::divergence::TermDistribution;
use enblogue_stats::predict::PredictorKind;
use enblogue_stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue_types::TagId;
use proptest::prelude::*;

/// Strategy producing consistent pair counts (ab ≤ min(a,b) ≤ max(a,b) ≤ n).
fn pair_counts() -> impl Strategy<Value = PairCounts> {
    (1u64..500, 1u64..500, 0u64..500, 0u64..2000).prop_map(|(a, b, ab_seed, extra)| {
        let ab = ab_seed % (a.min(b) + 1);
        let n = a.max(b) + extra;
        PairCounts::new(a, b, ab, n)
    })
}

proptest! {
    /// Every measure is bounded in [0, 1] on consistent counts.
    #[test]
    fn measures_bounded(counts in pair_counts()) {
        prop_assert!(counts.is_consistent());
        for m in CorrelationMeasure::ALL {
            let v = m.compute(counts);
            prop_assert!(v.is_finite(), "{} not finite on {:?}", m.name(), counts);
            prop_assert!((0.0..=1.0).contains(&v), "{} out of range on {:?}: {}", m.name(), counts, v);
        }
    }

    /// All measures are monotone in the intersection size, other counts
    /// fixed.
    #[test]
    fn measures_monotone_in_intersection(counts in pair_counts()) {
        prop_assume!(counts.ab < counts.a.min(counts.b));
        let grown = PairCounts::new(counts.a, counts.b, counts.ab + 1, counts.n);
        for m in CorrelationMeasure::ALL {
            let before = m.compute(counts);
            let after = m.compute(grown);
            prop_assert!(after >= before - 1e-12,
                "{} not monotone: {:?} -> {:?} gave {} -> {}", m.name(), counts, grown, before, after);
        }
    }

    /// Set-overlap measures are symmetric in (a, b).
    #[test]
    fn measures_symmetric(counts in pair_counts()) {
        let swapped = PairCounts::new(counts.b, counts.a, counts.ab, counts.n);
        for m in CorrelationMeasure::ALL {
            prop_assert!((m.compute(counts) - m.compute(swapped)).abs() < 1e-12, "{}", m.name());
        }
    }

    /// Jensen–Shannon divergence: symmetric, bounded by ln 2, zero iff the
    /// normalised distributions coincide.
    #[test]
    fn jsd_properties(
        left in proptest::collection::vec((0u32..20, 1u64..50), 1..15),
        right in proptest::collection::vec((0u32..20, 1u64..50), 1..15),
    ) {
        let mut p = TermDistribution::new();
        for &(t, c) in &left { p.add(TagId(t), c); }
        let mut q = TermDistribution::new();
        for &(t, c) in &right { q.add(TagId(t), c); }

        let pq = p.jensen_shannon(&q);
        let qp = q.jensen_shannon(&p);
        prop_assert!((pq - qp).abs() < 1e-9, "symmetry");
        prop_assert!(pq >= 0.0);
        prop_assert!(pq <= std::f64::consts::LN_2 + 1e-9, "bound: {}", pq);

        let sim = p.js_similarity(&q);
        prop_assert!((0.0..=1.0).contains(&sim));

        // Self-similarity is exactly 1.
        prop_assert!((p.js_similarity(&p) - 1.0).abs() < 1e-9);
    }

    /// KL divergence with smoothing is finite and non-negative.
    #[test]
    fn kl_finite_nonnegative(
        left in proptest::collection::vec((0u32..20, 1u64..50), 1..15),
        right in proptest::collection::vec((0u32..20, 1u64..50), 1..15),
        lambda in 0.01f64..2.0,
    ) {
        let mut p = TermDistribution::new();
        for &(t, c) in &left { p.add(TagId(t), c); }
        let mut q = TermDistribution::new();
        for &(t, c) in &right { q.add(TagId(t), c); }

        let kl = p.kl_divergence(&q, lambda);
        prop_assert!(kl.is_finite());
        prop_assert!(kl >= 0.0);
        // Gibbs: KL(p‖p) == 0 under equal smoothing.
        prop_assert!(p.kl_divergence(&p, lambda).abs() < 1e-9);
    }

    /// Predictors are exact on constant series and never produce NaN on
    /// bounded input.
    #[test]
    fn predictors_sane_on_bounded_series(
        series in proptest::collection::vec(0.0f64..1.0, 2..40),
        constant in 0.0f64..1.0,
    ) {
        for kind in PredictorKind::ablation_set() {
            let p = kind.build();
            if let Some(pred) = p.predict(&series) {
                prop_assert!(pred.is_finite(), "{} produced non-finite value", p.name());
            }
            let flat = vec![constant; series.len()];
            let pred = p.predict(&flat).unwrap();
            prop_assert!((pred - constant).abs() < 1e-6, "{} drifted on constant series", p.name());
        }
    }

    /// The shift scorer never reports negative scores and never alarms on
    /// non-increasing series.
    #[test]
    fn scorer_nonnegative_and_quiet_on_decline(
        mut series in proptest::collection::vec(0.0f64..1.0, 3..30),
    ) {
        series.sort_by(|a, b| b.partial_cmp(a).unwrap()); // non-increasing
        for kind in PredictorKind::ablation_set() {
            let scorer = ShiftScorer::new(kind, ErrorNormalization::Absolute);
            for i in 1..series.len() {
                if let Some((score, _)) = scorer.score(&series[..i], series[i]) {
                    prop_assert!(score >= 0.0);
                    // Last-value and MA never alarm on a decline; trend
                    // followers (holt/ols) can overshoot downwards and then
                    // see a "rise" relative to their forecast, which is
                    // correct behaviour, so only check the non-trend ones.
                    if matches!(kind, PredictorKind::Last | PredictorKind::MovingAverage(_))
                        && scorer.predictor_name() == "last" {
                            prop_assert_eq!(score, 0.0, "last-value alarmed on decline");
                        }
                }
            }
        }
    }
}
