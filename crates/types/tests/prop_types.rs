//! Property-based tests for the core data model.

use enblogue_types::{Document, TagId, TagPair, TickSpec, Timestamp};
use proptest::prelude::*;

proptest! {
    /// Pair construction is symmetric and canonical.
    #[test]
    fn pair_is_canonical(a in 0u32..10_000, b in 0u32..10_000) {
        prop_assume!(a != b);
        let p = TagPair::new(TagId(a), TagId(b));
        let q = TagPair::new(TagId(b), TagId(a));
        prop_assert_eq!(p, q);
        prop_assert!(p.lo() < p.hi());
        prop_assert!(p.contains(TagId(a)) && p.contains(TagId(b)));
        prop_assert_eq!(p.other(TagId(a)), Some(TagId(b)));
    }

    /// Packing is a bijection on canonical pairs.
    #[test]
    fn pair_packing_roundtrips(a in 0u32.., b in 0u32..) {
        prop_assume!(a != b);
        let p = TagPair::new(TagId(a), TagId(b));
        prop_assert_eq!(TagPair::from_packed(p.packed()), p);
    }

    /// Every timestamp lands in exactly the tick whose bounds contain it.
    #[test]
    fn tick_of_respects_bounds(ts in 0u64..u64::MAX / 2, width in 1u64..10_000_000) {
        let spec = TickSpec::new(width);
        let ts = Timestamp(ts);
        let tick = spec.tick_of(ts);
        prop_assert!(spec.start_of(tick) <= ts);
        prop_assert!(ts < spec.end_of(tick));
    }

    /// ticks_for always covers the duration.
    #[test]
    fn ticks_for_covers_duration(duration in 0u64..1_000_000_000, width in 1u64..10_000_000) {
        let spec = TickSpec::new(width);
        let n = spec.ticks_for(duration) as u64;
        prop_assert!(n >= 1);
        prop_assert!(n * width >= duration);
        // Minimality: one fewer tick would not cover (unless duration fits in 0 ticks).
        if n > 1 {
            prop_assert!((n - 1) * width < duration);
        }
    }

    /// Document builder output is always sorted and deduplicated, and the
    /// merged annotation view is sorted, deduplicated, and complete.
    #[test]
    fn document_invariants(
        tags in proptest::collection::vec(0u32..500, 0..40),
        entities in proptest::collection::vec(0u32..500, 0..40),
    ) {
        let doc = Document::builder(1, Timestamp::ZERO)
            .tags(tags.iter().map(|&t| TagId(t)))
            .entities(entities.iter().map(|&t| TagId(t)))
            .build();

        prop_assert!(doc.tags.windows(2).all(|w| w[0] < w[1]), "tags sorted+deduped");
        prop_assert!(doc.entities.windows(2).all(|w| w[0] < w[1]), "entities sorted+deduped");

        let merged: Vec<TagId> = doc.annotations().collect();
        prop_assert!(merged.windows(2).all(|w| w[0] < w[1]), "merged sorted+deduped");

        let mut expected: Vec<TagId> = tags.iter().chain(entities.iter()).map(|&t| TagId(t)).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(merged, expected);
    }
}
