//! Engine output: emergent-topic rankings.

use crate::pair::TagPair;
use crate::time::{Tick, Timestamp};
use serde::{Deserialize, Serialize};

/// One emitted ranking: the engine's top-k emergent topics at a tick close.
///
/// §3(iii): "These values are used to rank tag pairs and to report the
/// top-k most interesting ones, thus presenting the user with emergent
/// topics." Snapshots are what the ranking sink pushes to the front-end
/// and what the evaluation harness scores against ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingSnapshot {
    /// The tick this ranking closes.
    pub tick: Tick,
    /// Stream time at the tick end.
    pub time: Timestamp,
    /// `(pair, score)`, best first.
    pub ranked: Vec<(TagPair, f64)>,
}

impl RankingSnapshot {
    /// Rank position (0-based) of `pair`, if present.
    pub fn rank_of(&self, pair: TagPair) -> Option<usize> {
        self.ranked.iter().position(|&(p, _)| p == pair)
    }

    /// Whether `pair` is in the top `k` of this snapshot.
    pub fn contains_in_top(&self, pair: TagPair, k: usize) -> bool {
        self.rank_of(pair).is_some_and(|r| r < k)
    }

    /// The score of `pair`, if ranked.
    pub fn score_of(&self, pair: TagPair) -> Option<f64> {
        self.ranked.iter().find(|&&(p, _)| p == pair).map(|&(_, s)| s)
    }

    /// The best `k` entries (the whole ranking when it is shorter).
    pub fn top(&self, k: usize) -> &[(TagPair, f64)] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Iterates the distinct member tags of the ranked pairs, in ranking
    /// order (each pair contributes its low then high tag; duplicates
    /// across pairs are *not* filtered — callers that need a set should
    /// collect and dedup).
    pub fn member_tags(&self) -> impl Iterator<Item = crate::tag::TagId> + '_ {
        self.ranked.iter().flat_map(|&(p, _)| [p.lo(), p.hi()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::TagId;

    fn pair(a: u32, b: u32) -> TagPair {
        TagPair::new(TagId(a), TagId(b))
    }

    #[test]
    fn lookup_helpers() {
        let snap = RankingSnapshot {
            tick: Tick(3),
            time: Timestamp::from_hours(3),
            ranked: vec![(pair(1, 2), 0.9), (pair(3, 4), 0.4)],
        };
        assert_eq!(snap.rank_of(pair(1, 2)), Some(0));
        assert_eq!(snap.rank_of(pair(3, 4)), Some(1));
        assert_eq!(snap.rank_of(pair(5, 6)), None);
        assert!(snap.contains_in_top(pair(1, 2), 1));
        assert!(!snap.contains_in_top(pair(3, 4), 1));
        assert_eq!(snap.score_of(pair(3, 4)), Some(0.4));
        assert_eq!(snap.score_of(pair(5, 6)), None);
    }
}
