//! A fast, non-cryptographic hasher for id-keyed hot-path maps.
//!
//! EnBlogue keys almost every hot map by small integers ([`crate::TagId`],
//! packed [`crate::TagPair`] keys, document ids). The standard library's
//! SipHash is DoS-resistant but needlessly slow for this; the FxHash
//! multiply-rotate scheme (as used by rustc) is the conventional choice.
//! We implement it locally (~30 lines) instead of pulling a dependency.
//!
//! Not suitable for hashing attacker-controlled strings in security-relevant
//! contexts; workload tags in this system come from our own interner.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state.rotate_left(5) ^ word) * K` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"emergent"), hash_of(&"emergent"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that consecutive ids
        // spread: hot maps are keyed by dense u32 tag ids.
        let hashes: Vec<u64> = (0u32..64).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Inputs differing only in a non-8-aligned tail must differ.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&"abcdefghi"), hash_of(&"abcdefghj"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.get(&3), None);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(99);
        assert!(set.contains(&99));
    }
}
