//! Tags and the global tag interner.
//!
//! EnBlogue's unit of analysis is the *tag*: editorial categories and
//! descriptors (NYT archive), hashtags (tweets), named entities produced by
//! the entity tagger, and — for the relative-entropy correlation measures —
//! plain content terms. All of them share one id space so that the
//! correlation tracker can form pairs across kinds ("tag/entity mixtures as
//! emergent topics", §3 of the paper).

use crate::fxhash::FxHashMap;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a document in the stream.
pub type DocId = u64;

/// A compact, interned tag identifier.
///
/// `TagId`s are dense `u32`s handed out by a [`TagInterner`]; all hot-path
/// state (tick counters, pair registries) is keyed by them rather than by
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TagId(pub u32);

impl TagId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What kind of annotation a tag is.
///
/// Kinds matter for personalization (users can restrict to categories) and
/// for the entity pipeline (entities can be "handled independently of the
/// regular tags, or combined", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagKind {
    /// Editorial category (NYT taxonomy node, pre-defined topic category).
    Category,
    /// Editorial descriptor (NYT fine-grained subject annotation).
    Descriptor,
    /// Social-media hashtag.
    Hashtag,
    /// Named entity produced by the entity tagger (person/org/place…).
    Entity,
    /// Plain content term (used by term-distribution divergence measures).
    Term,
}

impl TagKind {
    /// All kinds, in a stable order (useful for per-kind statistics).
    pub const ALL: [TagKind; 5] =
        [TagKind::Category, TagKind::Descriptor, TagKind::Hashtag, TagKind::Entity, TagKind::Term];

    /// Short label used in experiment output.
    pub const fn label(self) -> &'static str {
        match self {
            TagKind::Category => "cat",
            TagKind::Descriptor => "desc",
            TagKind::Hashtag => "hash",
            TagKind::Entity => "ent",
            TagKind::Term => "term",
        }
    }
}

impl fmt::Display for TagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Default)]
struct InternerInner {
    by_name: FxHashMap<(String, TagKind), TagId>,
    names: Vec<Arc<str>>,
    kinds: Vec<TagKind>,
}

/// Thread-safe string-to-[`TagId`] interner.
///
/// The interner is shared (`Arc`-cloneable via [`TagInterner::clone`])
/// between workload generators, the entity tagger and the engine so that
/// every component speaks the same id space. Interning the same
/// `(name, kind)` twice returns the same id; the same name under two kinds
/// yields two ids (the hashtag `iceland` and the entity `iceland` are
/// distinct signals).
#[derive(Clone, Default)]
pub struct TagInterner {
    inner: Arc<RwLock<InternerInner>>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` under `kind`, returning its stable id.
    ///
    /// Names are case-normalised to lowercase: Web 2.0 tags are
    /// case-insensitive in practice and the paper's entity tagger maps
    /// different namings of an entity to one unique name.
    pub fn intern(&self, name: &str, kind: TagKind) -> TagId {
        let normalized = normalize(name);
        // Fast path: read lock only.
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_name.get(&(normalized.clone(), kind)) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = inner.by_name.get(&(normalized.clone(), kind)) {
            return id;
        }
        let id = TagId(u32::try_from(inner.names.len()).expect("more than u32::MAX tags interned"));
        inner.names.push(Arc::from(normalized.as_str()));
        inner.kinds.push(kind);
        inner.by_name.insert((normalized, kind), id);
        id
    }

    /// Looks up an already-interned tag without creating it.
    pub fn get(&self, name: &str, kind: TagKind) -> Option<TagId> {
        let normalized = normalize(name);
        self.inner.read().by_name.get(&(normalized, kind)).copied()
    }

    /// The name of `id`, if it was handed out by this interner.
    pub fn name(&self, id: TagId) -> Option<Arc<str>> {
        self.inner.read().names.get(id.index()).cloned()
    }

    /// The kind of `id`, if it was handed out by this interner.
    pub fn kind(&self, id: TagId) -> Option<TagKind> {
        self.inner.read().kinds.get(id.index()).copied()
    }

    /// Human-readable rendering of `id` (`name` or `#raw` if unknown).
    pub fn display(&self, id: TagId) -> String {
        match self.name(id) {
            Some(name) => name.to_string(),
            None => format!("{id}"),
        }
    }

    /// Number of interned tags.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// Whether no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All ids of the given kind (snapshot; order = interning order).
    pub fn ids_of_kind(&self, kind: TagKind) -> Vec<TagId> {
        let inner = self.inner.read();
        inner
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| TagId(i as u32))
            .collect()
    }
}

impl fmt::Debug for TagInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TagInterner").field("len", &self.len()).finish()
    }
}

fn normalize(name: &str) -> String {
    name.trim().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let interner = TagInterner::new();
        let a = interner.intern("Volcano", TagKind::Descriptor);
        let b = interner.intern("volcano", TagKind::Descriptor);
        let c = interner.intern("  volcano ", TagKind::Descriptor);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn kinds_separate_namespaces() {
        let interner = TagInterner::new();
        let hashtag = interner.intern("iceland", TagKind::Hashtag);
        let entity = interner.intern("iceland", TagKind::Entity);
        assert_ne!(hashtag, entity);
        assert_eq!(interner.kind(hashtag), Some(TagKind::Hashtag));
        assert_eq!(interner.kind(entity), Some(TagKind::Entity));
    }

    #[test]
    fn lookup_without_interning() {
        let interner = TagInterner::new();
        assert_eq!(interner.get("eyjafjallajokull", TagKind::Entity), None);
        let id = interner.intern("eyjafjallajokull", TagKind::Entity);
        assert_eq!(interner.get("Eyjafjallajokull", TagKind::Entity), Some(id));
    }

    #[test]
    fn names_round_trip() {
        let interner = TagInterner::new();
        let id = interner.intern("Air Traffic", TagKind::Category);
        assert_eq!(interner.name(id).as_deref(), Some("air traffic"));
        assert_eq!(interner.display(id), "air traffic");
        assert_eq!(interner.display(TagId(999)), "#999");
        assert_eq!(interner.name(TagId(999)), None);
    }

    #[test]
    fn ids_of_kind_filters() {
        let interner = TagInterner::new();
        let c1 = interner.intern("politics", TagKind::Category);
        let _d = interner.intern("elections", TagKind::Descriptor);
        let c2 = interner.intern("sports", TagKind::Category);
        assert_eq!(interner.ids_of_kind(TagKind::Category), vec![c1, c2]);
    }

    #[test]
    fn shared_across_clones() {
        let interner = TagInterner::new();
        let clone = interner.clone();
        let id = interner.intern("shared", TagKind::Hashtag);
        assert_eq!(clone.get("shared", TagKind::Hashtag), Some(id));
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let interner = TagInterner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let interner = interner.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| interner.intern(&format!("tag{i}"), TagKind::Hashtag))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<TagId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must observe the same id for the same name.
        for ids in &results[1..] {
            assert_eq!(ids, &results[0]);
        }
        assert_eq!(interner.len(), 100);
    }
}
