//! Versioned slot-based routing of packed pair keys to shards.
//!
//! [`shard_of_packed`] is a *pure function* — good enough while shard
//! assignment never changes, but dynamic rebalancing needs routing that is
//! **state**: migratable, versioned, and shareable between the pair
//! registry (which owns it) and partitioning workers (which consult a
//! snapshot far from the registry). This module provides that state in two
//! layers:
//!
//! * [`RoutingTable`] — an immutable epoch of the assignment. Keys hash
//!   onto a fixed grid of *slots* (`slot = shard_of_packed(packed,
//!   slot_count)`, so the placement of keys on slots is still the fixed
//!   SplitMix64 mix and part of the deterministic replay contract) and a
//!   `slot → shard` vector maps each slot to its owning shard. Rebalancing
//!   re-targets whole slots, never individual keys, so a migration pass
//!   moves contiguous key *ranges* of the hash space between shard stores.
//! * [`SharedRouting`] — the handle connecting the single writer (the
//!   registry, which publishes a new epoch after every migration) to any
//!   of readers (ingest partitioning workers snapshot the current table
//!   per batch). A consumer that partitioned a batch under an old epoch can
//!   detect the mismatch from [`RoutingTable::epoch`] and re-partition.
//!
//! Routing never changes *what* is computed — rankings are identical for
//! any table (pinned by `tests/stage_parity.rs`) — only *where* per-pair
//! state lives and therefore how evenly work spreads over shard stores.

use crate::pair::shard_of_packed;
use std::sync::{Arc, RwLock};

/// Default number of slots allocated per shard store.
///
/// Slots are the granularity of migration: more slots per shard mean finer
/// rebalancing (a hot slot moves alone) at the price of a longer
/// assignment vector. 32 keeps the table a few hundred entries for typical
/// shard pools while still isolating individual hot slots.
pub const DEFAULT_SLOTS_PER_SHARD: usize = 32;

/// One immutable epoch of the slot → shard assignment.
///
/// Tables are cheap to clone-and-modify and are shared behind `Arc`; the
/// registry replaces the whole table on every rebalance (epochs only move
/// forward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    /// `assignment[slot]` = index of the shard store owning that slot.
    assignment: Vec<u16>,
    /// Size of the shard-store pool the assignment targets.
    shards: usize,
    /// Monotonic version; bumped by every published reassignment.
    epoch: u64,
}

impl RoutingTable {
    /// The epoch-0 uniform table: `slots` slots spread round-robin over a
    /// pool of `shards` stores.
    ///
    /// This is what "static sharding" means after the routing refactor:
    /// the uniform table is never republished, so the assignment a key
    /// hashes to is fixed for the whole run.
    ///
    /// # Panics
    /// Panics if `shards` is zero, exceeds `u16::MAX` stores, or `slots <
    /// shards` (every store needs at least one slot to ever own keys).
    pub fn uniform(shards: usize, slots: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(shards <= u16::MAX as usize, "shard pool exceeds u16 indices");
        assert!(slots >= shards, "need at least one slot per shard");
        RoutingTable {
            assignment: (0..slots).map(|slot| (slot % shards) as u16).collect(),
            shards,
            epoch: 0,
        }
    }

    /// [`RoutingTable::uniform`] with [`DEFAULT_SLOTS_PER_SHARD`] slots
    /// per shard.
    pub fn uniform_default(shards: usize) -> Self {
        RoutingTable::uniform(shards, shards * DEFAULT_SLOTS_PER_SHARD)
    }

    /// Rehydrates a table from dehydrated parts — the snapshot seam: a
    /// restored registry resumes under the exact epoch it checkpointed,
    /// not epoch 0 (in-flight consumers detect staleness by epoch, so the
    /// counter must survive restarts).
    ///
    /// # Panics
    /// Panics under the same invariants as [`RoutingTable::uniform`] /
    /// [`RoutingTable::reassigned`]: a positive pool within `u16`
    /// indices, at least one slot per shard, and every assignment entry
    /// inside the pool.
    pub fn from_parts(shards: usize, epoch: u64, assignment: Vec<u16>) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(shards <= u16::MAX as usize, "shard pool exceeds u16 indices");
        assert!(assignment.len() >= shards, "need at least one slot per shard");
        assert!(
            assignment.iter().all(|&s| (s as usize) < shards),
            "assignment targets a shard outside the pool"
        );
        RoutingTable { assignment, shards, epoch }
    }

    /// The successor epoch carrying a new slot → shard assignment.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the current slot count
    /// or names a shard outside the pool — rebalancing may re-target slots
    /// but never resize the slot grid or the store pool.
    pub fn reassigned(&self, assignment: Vec<u16>) -> Self {
        assert_eq!(assignment.len(), self.assignment.len(), "slot grid is fixed per registry");
        assert!(
            assignment.iter().all(|&s| (s as usize) < self.shards),
            "assignment targets a shard outside the pool"
        );
        RoutingTable { assignment, shards: self.shards, epoch: self.epoch + 1 }
    }

    /// Number of slots in the grid.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.assignment.len()
    }

    /// Size of the shard-store pool (assignments target `0..shard_count`).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The table's version (0 = the uniform table).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The slot a packed pair key hashes to — a pure function of the key
    /// and the slot count, independent of the epoch.
    #[inline]
    pub fn slot_of(&self, packed: u64) -> usize {
        shard_of_packed(packed, self.assignment.len())
    }

    /// The shard store owning `slot` in this epoch.
    #[inline]
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        self.assignment[slot] as usize
    }

    /// Routes a packed pair key to its shard store in this epoch.
    #[inline]
    pub fn route(&self, packed: u64) -> usize {
        self.shard_of_slot(self.slot_of(packed))
    }

    /// The raw slot → shard assignment (index = slot).
    pub fn assignment(&self) -> &[u16] {
        &self.assignment
    }

    /// Number of distinct shard stores the assignment actually uses (the
    /// *active* shard count of a dynamically-sized registry; ≤
    /// [`RoutingTable::shard_count`]).
    pub fn active_shards(&self) -> usize {
        let mut used = vec![false; self.shards];
        for &s in &self.assignment {
            used[s as usize] = true;
        }
        used.iter().filter(|&&u| u).count()
    }
}

/// The shared, versioned routing handle: one writer (the pair registry),
/// many snapshot readers (partitioning workers, inspection).
///
/// Readers take an [`Arc`] snapshot of the current epoch and keep using it
/// lock-free; the writer publishes a replacement table atomically. A
/// reader can always tell whether its snapshot is stale by comparing
/// epochs.
#[derive(Debug, Clone)]
pub struct SharedRouting {
    current: Arc<RwLock<Arc<RoutingTable>>>,
}

impl SharedRouting {
    /// Wraps a starting table.
    pub fn new(table: RoutingTable) -> Self {
        SharedRouting { current: Arc::new(RwLock::new(Arc::new(table))) }
    }

    /// A static handle over the uniform table with default granularity —
    /// what consumers use when no rebalancer is attached.
    pub fn uniform(shards: usize) -> Self {
        SharedRouting::new(RoutingTable::uniform_default(shards))
    }

    /// The current epoch's table (lock held only for the `Arc` clone).
    pub fn snapshot(&self) -> Arc<RoutingTable> {
        Arc::clone(&self.current.read().expect("routing lock poisoned"))
    }

    /// Atomically replaces the table.
    ///
    /// # Panics
    /// Panics if the new table does not move the epoch forward or changes
    /// the slot grid / pool size — republishing is reassignment only.
    pub fn publish(&self, table: RoutingTable) {
        let mut current = self.current.write().expect("routing lock poisoned");
        assert!(table.epoch() > current.epoch(), "published epochs must move forward");
        assert_eq!(table.slot_count(), current.slot_count(), "slot grid is fixed");
        assert_eq!(table.shard_count(), current.shard_count(), "shard pool is fixed");
        *current = Arc::new(table);
    }
}

impl PartialEq for SharedRouting {
    /// Handles compare by the *content* of their current tables (used by
    /// spec equality in tests; two handles over identical epochs are
    /// interchangeable for partitioning).
    fn eq(&self, other: &Self) -> bool {
        self.snapshot() == other.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_spreads_slots_round_robin() {
        let table = RoutingTable::uniform(4, 8);
        assert_eq!(table.assignment(), &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(table.shard_count(), 4);
        assert_eq!(table.slot_count(), 8);
        assert_eq!(table.epoch(), 0);
        assert_eq!(table.active_shards(), 4);
    }

    #[test]
    fn routing_agrees_with_slot_hashing() {
        let table = RoutingTable::uniform_default(8);
        for packed in [0u64, 7, 1 << 40, u64::MAX] {
            let slot = table.slot_of(packed);
            assert_eq!(slot, shard_of_packed(packed, table.slot_count()));
            assert_eq!(table.route(packed), table.shard_of_slot(slot));
            assert!(table.route(packed) < table.shard_count());
        }
    }

    #[test]
    fn reassignment_bumps_the_epoch_and_moves_keys() {
        let table = RoutingTable::uniform(2, 4);
        let moved = table.reassigned(vec![0, 0, 0, 1]);
        assert_eq!(moved.epoch(), 1);
        assert_eq!(moved.shard_of_slot(1), 0, "slot 1 re-targeted");
        assert_eq!(moved.active_shards(), 2);
        let collapsed = moved.reassigned(vec![0, 0, 0, 0]);
        assert_eq!(collapsed.active_shards(), 1, "dynamic shrink to one active store");
        assert_eq!(collapsed.shard_count(), 2, "pool size unchanged");
    }

    #[test]
    #[should_panic(expected = "slot grid is fixed")]
    fn reassignment_rejects_resizing_the_grid() {
        let _ = RoutingTable::uniform(2, 4).reassigned(vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside the pool")]
    fn reassignment_rejects_unknown_shards() {
        let _ = RoutingTable::uniform(2, 4).reassigned(vec![0, 1, 2, 0]);
    }

    #[test]
    fn shared_routing_publishes_new_epochs_to_snapshots() {
        let shared = SharedRouting::new(RoutingTable::uniform(2, 4));
        let before = shared.snapshot();
        let rebalanced = before.reassigned(vec![1, 1, 0, 0]);
        shared.publish(rebalanced.clone());
        assert_eq!(before.epoch(), 0, "old snapshots are immutable");
        let after = shared.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(*after, rebalanced);
        // Stale-batch detection is an epoch comparison.
        assert_ne!(before.epoch(), after.epoch());
    }

    #[test]
    #[should_panic(expected = "move forward")]
    fn republishing_an_old_epoch_is_rejected() {
        let shared = SharedRouting::new(RoutingTable::uniform(2, 4));
        let epoch1 = shared.snapshot().reassigned(vec![1, 0, 1, 0]);
        shared.publish(epoch1.clone());
        shared.publish(epoch1); // same epoch again
    }

    #[test]
    fn uniform_handle_matches_uniform_table() {
        let shared = SharedRouting::uniform(3);
        let table = shared.snapshot();
        assert_eq!(*table, RoutingTable::uniform_default(3));
        assert_eq!(table.slot_count(), 3 * DEFAULT_SLOTS_PER_SHARD);
        // Content equality of handles.
        assert_eq!(shared, SharedRouting::uniform(3));
        assert_ne!(shared, SharedRouting::uniform(2));
    }

    #[test]
    #[should_panic(expected = "at least one slot per shard")]
    fn too_few_slots_panic() {
        let _ = RoutingTable::uniform(4, 3);
    }
}
