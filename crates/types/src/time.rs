//! Stream time and its discretisation into ticks.
//!
//! EnBlogue aggregates the document stream into fixed-width *ticks* (the
//! paper uses sliding-window averages over the stream; tick-aligned windows
//! make every derived series exact and reproducible — a window count is the
//! sum of per-tick counts because each document falls into exactly one
//! tick).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in stream time, in milliseconds since the stream epoch.
///
/// The epoch is workload-defined (e.g. the first day of a replayed archive).
/// `Timestamp` is deliberately *not* wall-clock time: replayed archives and
/// time-lapse simulations run much faster than real time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// One second of stream time, in milliseconds.
    pub const SECOND: u64 = 1_000;
    /// One minute of stream time, in milliseconds.
    pub const MINUTE: u64 = 60 * Self::SECOND;
    /// One hour of stream time, in milliseconds.
    pub const HOUR: u64 = 60 * Self::MINUTE;
    /// One day of stream time, in milliseconds.
    pub const DAY: u64 = 24 * Self::HOUR;

    /// The stream epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * Self::SECOND)
    }

    /// Builds a timestamp from whole minutes.
    #[inline]
    pub const fn from_minutes(minutes: u64) -> Self {
        Timestamp(minutes * Self::MINUTE)
    }

    /// Builds a timestamp from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * Self::HOUR)
    }

    /// Builds a timestamp from whole days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days * Self::DAY)
    }

    /// Raw milliseconds since the stream epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This timestamp advanced by `millis`.
    #[inline]
    #[must_use]
    pub const fn plus(self, millis: u64) -> Self {
        Timestamp(self.0 + millis)
    }

    /// Saturating difference `self - earlier` in milliseconds.
    #[inline]
    pub const fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    /// Formats as `d<days>+hh:mm:ss` for readable experiment output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / Self::SECOND;
        let days = total_secs / 86_400;
        let hours = (total_secs % 86_400) / 3_600;
        let minutes = (total_secs % 3_600) / 60;
        let secs = total_secs % 60;
        write!(f, "d{days}+{hours:02}:{minutes:02}:{secs:02}")
    }
}

/// A discrete tick index: the `n`-th tick of the stream.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// The first tick.
    pub const ZERO: Tick = Tick(0);

    /// The tick immediately after this one.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Tick {
        Tick(self.0 + 1)
    }

    /// The tick immediately before this one (saturating at
    /// [`Tick::ZERO`]).
    #[inline]
    #[must_use]
    pub const fn prev(self) -> Tick {
        Tick(self.0.saturating_sub(1))
    }

    /// Saturating number of ticks elapsed since `earlier`.
    #[inline]
    pub const fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Mapping between continuous stream time and discrete ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickSpec {
    width_ms: u64,
}

impl TickSpec {
    /// A tick spec with the given tick width in milliseconds.
    ///
    /// # Panics
    /// Panics if `width_ms == 0`.
    pub fn new(width_ms: u64) -> Self {
        assert!(width_ms > 0, "tick width must be positive");
        TickSpec { width_ms }
    }

    /// Hourly ticks — the default granularity for archive replays.
    pub fn hourly() -> Self {
        TickSpec::new(Timestamp::HOUR)
    }

    /// Daily ticks — used for multi-year archive experiments.
    pub fn daily() -> Self {
        TickSpec::new(Timestamp::DAY)
    }

    /// Per-minute ticks — used for live/tweet simulations.
    pub fn minutely() -> Self {
        TickSpec::new(Timestamp::MINUTE)
    }

    /// The tick width in milliseconds.
    #[inline]
    pub const fn width_ms(&self) -> u64 {
        self.width_ms
    }

    /// The tick containing `ts`.
    #[inline]
    pub const fn tick_of(&self, ts: Timestamp) -> Tick {
        Tick(ts.0 / self.width_ms)
    }

    /// The inclusive start of `tick`.
    #[inline]
    pub const fn start_of(&self, tick: Tick) -> Timestamp {
        Timestamp(tick.0 * self.width_ms)
    }

    /// The exclusive end of `tick`.
    #[inline]
    pub const fn end_of(&self, tick: Tick) -> Timestamp {
        Timestamp((tick.0 + 1) * self.width_ms)
    }

    /// Number of whole ticks covering `duration_ms`, rounded up (at least 1).
    ///
    /// Used to convert window lengths such as "2 days" into tick counts.
    #[inline]
    pub const fn ticks_for(&self, duration_ms: u64) -> usize {
        let t = duration_ms.div_ceil(self.width_ms);
        if t == 0 {
            1
        } else {
            t as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_constructors_agree() {
        assert_eq!(Timestamp::from_secs(60), Timestamp::from_minutes(1));
        assert_eq!(Timestamp::from_minutes(60), Timestamp::from_hours(1));
        assert_eq!(Timestamp::from_hours(24), Timestamp::from_days(1));
    }

    #[test]
    fn timestamp_since_saturates() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(25);
        assert_eq!(b.since(a), 15_000);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn timestamp_display_is_readable() {
        let ts = Timestamp::from_days(2)
            .plus(3 * Timestamp::HOUR + 4 * Timestamp::MINUTE + 5 * Timestamp::SECOND);
        assert_eq!(ts.to_string(), "d2+03:04:05");
        assert_eq!(Timestamp::ZERO.to_string(), "d0+00:00:00");
    }

    #[test]
    fn tick_of_maps_boundaries_correctly() {
        let spec = TickSpec::hourly();
        assert_eq!(spec.tick_of(Timestamp::ZERO), Tick(0));
        assert_eq!(spec.tick_of(Timestamp(Timestamp::HOUR - 1)), Tick(0));
        assert_eq!(spec.tick_of(Timestamp(Timestamp::HOUR)), Tick(1));
        assert_eq!(spec.tick_of(Timestamp::from_days(1)), Tick(24));
    }

    #[test]
    fn tick_bounds_roundtrip() {
        let spec = TickSpec::minutely();
        let tick = Tick(42);
        assert_eq!(spec.tick_of(spec.start_of(tick)), tick);
        // End is exclusive: it belongs to the next tick.
        assert_eq!(spec.tick_of(spec.end_of(tick)), tick.next());
    }

    #[test]
    fn ticks_for_rounds_up_and_is_at_least_one() {
        let spec = TickSpec::hourly();
        assert_eq!(spec.ticks_for(0), 1);
        assert_eq!(spec.ticks_for(1), 1);
        assert_eq!(spec.ticks_for(Timestamp::HOUR), 1);
        assert_eq!(spec.ticks_for(Timestamp::HOUR + 1), 2);
        assert_eq!(spec.ticks_for(2 * Timestamp::DAY), 48);
    }

    #[test]
    #[should_panic(expected = "tick width must be positive")]
    fn zero_width_tick_spec_panics() {
        let _ = TickSpec::new(0);
    }

    #[test]
    fn tick_next_and_since() {
        let t = Tick(5);
        assert_eq!(t.next(), Tick(6));
        assert_eq!(t.next().since(t), 1);
        assert_eq!(t.since(t.next()), 0);
        assert_eq!(format!("{t}"), "t5");
    }
}
