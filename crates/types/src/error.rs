//! Error type shared across the EnBlogue workspace.

use std::fmt;

/// Errors surfaced by EnBlogue components.
///
/// The system is a streaming engine: most conditions are handled inline
/// (e.g. unknown tags are simply not tracked), so the error surface is
/// deliberately small and covers configuration and wiring mistakes that a
/// caller must fix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnBlogueError {
    /// A configuration value was out of its valid range.
    InvalidConfig {
        /// The offending parameter, e.g. `"window_ticks"`.
        parameter: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// An operator graph was mis-wired (cycle, dangling edge, missing node).
    PlanError(String),
    /// A referenced entity/tag/user was not found.
    NotFound(String),
    /// A stream source failed to produce items.
    SourceError(String),
    /// A snapshot file is unreadable as a snapshot: truncated, checksum
    /// mismatch, bad magic, or structurally malformed. Restores must
    /// surface this instead of panicking — a half-written checkpoint from
    /// a crash is exactly the input the restore path exists for.
    SnapshotCorrupt(String),
    /// A snapshot was written by an incompatible format version.
    SnapshotVersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A snapshot was taken under a different engine configuration than
    /// the one offered for resume (restored state is only meaningful under
    /// the exact semantic and execution parameters it was built with).
    SnapshotConfigMismatch(String),
    /// Filesystem I/O failed while writing or reading a snapshot.
    SnapshotIo(String),
}

impl EnBlogueError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(parameter: &'static str, message: impl Into<String>) -> Self {
        EnBlogueError::InvalidConfig { parameter, message: message.into() }
    }
}

impl fmt::Display for EnBlogueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnBlogueError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            EnBlogueError::PlanError(msg) => write!(f, "operator plan error: {msg}"),
            EnBlogueError::NotFound(what) => write!(f, "not found: {what}"),
            EnBlogueError::SourceError(msg) => write!(f, "stream source error: {msg}"),
            EnBlogueError::SnapshotCorrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            EnBlogueError::SnapshotVersionMismatch { found, supported } => {
                write!(
                    f,
                    "snapshot version mismatch: file has v{found}, this build reads v{supported}"
                )
            }
            EnBlogueError::SnapshotConfigMismatch(msg) => {
                write!(f, "snapshot configuration mismatch: {msg}")
            }
            EnBlogueError::SnapshotIo(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl std::error::Error for EnBlogueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = EnBlogueError::invalid_config("window_ticks", "must be >= 2");
        assert_eq!(err.to_string(), "invalid configuration for `window_ticks`: must be >= 2");

        let err = EnBlogueError::PlanError("cycle detected".into());
        assert!(err.to_string().contains("cycle detected"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EnBlogueError::NotFound("user".into()));
    }
}
