//! Canonical unordered tag pairs — the candidate topics of EnBlogue.

use crate::tag::TagId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unordered pair of distinct tags, stored in canonical `(lo, hi)` order.
///
/// A candidate emergent topic is a pair of tags of which at least one is a
/// seed (§3(i) of the paper). Canonical ordering guarantees that
/// `(a, b)` and `(b, a)` address the same tracked state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TagPair {
    lo: TagId,
    hi: TagId,
}

impl TagPair {
    /// Creates the canonical pair of `a` and `b`.
    ///
    /// # Panics
    /// Panics if `a == b` — a tag's correlation with itself is always 1 and
    /// never an emergent topic; forming such a pair is a logic error.
    #[inline]
    pub fn new(a: TagId, b: TagId) -> Self {
        assert_ne!(a, b, "a TagPair requires two distinct tags");
        if a < b {
            TagPair { lo: a, hi: b }
        } else {
            TagPair { lo: b, hi: a }
        }
    }

    /// Creates the canonical pair if the tags are distinct.
    #[inline]
    pub fn try_new(a: TagId, b: TagId) -> Option<Self> {
        if a == b {
            None
        } else {
            Some(TagPair::new(a, b))
        }
    }

    /// The smaller tag id of the pair.
    #[inline]
    pub const fn lo(self) -> TagId {
        self.lo
    }

    /// The larger tag id of the pair.
    #[inline]
    pub const fn hi(self) -> TagId {
        self.hi
    }

    /// Whether `tag` is one of the two members.
    #[inline]
    pub fn contains(self, tag: TagId) -> bool {
        self.lo == tag || self.hi == tag
    }

    /// Given one member, returns the other; `None` if `tag` is not a member.
    #[inline]
    pub fn other(self, tag: TagId) -> Option<TagId> {
        if tag == self.lo {
            Some(self.hi)
        } else if tag == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Packs the pair into a single `u64` key (`lo` in the high bits).
    ///
    /// Hot maps key tracked pairs by this packed form; packing preserves the
    /// canonical ordering, so packed keys sort like pairs.
    #[inline]
    pub const fn packed(self) -> u64 {
        ((self.lo.0 as u64) << 32) | self.hi.0 as u64
    }

    /// Inverse of [`TagPair::packed`].
    #[inline]
    pub const fn from_packed(key: u64) -> Self {
        TagPair { lo: TagId((key >> 32) as u32), hi: TagId(key as u32) }
    }

    /// The *static* hash assignment of this pair over `shards` buckets —
    /// convenience for [`shard_of_packed`] on the packed key.
    ///
    /// This is plain hashing, **not** registry routing: the pair registry
    /// routes through its versioned [`crate::RoutingTable`] (keys hash
    /// onto a slot grid whose slots a rebalancer may re-target), so after
    /// any rebalance this method does not name the store that owns the
    /// pair's state. Consult the registry's routing handle for that.
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        shard_of_packed(self.packed(), shards)
    }
}

/// Maps a [packed](TagPair::packed) pair key to one of `shards` shards.
///
/// This is the single routing function shared by every layer that
/// partitions pair state (windowed pair counters, the sharded registry,
/// shard-parallel tick close): all of them **must** agree on the
/// assignment, so it lives here in the vocabulary crate.
///
/// The key is finalised with a SplitMix64-style mix before the modulo:
/// packed keys share low bits whenever pairs share their `hi` member, and
/// a plain `packed % shards` would route all pairs of one popular tag to
/// few shards. The mix is fixed — shard assignment is part of the
/// deterministic replay contract (same stream + same shard count ⇒ same
/// per-shard state), and rankings are required to be identical for *any*
/// shard count.
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn shard_of_packed(packed: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    if shards == 1 {
        return 0;
    }
    let mut z = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

impl fmt::Display for TagPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_canonical() {
        let p1 = TagPair::new(TagId(5), TagId(2));
        let p2 = TagPair::new(TagId(2), TagId(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo(), TagId(2));
        assert_eq!(p1.hi(), TagId(5));
    }

    #[test]
    #[should_panic(expected = "two distinct tags")]
    fn self_pair_panics() {
        let _ = TagPair::new(TagId(3), TagId(3));
    }

    #[test]
    fn try_new_rejects_self_pair() {
        assert!(TagPair::try_new(TagId(3), TagId(3)).is_none());
        assert!(TagPair::try_new(TagId(3), TagId(4)).is_some());
    }

    #[test]
    fn membership_queries() {
        let p = TagPair::new(TagId(1), TagId(9));
        assert!(p.contains(TagId(1)));
        assert!(p.contains(TagId(9)));
        assert!(!p.contains(TagId(5)));
        assert_eq!(p.other(TagId(1)), Some(TagId(9)));
        assert_eq!(p.other(TagId(9)), Some(TagId(1)));
        assert_eq!(p.other(TagId(5)), None);
    }

    #[test]
    fn packing_round_trips() {
        let p = TagPair::new(TagId(u32::MAX - 1), TagId(7));
        assert_eq!(TagPair::from_packed(p.packed()), p);
        let q = TagPair::new(TagId(0), TagId(1));
        assert_eq!(TagPair::from_packed(q.packed()), q);
    }

    #[test]
    fn packing_preserves_order() {
        let small = TagPair::new(TagId(1), TagId(2));
        let large = TagPair::new(TagId(1), TagId(3));
        let larger = TagPair::new(TagId(2), TagId(3));
        assert!(small.packed() < large.packed());
        assert!(large.packed() < larger.packed());
        assert!(small < large && large < larger);
    }

    #[test]
    fn display_shows_both_ids() {
        let p = TagPair::new(TagId(4), TagId(2));
        assert_eq!(p.to_string(), "(#2, #4)");
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let p = TagPair::new(TagId(17), TagId(90210));
        for shards in [1usize, 2, 4, 16, 31] {
            let s = p.shard(shards);
            assert!(s < shards);
            assert_eq!(s, shard_of_packed(p.packed(), shards), "method and free fn agree");
            assert_eq!(s, p.shard(shards), "assignment is deterministic");
        }
        assert_eq!(p.shard(1), 0);
    }

    #[test]
    fn shard_routing_spreads_shared_hi_members() {
        // All pairs (x, hi) share low packed bits; the mix must still
        // spread them across shards instead of collapsing onto one.
        let shards = 8;
        let mut seen = std::collections::HashSet::new();
        for lo in 0u32..64 {
            seen.insert(TagPair::new(TagId(lo), TagId(1_000_000)).shard(shards));
        }
        assert!(seen.len() >= shards / 2, "only {} of {shards} shards hit", seen.len());
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = shard_of_packed(7, 0);
    }
}
