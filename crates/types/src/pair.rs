//! Canonical unordered tag pairs — the candidate topics of EnBlogue.

use crate::tag::TagId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unordered pair of distinct tags, stored in canonical `(lo, hi)` order.
///
/// A candidate emergent topic is a pair of tags of which at least one is a
/// seed (§3(i) of the paper). Canonical ordering guarantees that
/// `(a, b)` and `(b, a)` address the same tracked state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TagPair {
    lo: TagId,
    hi: TagId,
}

impl TagPair {
    /// Creates the canonical pair of `a` and `b`.
    ///
    /// # Panics
    /// Panics if `a == b` — a tag's correlation with itself is always 1 and
    /// never an emergent topic; forming such a pair is a logic error.
    #[inline]
    pub fn new(a: TagId, b: TagId) -> Self {
        assert_ne!(a, b, "a TagPair requires two distinct tags");
        if a < b {
            TagPair { lo: a, hi: b }
        } else {
            TagPair { lo: b, hi: a }
        }
    }

    /// Creates the canonical pair if the tags are distinct.
    #[inline]
    pub fn try_new(a: TagId, b: TagId) -> Option<Self> {
        if a == b {
            None
        } else {
            Some(TagPair::new(a, b))
        }
    }

    /// The smaller tag id of the pair.
    #[inline]
    pub const fn lo(self) -> TagId {
        self.lo
    }

    /// The larger tag id of the pair.
    #[inline]
    pub const fn hi(self) -> TagId {
        self.hi
    }

    /// Whether `tag` is one of the two members.
    #[inline]
    pub fn contains(self, tag: TagId) -> bool {
        self.lo == tag || self.hi == tag
    }

    /// Given one member, returns the other; `None` if `tag` is not a member.
    #[inline]
    pub fn other(self, tag: TagId) -> Option<TagId> {
        if tag == self.lo {
            Some(self.hi)
        } else if tag == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Packs the pair into a single `u64` key (`lo` in the high bits).
    ///
    /// Hot maps key tracked pairs by this packed form; packing preserves the
    /// canonical ordering, so packed keys sort like pairs.
    #[inline]
    pub const fn packed(self) -> u64 {
        ((self.lo.0 as u64) << 32) | self.hi.0 as u64
    }

    /// Inverse of [`TagPair::packed`].
    #[inline]
    pub const fn from_packed(key: u64) -> Self {
        TagPair { lo: TagId((key >> 32) as u32), hi: TagId(key as u32) }
    }
}

impl fmt::Display for TagPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_canonical() {
        let p1 = TagPair::new(TagId(5), TagId(2));
        let p2 = TagPair::new(TagId(2), TagId(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo(), TagId(2));
        assert_eq!(p1.hi(), TagId(5));
    }

    #[test]
    #[should_panic(expected = "two distinct tags")]
    fn self_pair_panics() {
        let _ = TagPair::new(TagId(3), TagId(3));
    }

    #[test]
    fn try_new_rejects_self_pair() {
        assert!(TagPair::try_new(TagId(3), TagId(3)).is_none());
        assert!(TagPair::try_new(TagId(3), TagId(4)).is_some());
    }

    #[test]
    fn membership_queries() {
        let p = TagPair::new(TagId(1), TagId(9));
        assert!(p.contains(TagId(1)));
        assert!(p.contains(TagId(9)));
        assert!(!p.contains(TagId(5)));
        assert_eq!(p.other(TagId(1)), Some(TagId(9)));
        assert_eq!(p.other(TagId(9)), Some(TagId(1)));
        assert_eq!(p.other(TagId(5)), None);
    }

    #[test]
    fn packing_round_trips() {
        let p = TagPair::new(TagId(u32::MAX - 1), TagId(7));
        assert_eq!(TagPair::from_packed(p.packed()), p);
        let q = TagPair::new(TagId(0), TagId(1));
        assert_eq!(TagPair::from_packed(q.packed()), q);
    }

    #[test]
    fn packing_preserves_order() {
        let small = TagPair::new(TagId(1), TagId(2));
        let large = TagPair::new(TagId(1), TagId(3));
        let larger = TagPair::new(TagId(2), TagId(3));
        assert!(small.packed() < large.packed());
        assert!(large.packed() < larger.packed());
        assert!(small < large && large < larger);
    }

    #[test]
    fn display_shows_both_ids() {
        let p = TagPair::new(TagId(4), TagId(2));
        assert_eq!(p.to_string(), "(#2, #4)");
    }
}
