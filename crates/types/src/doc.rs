//! The stream tuple: documents flowing through the engine.

use crate::tag::{DocId, TagId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of the feed/account/host a document arrived from.
///
/// Sources are the unit of *trust* in the ingestion guards: the dedup
/// window keys on `(source, doc)` and the flood caps meter tokens per
/// source, so one hijacked feed cannot drown the shift-scoring signal of
/// everyone else. `SourceId::ANONYMOUS` (`0`) is the default for
/// workloads that never attribute documents — guards still work, they
/// just see one aggregate source.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The default source for unattributed documents.
    pub const ANONYMOUS: SourceId = SourceId(0);

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src:{}", self.0)
    }
}

/// A document in a Web 2.0 stream.
///
/// This is the paper's tuple `(timestamp, docId, set of tags, set of
/// entities)` (§4.1), extended with:
///
/// * `terms` — interned content terms for the relative-entropy correlation
///   variant of §3(ii),
/// * `text` — the raw body, consumed (and usually cleared) by the entity
///   tagging operator which derives `entities` from it.
///
/// `tags` and `entities` are kept **sorted and deduplicated** — documents
/// are set-annotated, and sorted slices let the pair generator emit each
/// co-occurring pair exactly once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Unique document identifier within the stream.
    pub id: DocId,
    /// Publication time in *event* time. The tick a document belongs to
    /// is derived from this, never from its arrival position — the two
    /// may disagree on late streams (see `docs/EVENT_TIME.md`).
    pub timestamp: Timestamp,
    /// Feed/account the document arrived from (guards key on it);
    /// [`SourceId::ANONYMOUS`] for unattributed workloads.
    pub source: SourceId,
    /// Set of annotation tags (categories, descriptors, hashtags), sorted.
    pub tags: Vec<TagId>,
    /// Set of named entities (filled by the entity tagger), sorted.
    pub entities: Vec<TagId>,
    /// Interned content terms (bag with duplicates allowed, in text order).
    pub terms: Vec<TagId>,
    /// Raw text, if available; input to the entity tagger.
    pub text: Option<String>,
}

impl Document {
    /// Starts building a document.
    pub fn builder(id: DocId, timestamp: Timestamp) -> DocumentBuilder {
        DocumentBuilder {
            doc: Document {
                id,
                timestamp,
                source: SourceId::ANONYMOUS,
                tags: Vec::new(),
                entities: Vec::new(),
                terms: Vec::new(),
                text: None,
            },
        }
    }

    /// Whether `tag` annotates this document (tags only, not entities).
    #[inline]
    pub fn has_tag(&self, tag: TagId) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// Whether `entity` was recognised in this document.
    #[inline]
    pub fn has_entity(&self, entity: TagId) -> bool {
        self.entities.binary_search(&entity).is_ok()
    }

    /// Iterates over tags and entities as one combined annotation set.
    ///
    /// The combined view is what the correlation tracker consumes when
    /// configured to detect "tag/entity mixtures as emergent topics" (§3).
    /// Both inputs are sorted; the merge preserves sortedness and skips
    /// duplicates across the two sets.
    pub fn annotations(&self) -> impl Iterator<Item = TagId> + '_ {
        MergeSorted { a: &self.tags, b: &self.entities, i: 0, j: 0 }
    }

    /// Number of distinct annotations (tags ∪ entities).
    pub fn annotation_count(&self) -> usize {
        self.annotations().count()
    }

    /// Drops the raw text (done after entity tagging to bound memory).
    pub fn clear_text(&mut self) {
        self.text = None;
    }

    /// Sorts and deduplicates `tags` and `entities` in place.
    ///
    /// Builders do this automatically; call it after manual mutation.
    pub fn normalize(&mut self) {
        self.tags.sort_unstable();
        self.tags.dedup();
        self.entities.sort_unstable();
        self.entities.dedup();
    }
}

struct MergeSorted<'a> {
    a: &'a [TagId],
    b: &'a [TagId],
    i: usize,
    j: usize,
}

impl Iterator for MergeSorted<'_> {
    type Item = TagId;

    fn next(&mut self) -> Option<TagId> {
        match (self.a.get(self.i), self.b.get(self.j)) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    self.i += 1;
                    Some(x)
                } else if y < x {
                    self.j += 1;
                    Some(y)
                } else {
                    self.i += 1;
                    self.j += 1;
                    Some(x)
                }
            }
            (Some(&x), None) => {
                self.i += 1;
                Some(x)
            }
            (None, Some(&y)) => {
                self.j += 1;
                Some(y)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining_a = self.a.len() - self.i;
        let remaining_b = self.b.len() - self.j;
        (remaining_a.max(remaining_b), Some(remaining_a + remaining_b))
    }
}

/// Builder for [`Document`]; normalises tag/entity sets on [`build`](DocumentBuilder::build).
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
}

impl DocumentBuilder {
    /// Adds one annotation tag.
    #[must_use]
    pub fn tag(mut self, tag: TagId) -> Self {
        self.doc.tags.push(tag);
        self
    }

    /// Adds several annotation tags.
    #[must_use]
    pub fn tags(mut self, tags: impl IntoIterator<Item = TagId>) -> Self {
        self.doc.tags.extend(tags);
        self
    }

    /// Adds one named entity.
    #[must_use]
    pub fn entity(mut self, entity: TagId) -> Self {
        self.doc.entities.push(entity);
        self
    }

    /// Adds several named entities.
    #[must_use]
    pub fn entities(mut self, entities: impl IntoIterator<Item = TagId>) -> Self {
        self.doc.entities.extend(entities);
        self
    }

    /// Adds content terms (order and duplicates preserved).
    #[must_use]
    pub fn terms(mut self, terms: impl IntoIterator<Item = TagId>) -> Self {
        self.doc.terms.extend(terms);
        self
    }

    /// Sets the raw text body.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.doc.text = Some(text.into());
        self
    }

    /// Attributes the document to a source (defaults to
    /// [`SourceId::ANONYMOUS`]).
    #[must_use]
    pub fn source(mut self, source: SourceId) -> Self {
        self.doc.source = source;
        self
    }

    /// Finishes the document, normalising its annotation sets.
    pub fn build(mut self) -> Document {
        self.doc.normalize();
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TagId {
        TagId(i)
    }

    #[test]
    fn builder_sorts_and_dedups() {
        let doc = Document::builder(1, Timestamp::from_secs(5))
            .tag(t(3))
            .tag(t(1))
            .tag(t(3))
            .entity(t(9))
            .entity(t(7))
            .entity(t(9))
            .build();
        assert_eq!(doc.tags, vec![t(1), t(3)]);
        assert_eq!(doc.entities, vec![t(7), t(9)]);
    }

    #[test]
    fn membership_uses_binary_search() {
        let doc = Document::builder(1, Timestamp::ZERO).tags([t(2), t(4), t(6)]).build();
        assert!(doc.has_tag(t(4)));
        assert!(!doc.has_tag(t(5)));
        assert!(!doc.has_entity(t(4)));
    }

    #[test]
    fn annotations_merge_without_duplicates() {
        let doc = Document::builder(1, Timestamp::ZERO)
            .tags([t(1), t(3), t(5)])
            .entities([t(3), t(4)])
            .build();
        let merged: Vec<TagId> = doc.annotations().collect();
        assert_eq!(merged, vec![t(1), t(3), t(4), t(5)]);
        assert_eq!(doc.annotation_count(), 4);
    }

    #[test]
    fn annotations_handle_empty_sides() {
        let tags_only = Document::builder(1, Timestamp::ZERO).tags([t(1), t(2)]).build();
        assert_eq!(tags_only.annotations().collect::<Vec<_>>(), vec![t(1), t(2)]);

        let entities_only = Document::builder(2, Timestamp::ZERO).entities([t(8)]).build();
        assert_eq!(entities_only.annotations().collect::<Vec<_>>(), vec![t(8)]);

        let empty = Document::builder(3, Timestamp::ZERO).build();
        assert_eq!(empty.annotation_count(), 0);
    }

    #[test]
    fn text_lifecycle() {
        let mut doc = Document::builder(1, Timestamp::ZERO).text("Eyjafjallajokull erupts").build();
        assert!(doc.text.is_some());
        doc.clear_text();
        assert!(doc.text.is_none());
    }

    #[test]
    fn terms_keep_duplicates_and_order() {
        let doc = Document::builder(1, Timestamp::ZERO).terms([t(5), t(2), t(5)]).build();
        assert_eq!(doc.terms, vec![t(5), t(2), t(5)]);
    }

    #[test]
    fn source_defaults_to_anonymous() {
        let doc = Document::builder(1, Timestamp::ZERO).build();
        assert_eq!(doc.source, SourceId::ANONYMOUS);
        let attributed = Document::builder(2, Timestamp::ZERO).source(SourceId(7)).build();
        assert_eq!(attributed.source, SourceId(7));
        assert_eq!(format!("{}", attributed.source), "src:7");
    }

    #[test]
    fn normalize_after_manual_mutation() {
        let mut doc = Document::builder(1, Timestamp::ZERO).build();
        doc.tags.extend([t(9), t(1), t(9)]);
        doc.normalize();
        assert_eq!(doc.tags, vec![t(1), t(9)]);
    }
}
