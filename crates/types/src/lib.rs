//! Core data model for the EnBlogue emergent-topic detection system.
//!
//! EnBlogue (Alvanaki et al., SIGMOD 2011) monitors Web 2.0 document streams
//! and detects *emergent topics*: sudden shifts in the correlation of tag
//! pairs. Every crate in this workspace builds on the vocabulary defined
//! here:
//!
//! * [`Timestamp`] / [`TickSpec`] — stream time and its discretisation into
//!   fixed-width ticks,
//! * [`TagId`] / [`TagInterner`] — interned tags (categories, descriptors,
//!   hashtags, named entities, content terms),
//! * [`TagPair`] — the canonical unordered pair of tags that forms a
//!   candidate topic,
//! * [`Document`] — the stream tuple `(timestamp, docId, tags, entities)`
//!   from §4.1 of the paper, extended with optional raw text (input to the
//!   entity tagger) and interned content terms (input to the
//!   relative-entropy correlation measures),
//! * [`routing`] — the versioned slot → shard [`RoutingTable`] behind
//!   dynamic shard rebalancing (the static assignment function is
//!   [`shard_of_packed`]),
//! * [`fxhash`] — a fast, DoS-unsafe hasher for id-keyed hot-path maps.
//!
//! # Example
//!
//! ```
//! use enblogue_types::{Document, TagInterner, TagKind, TagPair, Timestamp};
//!
//! let interner = TagInterner::new();
//! let iceland = interner.intern("iceland", TagKind::Category);
//! let volcano = interner.intern("volcano", TagKind::Descriptor);
//!
//! let doc = Document::builder(7, Timestamp::from_hours(12))
//!     .tag(iceland)
//!     .tag(volcano)
//!     .build();
//! assert!(doc.has_tag(iceland));
//!
//! let pair = TagPair::new(volcano, iceland);
//! assert_eq!(pair, TagPair::new(iceland, volcano), "pairs are unordered");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doc;
pub mod error;
pub mod fxhash;
pub mod pair;
pub mod ranking;
pub mod routing;
pub mod tag;
pub mod time;

pub use doc::{Document, DocumentBuilder, SourceId};
pub use error::EnBlogueError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pair::{shard_of_packed, TagPair};
pub use ranking::RankingSnapshot;
pub use routing::{RoutingTable, SharedRouting, DEFAULT_SLOTS_PER_SHARD};
pub use tag::{DocId, TagId, TagInterner, TagKind};
pub use time::{Tick, TickSpec, Timestamp};
