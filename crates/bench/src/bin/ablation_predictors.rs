//! Experiment P4 — predictor ablation: which forecaster detects shifts
//! best.
//!
//! §3(iii) defines the emergence signal as the error of predicting the
//! current correlation from previous values; this sweep compares the five
//! implemented predictors on the standard event benchmark.
//!
//! Run: `cargo run --release -p enblogue-bench --bin ablation_predictors`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{f2, small_archive, timed, Table};

fn main() {
    println!("P4 — predictor ablation on the event benchmark (3 archives × 5 events)\n");
    let archives: Vec<_> = [11u64, 22, 33].iter().map(|&s| small_archive(s)).collect();

    let table = Table::new(&[18, 10, 14, 14, 10]);
    table.header(&["predictor", "recall", "precision@10", "latency (d)", "wall (s)"]);
    for kind in PredictorKind::ablation_set() {
        let ((recall, precision, latency), secs) = timed(|| {
            let mut recalls = 0.0;
            let mut precisions = 0.0;
            let mut latencies = 0.0;
            for archive in &archives {
                let config = EnBlogueConfig::builder()
                    .tick_spec(TickSpec::daily())
                    .window_ticks(7)
                    .seed_count(30)
                    .min_seed_count(3)
                    .top_k(10)
                    .predictor(kind)
                    .build()
                    .unwrap();
                let mut engine = EnBlogueEngine::new(config);
                let snaps = engine.run_replay(&archive.docs);
                let report = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);
                recalls += report.recall;
                precisions += report.precision_at_k;
                latencies += report.mean_latency_ms / Timestamp::DAY as f64;
            }
            let n = archives.len() as f64;
            (recalls / n, precisions / n, latencies / n)
        });
        let name = match kind {
            PredictorKind::Last => "last-value",
            PredictorKind::MovingAverage(_) => "moving-avg(6)",
            PredictorKind::Ewma(_) => "ewma(0.3)",
            PredictorKind::Holt(_, _) => "holt(0.4,0.2)",
            PredictorKind::LinearRegression(_) => "ols(6)",
            PredictorKind::SeasonalNaive(_) => "seasonal(7)",
        };
        table.row(&[name, &f2(recall), &f2(precision), &f2(latency), &format!("{secs:.2}")]);
    }
    println!("\nLevel smoothers (MA/EWMA) dominate: noise-blind yet ramp-sensitive. Trend");
    println!("followers (holt/ols) absorb gradual ramps and under-score slow events; the");
    println!("seasonal predictor additionally nulls weekly periodicity — the trade-off");
    println!("space behind §3(iii)'s pluggable shift-prediction operators.");
}
