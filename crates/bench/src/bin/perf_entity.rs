//! Experiment P3 — entity-tagging throughput and accuracy vs dictionary
//! size.
//!
//! Builds synthetic gazetteers of growing size, tags a corpus with planted
//! mentions, and reports tokens/s plus recall of the planted entities and
//! the redirect-resolution rate.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_entity`

use enblogue::datagen::entities::EntityUniverse;
use enblogue::prelude::*;
use enblogue_bench::{f2, timed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Builds `n_docs` texts of `words_per_doc` filler words with one planted
/// mention each (canonical name or alias, 50/50).
fn corpus(
    universe: &EntityUniverse,
    n_docs: usize,
    words_per_doc: usize,
    seed: u64,
) -> Vec<(String, enblogue::entity::gazetteer::EntityId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let filler =
        ["the", "quick", "report", "says", "that", "today", "nothing", "new", "was", "found"];
    (0..n_docs)
        .map(|_| {
            let entity = universe.sample(&mut rng);
            let mention = if !entity.aliases.is_empty() && rng.gen_bool(0.5) {
                entity.aliases[0].clone()
            } else {
                entity.name.clone()
            };
            let mut words: Vec<&str> =
                (0..words_per_doc).map(|_| filler[rng.gen_range(0..filler.len())]).collect();
            let pos = rng.gen_range(0..=words.len());
            words.insert(pos.min(words.len()), &mention);
            (words.join(" "), entity.id)
        })
        .collect()
}

fn main() {
    println!("P3 — entity tagging vs dictionary size (200-word docs, 1 planted mention each)\n");
    let table = Table::new(&[10, 12, 12, 12, 12, 12]);
    table.header(&["entities", "phrases", "docs/s", "tokens/s", "recall", "mem note"]);
    for n_entities in [1_000usize, 5_000, 20_000, 50_000, 100_000] {
        let universe = EntityUniverse::generate(n_entities, 0xD1C7);
        let tagger = EntityTagger::new(Arc::clone(&universe.gazetteer));
        let docs = corpus(&universe, 2_000, 200, 7);
        let (hits, secs) = timed(|| {
            let mut hits = 0usize;
            for (text, planted) in &docs {
                if tagger.tag_text(text).iter().any(|m| m.entity == *planted) {
                    hits += 1;
                }
            }
            hits
        });
        let tokens = docs.len() as u64 * 201;
        table.row(&[
            &format!("{n_entities}"),
            &format!("{}", universe.gazetteer.phrase_count()),
            &format!("{:.0}", docs.len() as f64 / secs),
            &format!("{:.0}k", tokens as f64 / secs / 1e3),
            &f2(hits as f64 / docs.len() as f64),
            "O(phrases)",
        ]);
    }
    println!("\nLookup cost is hash-based and size-independent; throughput stays flat while");
    println!("the dictionary grows 100x. Recall < 1.0 only when filler n-grams shadow a");
    println!("planted alias (greedy longest match), which mirrors real dictionary taggers.");
}
