//! Experiment P5 — sketch-based vs exact seed selection.
//!
//! §3(i) needs only the top-S popular tags; when the tag universe is huge
//! a Space-Saving summary can replace exact windowed counters. This sweep
//! measures seed-set agreement, end-to-end detection quality and memory.
//!
//! Run: `cargo run --release -p enblogue-bench --bin ablation_sketch`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{f2, small_archive, Table};

fn main() {
    let archive = small_archive(0x5E7C);
    println!("P5 — sketch vs exact seed selection ({} docs)\n", archive.len());

    // Reference: exact popularity seeds.
    let exact_config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(10)
        .build()
        .unwrap();
    let mut exact_engine = EnBlogueEngine::new(exact_config);
    let exact_snaps = exact_engine.run_replay(&archive.docs);
    let exact_report = evaluate(&exact_snaps, &archive.script, 10, 2 * Timestamp::DAY);
    let exact_seeds = exact_engine.pipeline().current_seeds();

    let table = Table::new(&[18, 14, 10, 14, 14]);
    table.header(&["selector", "seed overlap", "recall", "precision@10", "memory"]);
    table.row(&[
        "exact counters",
        "1.00",
        &f2(exact_report.recall),
        &f2(exact_report.precision_at_k),
        "O(tags in window)",
    ]);
    for capacity in [30usize, 60, 120, 240] {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .seed_strategy(SeedStrategy::SketchPopularity { capacity })
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(config);
        let snaps = engine.run_replay(&archive.docs);
        let report = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);
        let seeds = engine.pipeline().current_seeds();
        let overlap = seeds.iter().filter(|s| exact_seeds.contains(s)).count() as f64
            / exact_seeds.len().max(1) as f64;
        table.row(&[
            &format!("space-saving({capacity})"),
            &f2(overlap),
            &f2(report.recall),
            &f2(report.precision_at_k),
            &format!("{} counters", capacity),
        ]);
    }
    println!("\nNote: the sketch is *not* windowed — it summarises the whole prefix of the");
    println!("stream, so long-term popular tags crowd out recently-popular ones. With");
    println!("capacity ≥ 4×S the seed sets converge and detection quality matches exact");
    println!("selection at a fixed, tiny memory budget (the trade-off P5 quantifies).");
}
