//! Experiment P1 — engine throughput vs seed count / tracked pairs.
//!
//! Sweeps the number of seed tags S: more seeds ⇒ more candidate pairs ⇒
//! more per-tick correlation work. Reports docs/s and the pair-tracking
//! state, on the standard tweet workload (per-minute ticks).
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_throughput`

use enblogue::prelude::*;
use enblogue_bench::{rate, standard_tweets, timed, Table};

fn main() {
    let stream = standard_tweets();
    println!("P1 — engine throughput vs seed count ({} tweets, minutely ticks)\n", stream.len());

    let table = Table::new(&[8, 12, 14, 14, 12, 12]);
    table.header(&["seeds", "docs/s", "pairs found", "pairs live", "ticks/s", "wall (s)"]);
    for seeds in [8usize, 16, 32, 64, 128, 256] {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::minutely())
            .window_ticks(60)
            .seed_count(seeds)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .unwrap();
        let (metrics, secs) = timed(|| {
            let mut engine = EnBlogueEngine::new(config);
            engine.run_replay(&stream.docs);
            engine.metrics()
        });
        table.row(&[
            &format!("{seeds}"),
            &rate(metrics.docs_processed, secs),
            &format!("{}", metrics.pairs_discovered),
            &format!("{}", metrics.pairs_tracked),
            &format!("{:.0}", metrics.ticks_closed as f64 / secs),
            &format!("{secs:.2}"),
        ]);
    }
    println!("\nThroughput degrades sub-linearly in S: per-document work is seed-independent;");
    println!("only the per-tick pair-update loop grows with the candidate set.");
}
