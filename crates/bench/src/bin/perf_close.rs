//! Close-path throughput of the slab-resident pair storage against the
//! historical map-of-structs layout.
//!
//! The per-tick shift-scoring loop over all tracked pairs is EnBlogue's
//! steady-state hot path. This bench replays the identical close cycle
//! (window advance → seeded discovery → scoring → eviction) over a stable
//! live-pair population through two storage layouts:
//!
//! * `slab` — the production [`ShardedPairRegistry`]: SoA slab columns,
//!   one strided history arena read in place by the scorer, lane-based
//!   windowed counts, incrementally maintained sorted iteration;
//! * `legacy` — a faithful in-bin model of the pre-slab layout:
//!   `FxHashMap<u64, PairState>` with one heap `RingBuffer` per pair
//!   (copied into a scratch `Vec` before scoring, as the old close loop
//!   did), keys re-collected and re-sorted every tick, and a
//!   `VecDeque<FxHashMap>` windowed counter that allocates a map per tick.
//!
//! The slab rows additionally sweep the `scoring` axis: the scalar
//! per-pair walk (`ScoringMode::Scalar`, the reference) against the
//! lane-tiled batch kernels (`ScoringMode::Batched`, the production
//! default). All layouts, shard counts and scoring modes run the same
//! float operations in the same order, so their rankings are verified
//! **bit-identical** before any number is reported; the rows differ only
//! in where state lives and how the loops are tiled. The sweep covers
//! live-pair count (1k / 33k / 133k) × shard count, multi-store rows
//! request a parallel close (the registry demotes small populations below
//! `SERIAL_CLOSE_MAX_PAIRS` to a serial walk), and `BENCH_close.json`
//! records pairs/sec closed per row plus two ratio families: layout
//! (best slab over legacy) and scoring (best batched over best scalar).
//!
//! A `slab+tel` row rides along at each size: the batched 1-store slab
//! with a live telemetry hub attached (per-shard close histograms +
//! event journal), so the sweep also prices the observability layer on
//! the hot path. Its ratio against the matching bare slab row lands in
//! `BENCH_close.json` as `telemetry_overhead_by_pairs`.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_close`
//! Smoke mode (CI): append `-- --test` for a small sweep; smoke
//! additionally gates, at the largest smoke size and with paired
//! per-tick A/B timing (`run_paired`), batched ≥ scalar close time and
//! telemetry-on close time within 3% of telemetry-off. The sweep rows
//! themselves are one-run-at-a-time and reported unguarded — on a
//! shared box their run-to-run ratio noise is far wider than 3%.

use enblogue::core::pairs::{ScoringMode, ShardedPairRegistry};
use enblogue::prelude::*;
use enblogue::stats::predict::PredictorKind;
use enblogue::stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue::types::{FxHashMap, FxHashSet};
use enblogue::window::{DecayValue, RingBuffer};
use enblogue_bench::Table;
use std::collections::VecDeque;
use std::time::Instant;

const WINDOW: usize = 6;
const MIN_SUPPORT: u64 = 1;

fn scorer() -> ShiftScorer {
    ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute)
}

/// The deterministic correlation both layouts compute.
fn correlate(pair: TagPair, ab: u64) -> f64 {
    ab as f64 / (4.0 + (pair.lo().0 % 7) as f64)
}

/// The `i`-th live pair of the workload.
fn pair_of(i: u32) -> TagPair {
    TagPair::new(TagId(i), TagId(i + 1_000_000))
}

/// Whether pair `i` is observed in `tick` — a rotating schedule touching
/// each pair every `WINDOW - 1` ticks, so support never lapses, the
/// population stays exactly `live`, and the windowed counter carries a
/// realistic working set.
fn observed(i: u32, tick: u64) -> bool {
    (i as u64 + tick).is_multiple_of(WINDOW as u64 - 1)
}

// ---------------------------------------------------------------------------
// The legacy layout, reproduced faithfully for the before/after ratio.
// ---------------------------------------------------------------------------

struct LegacyState {
    history: RingBuffer<f64>,
    score: DecayValue,
    last_support: Tick,
}

/// The pre-slab `WindowedCounter`: one `FxHashMap` per tick in a deque,
/// plus running totals — a tick advance allocates and drops maps, a count
/// read probes the totals map.
struct LegacyCounter {
    ticks: VecDeque<FxHashMap<u64, u64>>,
    totals: FxHashMap<u64, u64>,
    newest: Option<Tick>,
}

impl LegacyCounter {
    fn new() -> Self {
        LegacyCounter { ticks: VecDeque::new(), totals: FxHashMap::default(), newest: None }
    }

    fn advance_to(&mut self, tick: Tick) {
        let Some(newest) = self.newest else {
            self.ticks.push_back(FxHashMap::default());
            self.newest = Some(tick);
            return;
        };
        if tick <= newest {
            return;
        }
        for _ in 0..tick.since(newest) {
            if self.ticks.len() == WINDOW {
                for (key, count) in self.ticks.pop_front().expect("full window") {
                    let total = self.totals.get_mut(&key).expect("totals in sync");
                    *total -= count;
                    if *total == 0 {
                        self.totals.remove(&key);
                    }
                }
            }
            self.ticks.push_back(FxHashMap::default());
        }
        self.newest = Some(tick);
    }

    fn increment(&mut self, tick: Tick, key: u64) {
        self.advance_to(tick);
        *self.ticks.back_mut().expect("open tick").entry(key).or_insert(0) += 1;
        *self.totals.entry(key).or_insert(0) += 1;
    }

    fn count(&self, key: u64) -> u64 {
        self.totals.get(&key).copied().unwrap_or(0)
    }
}

/// The pre-slab registry: map-of-structs state, per-close key re-sort,
/// per-pair history copy (single store — the legacy row is the 1-shard
/// baseline the acceptance ratio is defined against).
struct LegacyRegistry {
    states: FxHashMap<u64, LegacyState>,
    counter: LegacyCounter,
    current: FxHashSet<u64>,
    cap: usize,
}

impl LegacyRegistry {
    fn new(cap: usize) -> Self {
        LegacyRegistry {
            states: FxHashMap::default(),
            counter: LegacyCounter::new(),
            current: FxHashSet::default(),
            cap,
        }
    }

    fn observe(&mut self, tick: Tick, packed: u64) {
        self.counter.increment(tick, packed);
        self.current.insert(packed);
    }

    fn close(&mut self, tick: Tick, now: Timestamp, seeds: &FxHashSet<TagId>, s: &ShiftScorer) {
        self.counter.advance_to(tick);
        // Discovery: drain-into-a-fresh-Vec, as the old close loop did.
        let candidates: Vec<u64> = self.current.drain().collect();
        for packed in candidates {
            let pair = TagPair::from_packed(packed);
            if seeds.contains(&pair.lo()) || seeds.contains(&pair.hi()) {
                self.states.entry(packed).or_insert_with(|| LegacyState {
                    history: RingBuffer::new(WINDOW),
                    score: DecayValue::new(Timestamp::DAY),
                    last_support: tick,
                });
            }
        }
        // Scoring: re-collect and re-sort all keys, copy each history.
        let mut keys: Vec<u64> = self.states.keys().copied().collect();
        keys.sort_unstable();
        for packed in keys {
            let ab = self.counter.count(packed);
            let correlation = correlate(TagPair::from_packed(packed), ab);
            let state = self.states.get_mut(&packed).expect("sorted key is tracked");
            let history: Vec<f64> = state.history.iter().copied().collect();
            let shift = if ab >= MIN_SUPPORT {
                s.score(&history, correlation).map(|(v, _)| v).unwrap_or(0.0)
            } else {
                0.0
            };
            state.score.observe_max(now, shift);
            state.history.push(correlation);
            if ab >= MIN_SUPPORT {
                state.last_support = tick;
            }
        }
        // Eviction: support loss, then the cap (select_nth, as pre-slab).
        self.states.retain(|_, state| tick.since(state.last_support) < WINDOW as u64);
        if self.states.len() > self.cap {
            let excess = self.states.len() - self.cap;
            let mut scored: Vec<(f64, u64)> =
                self.states.iter().map(|(&k, s)| (s.score.value_at(now), k)).collect();
            scored.select_nth_unstable_by(excess - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("finite scores").then(a.1.cmp(&b.1))
            });
            for &(_, packed) in scored.iter().take(excess) {
                self.states.remove(&packed);
            }
        }
    }

    fn ranking(&self, k: usize, now: Timestamp) -> Vec<(TagPair, f64)> {
        let mut ranked: Vec<(TagPair, f64)> = self
            .states
            .iter()
            .map(|(&packed, s)| (TagPair::from_packed(packed), s.score.value_at(now)))
            .filter(|&(_, score)| score > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("finite").then(a.0.packed().cmp(&b.0.packed()))
        });
        ranked.truncate(k);
        ranked
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Row {
    layout: &'static str,
    pairs: usize,
    shards: usize,
    scoring: ScoringMode,
    close_secs: f64,
    pairs_per_sec: f64,
    ranking: Vec<(TagPair, f64)>,
}

/// Drives one layout over `warmup + measured` ticks and times the close
/// cycle of the measured span. Ingest (the observation loop) stays
/// outside the timer — the close path is what this PR optimises.
/// Multi-store slab rows request a parallel close; the registry's
/// `SERIAL_CLOSE_MAX_PAIRS` threshold decides whether the fan-out
/// actually happens, exactly as in production.
fn run(
    layout: &'static str,
    live: usize,
    shards: usize,
    scoring: ScoringMode,
    warmup: u64,
    measured: u64,
) -> Row {
    let s = scorer();
    let seeds: FxHashSet<TagId> = (0..live as u32).map(TagId).collect();
    let top_k = 20;
    let parallel = shards > 1;
    let mut slab = layout.starts_with("slab").then(|| {
        let mut registry =
            ShardedPairRegistry::new(shards, WINDOW, Timestamp::DAY, MIN_SUPPORT, live + 1);
        registry.set_scoring(scoring);
        if layout == "slab+tel" {
            // A live hub: every measured close records per-shard latency
            // histograms (the journal only sees evictions/rebalances,
            // which this stable population never triggers).
            registry.attach_telemetry(&enblogue::telemetry::Telemetry::new(1024));
        }
        registry
    });
    let mut legacy = (layout == "legacy").then(|| LegacyRegistry::new(live + 1));

    let mut close_secs = 0.0;
    for tick in 0..warmup + measured {
        let now = Timestamp::from_hours(tick);
        for i in 0..live as u32 {
            if observed(i, tick) {
                let packed = pair_of(i).packed();
                match (&mut slab, &mut legacy) {
                    (Some(r), _) => r.observe_pair(Tick(tick), packed),
                    (_, Some(r)) => r.observe(Tick(tick), packed),
                    _ => unreachable!(),
                }
            }
        }
        let t0 = Instant::now();
        match (&mut slab, &mut legacy) {
            (Some(r), _) => {
                r.advance_to(Tick(tick));
                r.discover_seeded(&seeds, Tick(tick), 0, parallel);
                r.score_all(Tick(tick), now, &s, parallel, correlate);
                r.evict_parallel(Tick(tick), now, parallel);
            }
            (_, Some(r)) => r.close(Tick(tick), now, &seeds, &s),
            _ => unreachable!(),
        }
        if tick >= warmup {
            close_secs += t0.elapsed().as_secs_f64();
        }
    }

    let last = warmup + measured - 1;
    let now = Timestamp::from_hours(last);
    let (tracked, ranking) = match (&slab, &legacy) {
        (Some(r), _) => (r.len(), r.ranking(top_k, now)),
        (_, Some(r)) => (r.states.len(), r.ranking(top_k, now)),
        _ => unreachable!(),
    };
    assert_eq!(tracked, live, "{layout}@{live}: the population must be stable");
    Row {
        layout,
        pairs: live,
        shards,
        scoring,
        close_secs,
        pairs_per_sec: (live as u64 * measured) as f64 / close_secs.max(1e-9),
        ranking,
    }
}

/// Paired A/B close timing for the smoke gates: two slab registries fed
/// identical observations, closed back-to-back every tick with the order
/// alternating, so a noisy neighbour on a shared box lands on both sides
/// alike (the sweep rows above time whole runs one at a time, which is
/// fine for reporting but too noisy to gate a 3% bound on). Returns the
/// summed close seconds of each side over the measured span.
fn run_paired(
    a: &mut ShardedPairRegistry,
    b: &mut ShardedPairRegistry,
    live: usize,
    warmup: u64,
    measured: u64,
) -> (f64, f64) {
    let s = scorer();
    let seeds: FxHashSet<TagId> = (0..live as u32).map(TagId).collect();
    let mut a_secs = 0.0;
    let mut b_secs = 0.0;
    for tick in 0..warmup + measured {
        let now = Timestamp::from_hours(tick);
        for i in 0..live as u32 {
            if observed(i, tick) {
                let packed = pair_of(i).packed();
                a.observe_pair(Tick(tick), packed);
                b.observe_pair(Tick(tick), packed);
            }
        }
        let close = |r: &mut ShardedPairRegistry| {
            let t0 = Instant::now();
            r.advance_to(Tick(tick));
            r.discover_seeded(&seeds, Tick(tick), 0, false);
            r.score_all(Tick(tick), now, &s, false, correlate);
            r.evict_parallel(Tick(tick), now, false);
            t0.elapsed().as_secs_f64()
        };
        let (da, db) = if tick % 2 == 0 {
            let da = close(a);
            (da, close(b))
        } else {
            let db = close(b);
            (close(a), db)
        };
        if tick >= warmup {
            a_secs += da;
            b_secs += db;
        }
    }
    (a_secs, b_secs)
}

/// A fresh 1-store slab registry for a paired gate run.
fn gate_registry(live: usize, scoring: ScoringMode) -> ShardedPairRegistry {
    let mut registry = ShardedPairRegistry::new(1, WINDOW, Timestamp::DAY, MIN_SUPPORT, live + 1);
    registry.set_scoring(scoring);
    registry
}

fn write_json(
    rows: &[Row],
    speedups: &[(usize, f64)],
    batched: &[(usize, f64)],
    telemetry: &[(usize, f64)],
    path: &str,
) {
    let ratio_map = |pairs: &mut String, values: &[(usize, f64)]| {
        for (i, &(size, ratio)) in values.iter().enumerate() {
            pairs.push_str(&format!(
                "\"{size}\": {ratio:.3}{}",
                if i + 1 == values.len() { "" } else { ", " }
            ));
        }
    };
    let mut out = String::from("{\n  \"experiment\": \"close_path\",\n");
    out.push_str(&format!("  \"window_ticks\": {WINDOW},\n"));
    out.push_str(&format!(
        "  \"machine_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"layout\": \"{}\", \"pairs\": {}, \"shards\": {}, \"scoring\": \"{}\", \
             \"close_secs\": {:.4}, \"pairs_per_sec\": {:.0}}}{}\n",
            row.layout,
            row.pairs,
            row.shards,
            row.scoring.name(),
            row.close_secs,
            row.pairs_per_sec,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"layout_speedup_by_pairs\": {");
    ratio_map(&mut out, speedups);
    out.push_str("},\n");
    out.push_str("  \"batched_speedup_by_pairs\": {");
    ratio_map(&mut out, batched);
    out.push_str("},\n");
    out.push_str("  \"telemetry_on_off_ratio_by_pairs\": {");
    ratio_map(&mut out, telemetry);
    out.push_str("},\n");
    let headline = speedups.last().map_or(0.0, |&(_, r)| r);
    out.push_str(&format!("  \"speedup_largest_point\": {headline:.3},\n"));
    let batched_headline = batched.last().map_or(0.0, |&(_, r)| r);
    out.push_str(&format!("  \"batched_speedup_largest_point\": {batched_headline:.3},\n"));
    out.push_str("  \"rankings_identical\": true\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let sizes: &[usize] = if smoke { &[1_000, 20_000] } else { &[1_000, 33_000, 133_000] };
    let shard_sweep: &[usize] = &[1, 4];
    let (warmup, measured) = if smoke { (WINDOW as u64, 10) } else { (WINDOW as u64 + 2, 12) };
    let repeats = 3;
    println!(
        "close-path layout × scoring sweep — {} ticks measured per row{}\n",
        measured,
        if smoke { " [smoke]" } else { "" }
    );

    let table = Table::new(&[8, 9, 7, 9, 10, 12]);
    table.header(&["layout", "pairs", "shards", "scoring", "close(s)", "pairs/s"]);
    let mut rows: Vec<Row> = Vec::new();
    for &live in sizes {
        // Interleave repeats so machine noise spreads across layouts; keep
        // each configuration's best round.
        let mut best: Vec<Option<Row>> = Vec::new();
        let mut configs: Vec<(&'static str, usize, ScoringMode)> =
            vec![("legacy", 1, ScoringMode::Scalar)];
        for &shards in shard_sweep {
            configs.push(("slab", shards, ScoringMode::Scalar));
            configs.push(("slab", shards, ScoringMode::Batched));
        }
        // The observability price tag: the production path (batched,
        // 1 store) with a telemetry hub attached, interleaved with its
        // bare twin so noise hits both alike.
        configs.push(("slab+tel", 1, ScoringMode::Batched));
        best.resize_with(configs.len(), || None);
        for _ in 0..repeats {
            for (index, &(layout, shards, scoring)) in configs.iter().enumerate() {
                let row = run(layout, live, shards, scoring, warmup, measured);
                if best[index].as_ref().is_none_or(|b| row.pairs_per_sec > b.pairs_per_sec) {
                    best[index] = Some(row);
                }
            }
        }
        let mut group: Vec<Row> = best.into_iter().map(|r| r.expect("one repeat")).collect();
        // The correctness gate: every layout, shard count and scoring mode
        // must produce the bit-identical ranking — the rows differ in
        // where state lives and how the loops are tiled, never in what
        // they say.
        for row in &group[1..] {
            assert_eq!(
                row.ranking,
                group[0].ranking,
                "{}@{} shards ({}) diverged from the legacy ranking at {} pairs",
                row.layout,
                row.shards,
                row.scoring.name(),
                row.pairs
            );
        }
        for row in &group {
            table.row(&[
                row.layout,
                &format!("{}", row.pairs),
                &format!("{}", row.shards),
                row.scoring.name(),
                &format!("{:.3}", row.close_secs),
                &format!("{:.0}", row.pairs_per_sec),
            ]);
        }
        rows.append(&mut group);
    }

    // Ratio families per size: layout (best slab over legacy) and scoring
    // (best batched slab over best scalar slab).
    let best_slab = |rows: &[Row], live: usize, scoring: ScoringMode| -> f64 {
        rows.iter()
            .filter(|r| r.layout == "slab" && r.pairs == live && r.scoring == scoring)
            .map(|r| r.pairs_per_sec)
            .fold(0.0, f64::max)
    };
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut batched_speedups: Vec<(usize, f64)> = Vec::new();
    let mut telemetry_ratios: Vec<(usize, f64)> = Vec::new();
    for &live in sizes {
        let legacy = rows
            .iter()
            .find(|r| r.layout == "legacy" && r.pairs == live)
            .expect("legacy row recorded");
        let scalar = best_slab(&rows, live, ScoringMode::Scalar);
        let batched = best_slab(&rows, live, ScoringMode::Batched);
        speedups.push((live, scalar.max(batched) / legacy.pairs_per_sec.max(1e-9)));
        batched_speedups.push((live, batched / scalar.max(1e-9)));
        // Telemetry price: the instrumented row against its bare twin
        // (same layout, store count and scoring mode).
        let bare = rows
            .iter()
            .find(|r| {
                r.layout == "slab"
                    && r.pairs == live
                    && r.shards == 1
                    && r.scoring == ScoringMode::Batched
            })
            .expect("bare slab row recorded");
        let tel = rows
            .iter()
            .find(|r| r.layout == "slab+tel" && r.pairs == live)
            .expect("telemetry row recorded");
        telemetry_ratios.push((live, tel.pairs_per_sec / bare.pairs_per_sec.max(1e-9)));
    }
    println!("\nrankings verified bit-identical across layouts, shard counts and scoring modes");
    for (&(pairs, layout_ratio), &(_, batched_ratio)) in
        speedups.iter().zip(batched_speedups.iter())
    {
        println!(
            "at {pairs} pairs: slab/legacy {layout_ratio:.2}x, batched/scalar {batched_ratio:.2}x"
        );
    }
    for &(pairs, ratio) in &telemetry_ratios {
        println!("at {pairs} pairs: telemetry-on/off {ratio:.3}x");
    }
    if smoke {
        // The gates run at the largest smoke size with paired per-tick
        // A/B timing (see `run_paired`) — the sweep's one-run-at-a-time
        // ratios above are reported but far too noisy to gate on. Two
        // rounds with fresh registries, best ratio kept, so one unlucky
        // allocation layout cannot fail the gate either.
        let gate = *sizes.last().expect("at least one size");
        let rounds = 2;
        // The CI contract of the batch kernels: never slower than the
        // scalar walk they replace (and bit-identical, asserted above).
        let mut batched_ratio = f64::MAX;
        for _ in 0..rounds {
            let mut scalar = gate_registry(gate, ScoringMode::Scalar);
            let mut batched = gate_registry(gate, ScoringMode::Batched);
            let (scalar_secs, batched_secs) =
                run_paired(&mut scalar, &mut batched, gate, warmup, 20);
            batched_ratio = batched_ratio.min(batched_secs / scalar_secs.max(1e-9));
        }
        assert!(
            batched_ratio <= 1.0,
            "batched close slower than scalar at {gate} pairs (paired time ratio \
             {batched_ratio:.3}x)"
        );
        println!("smoke: batched >= scalar at {gate} pairs (paired)");
        // The observability contract: a live telemetry hub costs at most
        // 3% of close throughput.
        let mut tel_ratio = f64::MAX;
        for _ in 0..rounds {
            let mut bare = gate_registry(gate, ScoringMode::Batched);
            let mut tel = gate_registry(gate, ScoringMode::Batched);
            tel.attach_telemetry(&enblogue::telemetry::Telemetry::new(1024));
            let (bare_secs, tel_secs) = run_paired(&mut bare, &mut tel, gate, warmup, 20);
            tel_ratio = tel_ratio.min(tel_secs / bare_secs.max(1e-9));
        }
        assert!(
            tel_ratio <= 1.03,
            "telemetry-on close more than 3% slower at {gate} pairs (paired time ratio \
             {tel_ratio:.3}x)"
        );
        println!("smoke: telemetry overhead within 3% at {gate} pairs (paired, {tel_ratio:.3}x)");
    }
    write_json(&rows, &speedups, &batched_speedups, &telemetry_ratios, "BENCH_close.json");
}
