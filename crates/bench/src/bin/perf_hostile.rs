//! Hostile-workload drills — the event-time robustness layer under fire.
//!
//! Three scripted attacks from `enblogue_datagen::hostile` run against
//! the same clean background stream with one planted genuine event:
//!
//! * **late_arrival_storm** — ~30% of arrivals delayed up to a bounded
//!   number of ticks. Unprotected, documents are attributed to their
//!   *arrival* tick and rankings drift; with `bounded_lateness` covering
//!   the delay, the reorder buffer must reproduce the clean rankings
//!   byte-for-byte (correct tick attribution), on both the serial
//!   `run_replay` path and the batched `run_replay_ingest` path.
//! * **duplicate_flood** — one source re-emits every document twice.
//!   The dedup window must reject every copy and reproduce the clean
//!   rankings byte-for-byte.
//! * **spam_burst** — coordinated fresh sources spray a fake tag pair.
//!   Per-source token-bucket caps must throttle the spammers without
//!   touching honest traffic (verified by running the capped config
//!   over the clean stream: zero drops, byte-identical rankings) and
//!   strictly reduce the fake pair's best score.
//!
//! A streaming crash-recovery drill closes the loop: the hardened
//! engine (reorder buffer + source guard live) checkpoints periodically
//! while fed per-arrival, is killed mid-stream, resumes from the newest
//! checkpoint, and continues from the arrival cursor
//! (`metrics().docs_arrived`) — the recovered tail rankings and every
//! drop counter must match an uninterrupted run exactly.
//!
//! Results land in `BENCH_hostile.json` (schema in docs/BENCHMARKS.md).
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_hostile`
//! Smoke mode (CI): append `-- --test` for the drill-scale workload.

use enblogue::core::snapshot::latest_checkpoint;
use enblogue::datagen::hostile::{HostileConfig, HostileWorkload};
use enblogue::prelude::*;
use enblogue_bench::Table;
use std::path::Path;
use std::time::Instant;

fn builder() -> enblogue::core::config::EnBlogueConfigBuilder {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(6)
        .seed_count(40)
        .min_seed_count(2)
        .min_pair_support(1)
        .top_k(20)
        .max_tracked_pairs(200_000)
        .shards(4)
        .parallel_close(false)
}

/// Replay a (sorted) stream under `config`, returning the snapshots.
fn replay(docs: &[Document], config: EnBlogueConfig) -> Vec<RankingSnapshot> {
    EnBlogueEngine::new(config).run_replay(docs)
}

/// Ticks whose rankings differ between two runs (length differences
/// count as perturbed ticks too).
fn perturbed_ticks(a: &[RankingSnapshot], b: &[RankingSnapshot]) -> usize {
    let common = a.len().min(b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count() + (a.len().max(b.len()) - common)
}

/// What an engine *without* event-time handling does to an out-of-order
/// stream: every document is counted in the tick open at its arrival,
/// i.e. its timestamp clamps to the running maximum. The clamped stream
/// is sorted, so the plain replay path models the unprotected engine.
fn arrival_attributed(arrivals: &[Document]) -> Vec<Document> {
    let mut clamped = arrivals.to_vec();
    let mut max_ts = Timestamp::from_secs(0);
    for doc in &mut clamped {
        max_ts = max_ts.max(doc.timestamp);
        doc.timestamp = max_ts;
    }
    clamped
}

struct Row {
    workload: &'static str,
    arrivals: usize,
    injected: u64,
    unprotected_perturbed: usize,
    protected_perturbed: usize,
    late_dropped: u64,
    deduped: u64,
    rate_capped: u64,
    replay_ms: f64,
}

/// Late-arrival storm: protection = reorder buffer with
/// `bounded_lateness >= max_delay`. The CI gate: protected rankings are
/// byte-identical to the clean baseline on both feed paths.
fn storm_row(config: &HostileConfig, max_delay: u64) -> Row {
    let w = HostileWorkload::late_arrival_storm(config, max_delay);
    let baseline = replay(&w.clean, builder().build().unwrap());
    let unprotected = replay(&arrival_attributed(&w.arrivals), builder().build().unwrap());

    let cfg = builder().bounded_lateness(max_delay).build().unwrap();
    let started = Instant::now();
    let mut engine = EnBlogueEngine::new(cfg.clone());
    let protected = engine.run_replay(&w.arrivals);
    let replay_ms = started.elapsed().as_secs_f64() * 1e3;
    let m = engine.metrics();
    assert_eq!(m.docs_arrived, w.arrivals.len() as u64);
    assert_eq!(m.docs_late_dropped, 0, "bound covers the delay: nothing may drop");
    assert_eq!(protected, baseline, "storm: reorder buffer must reproduce the clean rankings");

    // The batched feeder (resequence + parallel ingestion) must agree.
    let mut batched = EnBlogueEngine::new(cfg);
    let ingest = IngestConfig { batch_size: 256, queue_depth: 4, workers: 2 };
    let (snapshots, _) = batched.run_replay_ingest(&w.arrivals, &ingest);
    assert_eq!(snapshots, baseline, "storm: batched ingest path must agree");

    let unprotected_perturbed = perturbed_ticks(&unprotected, &baseline);
    assert!(unprotected_perturbed > 0, "the storm must actually distort an unprotected run");
    Row {
        workload: w.name,
        arrivals: w.arrivals.len(),
        injected: w.injected,
        unprotected_perturbed,
        protected_perturbed: perturbed_ticks(&protected, &baseline),
        late_dropped: m.docs_late_dropped,
        deduped: m.docs_deduped,
        rate_capped: m.docs_rate_capped,
        replay_ms,
    }
}

/// Duplicate flood: protection = dedup window. The CI gate: every copy
/// drops and rankings are byte-identical to the clean baseline.
fn flood_row(config: &HostileConfig, copies: u32) -> Row {
    let w = HostileWorkload::duplicate_flood(config, copies);
    let baseline = replay(&w.clean, builder().build().unwrap());
    let unprotected = replay(&w.arrivals, builder().build().unwrap());

    let guard = SourceGuardConfig {
        enabled: true,
        dedup_window_ticks: 2,
        rate_limit_per_tick: 0.0,
        rate_burst: 0.0,
    };
    let started = Instant::now();
    let mut engine = EnBlogueEngine::new(builder().source_guard(guard).build().unwrap());
    let protected = engine.run_replay(&w.arrivals);
    let replay_ms = started.elapsed().as_secs_f64() * 1e3;
    let m = engine.metrics();
    assert_eq!(m.docs_deduped, w.injected, "every injected copy must be deduplicated");
    assert_eq!(protected, baseline, "flood: dedup must reproduce the clean rankings");

    let unprotected_perturbed = perturbed_ticks(&unprotected, &baseline);
    assert!(unprotected_perturbed > 0, "the flood must actually distort an unprotected run");
    Row {
        workload: w.name,
        arrivals: w.arrivals.len(),
        injected: w.injected,
        unprotected_perturbed,
        protected_perturbed: perturbed_ticks(&protected, &baseline),
        late_dropped: m.docs_late_dropped,
        deduped: m.docs_deduped,
        rate_capped: m.docs_rate_capped,
        replay_ms,
    }
}

/// Best (rank, score) a pair ever reaches across a snapshot sequence.
fn best_showing(snapshots: &[RankingSnapshot], pair: TagPair) -> Option<(usize, f64)> {
    snapshots
        .iter()
        .filter_map(|s| s.rank_of(pair).map(|r| (r, s.ranked[r].1)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

struct SpamOutcome {
    row: Row,
    uncapped_best: Option<(usize, f64)>,
    capped_best: Option<(usize, f64)>,
}

/// Spam burst: protection = per-source token-bucket rate caps sized well
/// above honest traffic. The CI gates: the capped config is invisible on
/// the clean stream (zero drops, byte-identical) and the admitted spam
/// volume is bounded by the bucket arithmetic — at most
/// `burst + ticks × rate` documents per spam source, however hard the
/// burst shouts. (The fake pair still *appears*: a from-zero pair
/// saturates the novelty-driven shift score at any volume — caps bound
/// the damage, they cannot un-publish the tag pair.)
fn spam_row(config: &HostileConfig, spam_sources: u32, docs_per_tick: u64) -> SpamOutcome {
    let w = HostileWorkload::spam_burst(config, spam_sources, docs_per_tick);
    let spam_pair = w.spam_pair.expect("spam burst carries its pair");
    let rate = 6.0 * config.docs_per_hour as f64 / f64::from(config.n_sources);
    assert!(rate < docs_per_tick as f64, "the cap must actually bite the spammers");
    let guard = SourceGuardConfig {
        enabled: true,
        dedup_window_ticks: 2,
        rate_limit_per_tick: rate,
        rate_burst: 0.0,
    };

    let baseline = replay(&w.clean, builder().build().unwrap());
    let uncapped = replay(&w.arrivals, builder().build().unwrap());

    // Honest traffic sits far below the cap: the guarded config over the
    // clean stream must be a byte-identical no-op.
    let mut honest = EnBlogueEngine::new(builder().source_guard(guard.clone()).build().unwrap());
    let honest_snapshots = honest.run_replay(&w.clean);
    assert_eq!(honest.metrics().docs_rate_capped, 0, "honest sources must never be capped");
    assert_eq!(honest.metrics().docs_deduped, 0, "honest documents are unique");
    assert_eq!(honest_snapshots, baseline, "guards must be invisible on clean input");

    let started = Instant::now();
    let mut engine = EnBlogueEngine::new(builder().source_guard(guard).build().unwrap());
    let capped = engine.run_replay(&w.arrivals);
    let replay_ms = started.elapsed().as_secs_f64() * 1e3;
    let m = engine.metrics();
    assert!(m.docs_rate_capped > 0, "the burst must trip the rate caps");
    assert!(m.docs_rate_capped < w.injected, "caps throttle, they do not blackhole");
    // Token-bucket arithmetic: each spam source admits at most its
    // starting burst plus one refill per tick of the attack window.
    let attack_ticks = config.hours / 3 + 1;
    let admitted = w.injected - m.docs_rate_capped;
    let bound = (rate * (attack_ticks + 1) as f64 * f64::from(spam_sources)).ceil() as u64;
    assert!(
        admitted <= bound,
        "admitted spam ({admitted}) must respect the bucket bound ({bound})"
    );

    let uncapped_best = best_showing(&uncapped, spam_pair);
    let capped_best = best_showing(&capped, spam_pair);
    assert!(
        uncapped_best.is_some(),
        "an unthrottled burst must push the fake pair into the ranking"
    );

    let unprotected_perturbed = perturbed_ticks(&uncapped, &baseline);
    assert!(unprotected_perturbed > 0, "the burst must actually distort an unprotected run");
    let protected_perturbed = perturbed_ticks(&capped, &baseline);
    assert!(
        protected_perturbed <= unprotected_perturbed,
        "caps must not make the perturbation worse"
    );
    SpamOutcome {
        row: Row {
            workload: w.name,
            arrivals: w.arrivals.len(),
            injected: w.injected,
            unprotected_perturbed,
            protected_perturbed,
            late_dropped: m.docs_late_dropped,
            deduped: m.docs_deduped,
            rate_capped: m.docs_rate_capped,
            replay_ms,
        },
        uncapped_best,
        capped_best,
    }
}

/// The streaming failover drill with the full hardened stack live:
/// periodic checkpoints while arrivals stream through `offer_doc`, a
/// kill mid-stream, resume from the newest checkpoint, continue from the
/// arrival cursor. Rankings and drop counters must match an
/// uninterrupted run exactly. Returns (resumed ticks, tail arrivals).
fn recovery_drill(config: &HostileConfig, max_delay: u64, dir: &Path) -> (usize, usize) {
    let w = HostileWorkload::late_arrival_storm(config, max_delay);
    let guard = SourceGuardConfig {
        enabled: true,
        dedup_window_ticks: 2,
        rate_limit_per_tick: 6.0 * config.docs_per_hour as f64 / f64::from(config.n_sources),
        rate_burst: 0.0,
    };
    let cfg = builder().bounded_lateness(max_delay).source_guard(guard).build().unwrap();

    let mut uninterrupted = EnBlogueEngine::new(cfg.clone());
    let mut baseline = Vec::new();
    for doc in &w.arrivals {
        uninterrupted.offer_doc(doc, |s| baseline.push(s));
    }
    uninterrupted.finish_stream(|s| baseline.push(s));

    // The doomed run: checkpoint every 8 ticks, killed two thirds in.
    let crash_dir = dir.join("hostile-recovery");
    let _ = std::fs::remove_dir_all(&crash_dir);
    let doomed_cfg = EnBlogueConfig {
        snapshot: SnapshotConfig::every(8, crash_dir.to_str().expect("utf-8 temp path")),
        ..cfg.clone()
    };
    let head = w.arrivals.len() * 2 / 3;
    let mut doomed = EnBlogueEngine::new(doomed_cfg);
    for doc in &w.arrivals[..head] {
        doomed.offer_doc(doc, |_| {});
    }
    assert!(doomed.metrics().snapshots_taken > 0, "the doomed run must have checkpointed");
    drop(doomed); // the "kill": everything in memory is gone

    // Recovery: the checkpoint carries watermark, pending documents,
    // dedup window, and bucket levels; `docs_arrived` is the cursor into
    // the arrival stream.
    let file = latest_checkpoint(&crash_dir).expect("readable dir").expect("a checkpoint file");
    let mut recovered = EnBlogueEngine::resume(cfg, &file).expect("restore after crash");
    let resumed_ticks = recovered.metrics().ticks_closed as usize;
    let cursor = recovered.metrics().docs_arrived as usize;
    assert!(cursor <= head, "the cursor cannot run past the kill point");
    let mut tail = Vec::new();
    for doc in &w.arrivals[cursor..] {
        recovered.offer_doc(doc, |s| tail.push(s));
    }
    recovered.finish_stream(|s| tail.push(s));
    assert_eq!(
        tail.as_slice(),
        &baseline[resumed_ticks..],
        "recovered rankings diverged from the uninterrupted hardened run"
    );
    let (a, b) = (recovered.metrics(), uninterrupted.metrics());
    assert_eq!(a.docs_arrived, b.docs_arrived, "arrival cursor must land exactly");
    assert_eq!(a.docs_late_dropped, b.docs_late_dropped, "late-drop count must survive");
    assert_eq!(a.docs_deduped, b.docs_deduped, "dedup state must survive");
    assert_eq!(a.docs_rate_capped, b.docs_rate_capped, "bucket levels must survive");
    assert_eq!(recovered.pipeline().latest_snapshot(), uninterrupted.pipeline().latest_snapshot());
    let _ = std::fs::remove_dir_all(&crash_dir);
    (resumed_ticks, w.arrivals.len() - cursor)
}

fn fmt_best(best: Option<(usize, f64)>) -> String {
    match best {
        Some((rank, score)) => format!("{{\"rank\": {rank}, \"score\": {score:.4}}}"),
        None => "null".to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[Row],
    spam_uncapped: Option<(usize, f64)>,
    spam_capped: Option<(usize, f64)>,
    resumed_ticks: usize,
    tail_arrivals: usize,
    path: &str,
) {
    let mut out = String::from("{\n  \"experiment\": \"hostile\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"arrivals\": {}, \"injected\": {}, \
             \"unprotected_perturbed_ticks\": {}, \"protected_perturbed_ticks\": {}, \
             \"late_dropped\": {}, \"deduped\": {}, \"rate_capped\": {}, \
             \"replay_ms\": {:.2}}}{}\n",
            row.workload,
            row.arrivals,
            row.injected,
            row.unprotected_perturbed,
            row.protected_perturbed,
            row.late_dropped,
            row.deduped,
            row.rate_capped,
            row.replay_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"spam_pair\": {{\"uncapped_best\": {}, \"capped_best\": {}}},\n",
        fmt_best(spam_uncapped),
        fmt_best(spam_capped),
    ));
    out.push_str(&format!(
        "  \"recovery\": {{\"resumed_ticks\": {resumed_ticks}, \
         \"tail_arrivals\": {tail_arrivals}, \"verified\": true}}\n}}\n"
    ));
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let config = if smoke {
        HostileConfig::default()
    } else {
        HostileConfig { hours: 168, docs_per_hour: 150, n_tags: 100, ..HostileConfig::default() }
    };
    let max_delay = if smoke { 3 } else { 5 };
    let spam_rate = if smoke { 60 } else { 200 };
    println!("hostile workload drills{}\n", if smoke { " [smoke]" } else { "" });

    let table = Table::new(&[20, 9, 9, 13, 11, 9, 9]);
    table.header(&[
        "workload",
        "arrivals",
        "injected",
        "hostile ticks",
        "prot ticks",
        "dropped",
        "ms",
    ]);
    let mut rows = Vec::new();
    let spam;
    {
        rows.push(storm_row(&config, max_delay));
        rows.push(flood_row(&config, 2));
        spam = spam_row(&config, 3, spam_rate);
        rows.push(spam.row);
        for row in &rows {
            table.row(&[
                row.workload,
                &format!("{}", row.arrivals),
                &format!("{}", row.injected),
                &format!("{}", row.unprotected_perturbed),
                &format!("{}", row.protected_perturbed),
                &format!("{}", row.late_dropped + row.deduped + row.rate_capped),
                &format!("{:.1}", row.replay_ms),
            ]);
        }
    }
    match (spam.uncapped_best, spam.capped_best) {
        (Some((ur, us)), Some((cr, cs))) => println!(
            "\nspam pair: uncapped best rank {ur} (score {us:.3}) → capped rank {cr} (score {cs:.3})"
        ),
        (Some((ur, us)), None) => println!(
            "\nspam pair: uncapped best rank {ur} (score {us:.3}) → capped out of the ranking"
        ),
        _ => unreachable!("spam_row asserts the uncapped pair ranks"),
    }

    let dir = std::env::temp_dir().join(format!("enblogue-perf-hostile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (resumed_ticks, tail_arrivals) = recovery_drill(&config, max_delay, &dir);
    println!(
        "\ncrash recovery verified: resumed at tick {resumed_ticks}, \
         {tail_arrivals} tail arrivals, rankings + drop counters identical"
    );

    write_json(
        &rows,
        spam.uncapped_best,
        spam.capped_best,
        resumed_ticks,
        tail_arrivals,
        "BENCH_hostile.json",
    );
    let _ = std::fs::remove_dir_all(&dir);
}
