//! Ingestion throughput sweep — the `enblogue-ingest` subsystem under
//! worker count × batch size, against the sequential feeding baseline.
//!
//! Every configuration replays the same NYT archive; rankings are
//! verified byte-identical to sequential feeding (parallel ingestion is a
//! pure execution knob), so the rows differ only in docs/sec. Each
//! configuration is measured `repeats` times and the best run is kept
//! (throughput benches report capability, not scheduler noise).
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_ingest`
//! Smoke mode (CI): append `-- --test` for a small workload + 1 repeat.
//!
//! Besides the printed table, rows are recorded to `BENCH_ingest.json`
//! (flat JSON, written by hand — no serializer in the offline build),
//! including a single-vs-multi-worker summary.

use enblogue::datagen::nyt::{NytArchive, NytConfig};
use enblogue::prelude::*;
use enblogue_bench::{rate, timed, Table};

struct Row {
    workers: usize,
    batch_size: usize,
    docs: u64,
    secs: f64,
    docs_per_sec: f64,
    queue_full_stalls: u64,
}

fn write_json(rows: &[Row], sequential_dps: f64, path: &str) {
    let single_best =
        rows.iter().filter(|r| r.workers == 1).map(|r| r.docs_per_sec).fold(0.0f64, f64::max);
    let multi_best =
        rows.iter().filter(|r| r.workers > 1).map(|r| r.docs_per_sec).fold(0.0f64, f64::max);
    let mut out = String::from("{\n  \"experiment\": \"ingest_throughput\",\n");
    out.push_str(&format!("  \"sequential_docs_per_sec\": {sequential_dps:.0},\n"));
    out.push_str(&format!("  \"single_worker_docs_per_sec\": {single_best:.0},\n"));
    out.push_str(&format!("  \"multi_worker_docs_per_sec\": {multi_best:.0},\n"));
    out.push_str(&format!(
        "  \"multi_worker_speedup\": {:.3},\n",
        multi_best / single_best.max(1e-9)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"batch_size\": {}, \"docs\": {}, \"secs\": {:.4}, \
             \"docs_per_sec\": {:.0}, \"queue_full_stalls\": {}}}{}\n",
            row.workers,
            row.batch_size,
            row.docs,
            row.secs,
            row.docs_per_sec,
            row.queue_full_stalls,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (days, docs_per_day, repeats) = if smoke { (10, 60, 1) } else { (60, 250, 3) };
    let archive = NytArchive::generate(&NytConfig {
        seed: 0x1_E657,
        days,
        docs_per_day,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 120,
        n_terms: 500,
        historic_events: 4,
    });
    let config = || {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .unwrap()
    };
    println!(
        "ingest throughput — {} docs, {} repeats per config (best kept){}\n",
        archive.docs.len(),
        repeats,
        if smoke { " [smoke]" } else { "" },
    );

    // Sequential baseline (also the parity reference).
    let (baseline, seq_secs) = {
        let mut engine = EnBlogueEngine::new(config());
        let (snapshots, secs) = timed(|| engine.run_replay(&archive.docs));
        (snapshots, secs)
    };
    let sequential_dps = archive.docs.len() as f64 / seq_secs.max(1e-9);
    println!("sequential feeding: {}\n", rate(archive.docs.len() as u64, seq_secs));

    let table = Table::new(&[8, 8, 12, 10, 12, 8]);
    table.header(&["workers", "batch", "docs/s", "secs", "stalls", "vs seq"]);
    let mut rows: Vec<Row> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for batch_size in [1usize, 64, 512] {
            let mut best: Option<Row> = None;
            for _ in 0..repeats {
                let mut engine = EnBlogueEngine::new(config());
                let ingest = IngestConfig { batch_size, queue_depth: 8, workers };
                let (snapshots, stats) = engine.run_replay_ingest(&archive.docs, &ingest);
                assert_eq!(snapshots, baseline, "parallel ingestion changed the rankings!");
                let row = Row {
                    workers,
                    batch_size,
                    docs: stats.docs,
                    secs: stats.elapsed_secs,
                    docs_per_sec: stats.docs_per_sec(),
                    queue_full_stalls: stats.queue_full_stalls,
                };
                if best.as_ref().is_none_or(|b| row.docs_per_sec > b.docs_per_sec) {
                    best = Some(row);
                }
            }
            let row = best.expect("at least one repeat");
            table.row(&[
                &format!("{workers}"),
                &format!("{batch_size}"),
                &rate(row.docs, row.secs),
                &format!("{:.2}", row.secs),
                &format!("{}", row.queue_full_stalls),
                &format!("{:.2}x", row.docs_per_sec / sequential_dps.max(1e-9)),
            ]);
            rows.push(row);
        }
    }
    println!("\noutputs verified byte-identical to sequential feeding in every configuration");
    write_json(&rows, sequential_dps, "BENCH_ingest.json");
}
