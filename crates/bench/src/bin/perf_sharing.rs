//! Experiment P2 — multi-plan sharing ablation (§4.1).
//!
//! N parallel query plans (same prefix: source + entity tagging, different
//! engine settings) with and without structural sharing. Reports total
//! operator events processed and wall time; outputs are verified identical.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_sharing`
//!
//! Besides the printed table, the run records every row to
//! `BENCH_sharing.json` (flat JSON, written by hand — no serializer in the
//! offline build) so CI and later sessions can diff shared vs unshared
//! processed-event counts.

use enblogue::prelude::*;
use enblogue_bench::{small_archive, timed, Table};
use std::sync::Arc;

/// One measured row of the ablation.
struct Row {
    plans: usize,
    events_shared: u64,
    events_unshared: u64,
    shared_secs: f64,
    unshared_secs: f64,
}

fn write_json(rows: &[Row], path: &str) {
    let mut out = String::from("{\n  \"experiment\": \"P2_plan_sharing\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"plans\": {}, \"events_shared\": {}, \"events_unshared\": {}, \
             \"shared_secs\": {:.4}, \"unshared_secs\": {:.4}, \"events_saved\": {}}}{}\n",
            row.plans,
            row.events_shared,
            row.events_unshared,
            row.shared_secs,
            row.unshared_secs,
            row.events_unshared - row.events_shared,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let archive = small_archive(0x9A);
    let tagger = Arc::new(EntityTagger::new(Arc::clone(&archive.universe.gazetteer)));
    println!("P2 — plan sharing: {} docs, prefix = source + entity tagging\n", archive.len());

    let build_config = |k: usize| {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(25)
            .min_seed_count(3)
            .top_k(k)
            .build()
            .unwrap()
    };

    let table = Table::new(&[8, 16, 16, 12, 12, 10]);
    table.header(&[
        "plans",
        "events shared",
        "events unshared",
        "shared (s)",
        "unshared(s)",
        "speedup",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for n_plans in [1usize, 2, 4, 8] {
        let run = |share: bool| {
            let mut builder = PipelineBuilder::new(
                archive.docs.clone(),
                TickSpec::daily(),
                archive.interner.clone(),
            )
            .with_entity_tagging(Arc::clone(&tagger));
            for i in 0..n_plans {
                builder = builder.with_engine(format!("plan-{i}"), build_config(5 + i));
            }
            if !share {
                builder = builder.without_sharing();
            }
            timed(|| builder.run().unwrap())
        };
        let ((shared_stats, shared_handles), shared_secs) = run(true);
        let ((unshared_stats, unshared_handles), unshared_secs) = run(false);
        // Sharing must be output-transparent.
        for (a, b) in shared_handles.iter().zip(&unshared_handles) {
            assert_eq!(*a.lock().unwrap(), *b.lock().unwrap(), "sharing changed results!");
        }
        table.row(&[
            &format!("{n_plans}"),
            &format!("{}", shared_stats.total_processed()),
            &format!("{}", unshared_stats.total_processed()),
            &format!("{shared_secs:.2}"),
            &format!("{unshared_secs:.2}"),
            &format!("{:.2}x", unshared_secs / shared_secs.max(1e-9)),
        ]);
        rows.push(Row {
            plans: n_plans,
            events_shared: shared_stats.total_processed(),
            events_unshared: unshared_stats.total_processed(),
            shared_secs,
            unshared_secs,
        });
    }
    println!("\nWith sharing the prefix cost is paid once; without it, once per plan —");
    println!("\"overlapping parts … are shared for efficiency\" (§4.1). Outputs verified equal.");
    write_json(&rows, "BENCH_sharing.json");
}
