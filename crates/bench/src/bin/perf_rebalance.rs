//! Shard rebalancing under a Zipf-skewed workload — dynamic routing
//! against static sharding on the full per-tick cycle (batched
//! observation apply + tick close).
//!
//! Real streams concentrate on few hot tags, so pair observations
//! concentrate on few hot *slots* of the routing grid. Static hashing
//! spreads distinct pairs evenly but cannot split or separate hot slots
//! once they land together; the load-aware rebalancer can. This bench
//! replays one skewed stream through three registries:
//!
//! * `static-1` — one shard, the machine-derived default of a 1-core box
//!   (the configuration a user gets out of the box there),
//! * `static-N` — an N-store pool on the frozen uniform table (classic
//!   static hash sharding; load accounting on so skew is measured),
//! * `dynamic-N` — the same pool with the rebalancer active.
//!
//! Rankings are verified byte-identical across all three (rebalancing is
//! an execution knob), so rows differ only in where state lives and how
//! fast the cycle runs. Each configuration is measured `repeats` times
//! and the best run kept. Two headline numbers land in
//! `BENCH_rebalance.json`:
//!
//! * `tick_close_speedup_vs_default_static` — wall-clock cycle throughput
//!   of `dynamic-N` over `static-1`. On a single core this is the
//!   cache-blocking win of right-sized shard stores (each store's maps
//!   stay small and are walked store-by-store); add cores and the
//!   parallel fan-out compounds it.
//! * `load_balance_ratio` — max-store load share of `static-N` over
//!   `dynamic-N` (from the measured load counters). This is the factor by
//!   which the slowest store's work shrinks, i.e. the tick-close speedup
//!   bound that shard-parallel close converts into wall-clock on
//!   multi-core hardware.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_rebalance`
//! Smoke mode (CI): append `-- --test` for a small workload + 1 repeat.

use enblogue::core::pairs::PAIR_LOAD_WEIGHT;
use enblogue::datagen::zipf::Zipf;
use enblogue::prelude::*;
use enblogue_bench::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Workload {
    ticks: u64,
    docs_per_tick: usize,
    tags: usize,
    zipf_s: f64,
    tags_per_doc: usize,
    /// Tick at which the event cluster starts bursting.
    burst_start: u64,
    /// Fraction of post-burst documents that belong to the event.
    burst_share: f64,
    /// Size of the bursting tag cluster.
    burst_tags: u32,
}

/// Zipf-skewed background chatter plus one bursting event cluster — the
/// paper's own scenario (few entities suddenly dominating the stream).
///
/// Background documents draw distinct tags from a heavy-tailed popularity
/// law. From `burst_start` on, `burst_share` of the documents are event
/// documents whose tags all come from one small cluster, so the cluster's
/// `C(n, 2)` pairs concentrate a large share of all observations on a
/// handful of routing slots — the load shape static hashing cannot
/// un-collide but the rebalancer can spread.
fn generate(w: &Workload) -> Vec<Document> {
    let zipf = Zipf::new(w.tags, w.zipf_s);
    let mut rng = StdRng::seed_from_u64(0x5EED_BA1A_4CE5);
    let mut docs = Vec::with_capacity(w.ticks as usize * w.docs_per_tick);
    let mut id = 0u64;
    // The cluster sits just outside the Zipf head so the burst, not the
    // background, is what makes it hot.
    let cluster: Vec<TagId> = (0..w.burst_tags).map(|i| TagId(w.tags as u32 + i)).collect();
    for tick in 0..w.ticks {
        for _ in 0..w.docs_per_tick {
            id += 1;
            let burst = tick >= w.burst_start && rng.gen_bool(w.burst_share);
            let mut tags: Vec<TagId> = Vec::with_capacity(w.tags_per_doc);
            let mut guard = 0;
            while tags.len() < w.tags_per_doc && guard < 32 {
                guard += 1;
                let tag = if burst {
                    cluster[rng.gen_range(0..cluster.len())]
                } else {
                    TagId(zipf.sample(&mut rng) as u32)
                };
                if !tags.contains(&tag) {
                    tags.push(tag);
                }
            }
            docs.push(Document::builder(id, Timestamp::from_hours(tick)).tags(tags).build());
        }
    }
    docs
}

struct Row {
    name: &'static str,
    shards: usize,
    secs: f64,
    apply_secs: f64,
    close_secs: f64,
    ticks_per_sec: f64,
    max_load_share: f64,
    active_shards: usize,
    rebalances: u64,
    migrated_pairs: u64,
    pairs_tracked: usize,
    snapshots: Vec<RankingSnapshot>,
}

/// One full replay: per tick, batch-apply the slice then close — the
/// cycle whose throughput the rebalancer targets. `max_load_share` is the
/// hottest store's share of the total measured load, averaged over the
/// second half of the run (after warm-up), from the registry's own load
/// counters.
fn run(name: &'static str, config: EnBlogueConfig, docs: &[Document], ticks: u64) -> Row {
    let shards = config.shards;
    let mut engine = EnBlogueEngine::new(config);
    let mut apply_secs = 0.0;
    let mut close_secs = 0.0;
    let mut snapshots = Vec::new();
    let mut load_share_sum = 0.0;
    let mut load_share_samples = 0u64;
    let spec = TickSpec::hourly();
    let mut start = 0;
    let started = Instant::now();
    for tick in 0..ticks {
        let end = docs[start..]
            .iter()
            .position(|d| spec.tick_of(d.timestamp) > Tick(tick))
            .map_or(docs.len(), |offset| start + offset);
        let t0 = Instant::now();
        engine.process_docs(&docs[start..end]);
        apply_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        snapshots.push(engine.close_tick(Tick(tick)));
        close_secs += t1.elapsed().as_secs_f64();
        start = end;
        if std::env::var_os("ENBLOGUE_REBALANCE_DEBUG").is_some() {
            let stats = engine.pipeline().state().registry().stats();
            eprintln!(
                "[{name} t{tick}] live={} active={} skew={:.3} epoch={} migrated={}",
                stats.tracked_pairs,
                stats.active_shards,
                stats.skew,
                stats.routing_epoch,
                stats.migrated_pairs
            );
        }
        if tick >= ticks / 2 {
            let stats = engine.pipeline().state().registry().stats();
            let loads: Vec<u64> = stats
                .per_shard_obs
                .iter()
                .zip(&stats.per_shard_pairs)
                .map(|(&obs, &pairs)| obs + PAIR_LOAD_WEIGHT * pairs as u64)
                .collect();
            let total: u64 = loads.iter().sum();
            if total > 0 {
                let max = loads.iter().copied().max().unwrap_or(0);
                load_share_sum += max as f64 / total as f64;
                load_share_samples += 1;
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let metrics = engine.pipeline().metrics();
    let stats = engine.pipeline().state().registry().stats();
    Row {
        name,
        shards,
        secs,
        apply_secs,
        close_secs,
        ticks_per_sec: ticks as f64 / secs.max(1e-9),
        max_load_share: load_share_sum / load_share_samples.max(1) as f64,
        active_shards: stats.active_shards,
        rebalances: metrics.rebalances,
        migrated_pairs: metrics.pairs_migrated,
        pairs_tracked: metrics.pairs_tracked,
        snapshots,
    }
}

fn write_json(w: &Workload, pool: usize, rows: &[Row], path: &str) {
    let get = |name: &str| rows.iter().find(|r| r.name == name).expect("row recorded");
    let static1 = get("static-1");
    let staticn = get("static-N");
    let dynamic = get("dynamic-N");
    let speedup_default = dynamic.ticks_per_sec / static1.ticks_per_sec.max(1e-9);
    let speedup_pool = dynamic.ticks_per_sec / staticn.ticks_per_sec.max(1e-9);
    let load_ratio = staticn.max_load_share / dynamic.max_load_share.max(1e-9);
    let mut out = String::from("{\n  \"experiment\": \"shard_rebalance\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"ticks\": {}, \"docs_per_tick\": {}, \"tags\": {}, \
         \"zipf_s\": {}, \"tags_per_doc\": {}, \"burst_start\": {}, \"burst_share\": {}, \
         \"burst_tags\": {}}},\n",
        w.ticks,
        w.docs_per_tick,
        w.tags,
        w.zipf_s,
        w.tags_per_doc,
        w.burst_start,
        w.burst_share,
        w.burst_tags
    ));
    out.push_str(&format!("  \"pool_shards\": {pool},\n"));
    out.push_str(&format!(
        "  \"machine_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"shards\": {}, \"secs\": {:.4}, \
             \"apply_secs\": {:.4}, \"close_secs\": {:.4}, \"ticks_per_sec\": {:.2}, \
             \"max_load_share\": {:.4}, \"active_shards\": {}, \"rebalances\": {}, \
             \"migrated_pairs\": {}, \"pairs_tracked\": {}}}{}\n",
            row.name,
            row.shards,
            row.secs,
            row.apply_secs,
            row.close_secs,
            row.ticks_per_sec,
            row.max_load_share,
            row.active_shards,
            row.rebalances,
            row.migrated_pairs,
            row.pairs_tracked,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"tick_close_speedup_vs_default_static\": {speedup_default:.3},\n"));
    out.push_str(&format!("  \"tick_close_speedup_vs_pool_static\": {speedup_pool:.3},\n"));
    out.push_str(&format!("  \"load_balance_ratio\": {load_ratio:.3},\n"));
    out.push_str("  \"rankings_identical\": true\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let workload = if smoke {
        Workload {
            ticks: 8,
            docs_per_tick: 400,
            tags: 600,
            zipf_s: 1.1,
            tags_per_doc: 4,
            burst_start: 3,
            burst_share: 0.3,
            burst_tags: 6,
        }
    } else {
        Workload {
            ticks: 40,
            docs_per_tick: 30_000,
            tags: 3000,
            zipf_s: 1.1,
            tags_per_doc: 4,
            burst_start: 10,
            burst_share: 0.4,
            burst_tags: 5,
        }
    };
    let pool = 8usize;
    let repeats = if smoke { 1 } else { 5 };
    let docs = generate(&workload);
    println!(
        "shard rebalancing — {} docs over {} ticks, Zipf(s={}) tags, pool of {pool}{}\n",
        docs.len(),
        workload.ticks,
        workload.zipf_s,
        if smoke { " [smoke]" } else { "" },
    );

    let base = |shards: usize| {
        EnBlogueConfig::builder()
            .tick_spec(TickSpec::hourly())
            .window_ticks(6)
            .seed_count(30)
            .min_seed_count(3)
            .min_pair_support(1)
            .top_k(20)
            .max_tracked_pairs(200_000)
            .shards(shards)
            .parallel_close(false)
    };
    // The frozen policy keeps the uniform table but still accounts load,
    // so the static row reports a measured skew.
    let frozen = RebalanceConfig {
        enabled: true,
        min_tracked_pairs: usize::MAX,
        ..RebalanceConfig::default()
    };
    // Policy thresholds scale with the workload so smoke mode still
    // exercises an actual migration.
    let active = RebalanceConfig {
        enabled: true,
        target_pairs_per_shard: if smoke { 1024 } else { 4096 },
        min_skew: 1.08,
        min_tracked_pairs: if smoke { 64 } else { 4096 },
        cooldown_ticks: 2,
        min_active_shards: 1,
        ..RebalanceConfig::default()
    };
    let configs: Vec<(&'static str, EnBlogueConfig)> = vec![
        ("static-1", base(1).rebalance_enabled(false).build().unwrap()),
        ("static-N", base(pool).rebalance(frozen).build().unwrap()),
        ("dynamic-N", base(pool).rebalance(active).build().unwrap()),
    ];

    let table = Table::new(&[10, 7, 8, 9, 9, 10, 8, 7, 9]);
    table.header(&[
        "config", "shards", "secs", "apply", "close", "ticks/s", "maxload", "active", "migrated",
    ]);
    // Repeats are interleaved round-robin across configurations so a
    // noisy patch of the machine hits every configuration in the same
    // round rather than consuming one configuration's whole budget; the
    // best round per configuration is kept.
    let mut best: Vec<Option<Row>> = configs.iter().map(|_| None).collect();
    for _ in 0..repeats {
        for (index, &(name, ref config)) in configs.iter().enumerate() {
            let row = run(name, config.clone(), &docs, workload.ticks);
            if best[index].as_ref().is_none_or(|b| row.ticks_per_sec > b.ticks_per_sec) {
                best[index] = Some(row);
            }
        }
    }
    let mut rows: Vec<Row> = Vec::new();
    for row in best {
        let row = row.expect("at least one repeat");
        table.row(&[
            row.name,
            &format!("{}", row.shards),
            &format!("{:.2}", row.secs),
            &format!("{:.2}", row.apply_secs),
            &format!("{:.2}", row.close_secs),
            &format!("{:.2}", row.ticks_per_sec),
            &format!("{:.3}", row.max_load_share),
            &format!("{}", row.active_shards),
            &format!("{}", row.migrated_pairs),
        ]);
        rows.push(row);
    }

    // The rebalancing contract: identical rankings in every configuration.
    for row in &rows[1..] {
        assert_eq!(
            row.snapshots, rows[0].snapshots,
            "{} changed the rankings — rebalancing must be a pure execution knob",
            row.name
        );
    }
    println!("\nrankings verified byte-identical across all configurations");
    let dynamic = rows.iter().find(|r| r.name == "dynamic-N").expect("dynamic row");
    assert!(dynamic.rebalances > 0, "the dynamic policy must engage on this workload");
    write_json(&workload, pool, &rows, "BENCH_rebalance.json");
}
