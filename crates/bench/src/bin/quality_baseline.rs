//! Experiment P7 — EnBlogue vs the TwitterMonitor-style burst baseline.
//!
//! Both systems run over the same event-annotated archives and are scored
//! with the same metric. The planted events are volume-preserving
//! correlation shifts (Figure-1 style), so this quantifies the paper's
//! central differentiation: "unlike looking solely for bursty tags, we
//! detect shifts in tag correlations".
//!
//! Run: `cargo run --release -p enblogue-bench --bin quality_baseline`

use enblogue::baseline::burst::BaselineConfig;
use enblogue::baseline::kleinberg::{detect_bursts, KleinbergConfig};
use enblogue::datagen::eval::evaluate;
use enblogue::datagen::nyt::NytArchive;
use enblogue::prelude::*;
use enblogue::types::FxHashMap;
use enblogue_bench::{baseline_snapshots, f2, small_archive, Table};

/// Kleinberg per-tag baseline: a pair is reported at tick t when *both*
/// members are inside a Kleinberg burst at t and the pair co-occurred in
/// that tick. Scored by the sum of the two burst weights.
fn kleinberg_snapshots(archive: &NytArchive, days: usize, k: usize) -> Vec<RankingSnapshot> {
    let spec = TickSpec::daily();
    // Per-tag daily counts + per-tick co-occurring pairs.
    let mut per_tag: FxHashMap<TagId, Vec<u64>> = FxHashMap::default();
    let mut totals = vec![0u64; days];
    let mut tick_pairs: Vec<Vec<TagPair>> = vec![Vec::new(); days];
    for doc in &archive.docs {
        let t = spec.tick_of(doc.timestamp).0 as usize;
        if t >= days {
            continue;
        }
        totals[t] += 1;
        let tags: Vec<TagId> = doc.annotations().collect();
        for &tag in &tags {
            per_tag.entry(tag).or_insert_with(|| vec![0; days])[t] += 1;
        }
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                tick_pairs[t].push(TagPair::new(tags[i], tags[j]));
            }
        }
    }
    // Burst intervals per tag (skip very rare tags — nothing to model).
    let config = KleinbergConfig { s: 2.5, gamma: 2.0 };
    let bursts: FxHashMap<TagId, Vec<enblogue::baseline::Burst>> = per_tag
        .iter()
        .filter(|(_, series)| series.iter().sum::<u64>() >= 10)
        .map(|(&tag, series)| (tag, detect_bursts(series, &totals, &config)))
        .collect();
    let weight_at = |tag: TagId, t: usize| -> Option<f64> {
        bursts
            .get(&tag)
            .and_then(|bs| bs.iter().find(|b| b.start <= t && t < b.end).map(|b| b.weight))
    };
    (0..days)
        .map(|t| {
            let mut ranked: Vec<(TagPair, f64)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &pair in &tick_pairs[t] {
                if !seen.insert(pair) {
                    continue;
                }
                if let (Some(wa), Some(wb)) = (weight_at(pair.lo(), t), weight_at(pair.hi(), t)) {
                    ranked.push((pair, wa + wb));
                }
            }
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
            ranked.truncate(k);
            RankingSnapshot { tick: Tick(t as u64), time: spec.end_of(Tick(t as u64)), ranked }
        })
        .collect()
}

fn main() {
    println!("P7 — detection quality: EnBlogue vs single-tag burst baseline\n");
    let seeds = [0x11u64, 0x22, 0x33, 0x44];
    println!(
        "{} archives × 5 volume-preserving pair events each, top-10, 2-day grace\n",
        seeds.len()
    );

    let table = Table::new(&[22, 10, 14, 14]);
    table.header(&["system", "recall", "precision@10", "latency (d)"]);

    let mut en_recall = 0.0;
    let mut en_precision = 0.0;
    let mut en_latency = 0.0;
    let mut bl_recall = 0.0;
    let mut bl_precision = 0.0;
    let mut kl_recall = 0.0;
    let mut kl_precision = 0.0;
    for &seed in &seeds {
        let archive = small_archive(seed);

        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(config);
        let snaps = engine.run_replay(&archive.docs);
        let report = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);
        en_recall += report.recall;
        en_precision += report.precision_at_k;
        en_latency += report.mean_latency_ms / Timestamp::DAY as f64;

        let bl_snaps = baseline_snapshots(
            &archive.docs,
            TickSpec::daily(),
            BaselineConfig {
                history_ticks: 14,
                window_ticks: 5,
                gamma: 2.0,
                min_support: 5,
                group_jaccard: 0.05,
            },
            10,
        );
        let bl_report = evaluate(&bl_snaps, &archive.script, 10, 2 * Timestamp::DAY);
        bl_recall += bl_report.recall;
        bl_precision += bl_report.precision_at_k;

        let kl_snaps = kleinberg_snapshots(&archive, 60, 10);
        let kl_report = evaluate(&kl_snaps, &archive.script, 10, 2 * Timestamp::DAY);
        kl_recall += kl_report.recall;
        kl_precision += kl_report.precision_at_k;
    }
    let n = seeds.len() as f64;
    table.row(&[
        "enblogue (corr. shifts)",
        &f2(en_recall / n),
        &f2(en_precision / n),
        &f2(en_latency / n),
    ]);
    table.row(&["mean+γσ burst baseline", &f2(bl_recall / n), &f2(bl_precision / n), "-"]);
    table.row(&["kleinberg burst baseline", &f2(kl_recall / n), &f2(kl_precision / n), "-"]);

    println!("\nThe events move *only* the pair intersection (individual tag volumes are");
    println!("preserved by construction), so per-tag burst gating — whether the simple");
    println!("mean+γσ rule or Kleinberg's principled two-state automaton — has almost no");
    println!("signal to fire on. EnBlogue's correlation tracking sees exactly what burst");
    println!("detection cannot: the paper's Figure-1 claim, reproduced quantitatively.");
}
