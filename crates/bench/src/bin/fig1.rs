//! Experiment F1 — regenerates Figure 1 of the paper.
//!
//! Prints the per-tick series of the figure (|D(t1)|, |D(t2)|,
//! |D(t1)∩D(t2)|) for the canonical two-tag stream, plus the windowed
//! Jaccard correlation, EnBlogue's shift score for the pair, and the burst
//! baseline's verdict — demonstrating that (a) the popular tag's peaks
//! have no influence on the overlap or the ranking and (b) the
//! intersection growth is caught by EnBlogue and missed by the baseline.
//!
//! Run: `cargo run --release -p enblogue-bench --bin fig1`

use enblogue::baseline::burst::{BaselineConfig, BurstBaseline};
use enblogue::prelude::*;
use enblogue_bench::{f3, Table};

fn stream(t1: TagId, t2: TagId) -> Vec<Document> {
    let mut docs = Vec::new();
    let mut id = 0;
    for tick in 0..120u64 {
        let t1_total: u64 = if tick == 30 || tick == 60 { 100 } else { 40 };
        let t2_total: u64 = 6;
        let both: u64 = if tick >= 90 { 5 } else { 0 };
        let ts = |i: u64| Timestamp::from_hours(tick).plus(i * 100);
        for i in 0..both {
            id += 1;
            docs.push(Document::builder(id, ts(i)).tags([t1, t2]).build());
        }
        for i in 0..t1_total - both {
            id += 1;
            docs.push(Document::builder(id, ts(10 + i)).tags([t1]).build());
        }
        for i in 0..t2_total - both {
            id += 1;
            docs.push(Document::builder(id, ts(200 + i)).tags([t2]).build());
        }
    }
    docs.sort_by_key(|d| (d.timestamp, d.id));
    docs
}

fn main() {
    let interner = TagInterner::new();
    let t1 = interner.intern("t1-popular", TagKind::Hashtag);
    let t2 = interner.intern("t2-niche", TagKind::Hashtag);
    let docs = stream(t1, t2);
    let pair = TagPair::new(t1, t2);
    let spec = TickSpec::hourly();

    // EnBlogue.
    let mut engine = EnBlogueEngine::new(
        EnBlogueConfig::builder()
            .tick_spec(spec)
            .window_ticks(12)
            .seed_count(5)
            .min_seed_count(3)
            .top_k(5)
            .min_pair_support(1)
            .build()
            .unwrap(),
    );
    let snapshots = engine.run_replay(&docs);

    // Baseline, tick-aligned.
    let mut baseline = BurstBaseline::new(BaselineConfig {
        history_ticks: 24,
        window_ticks: 6,
        gamma: 2.5,
        min_support: 5,
        group_jaccard: 0.1,
    });
    let mut baseline_rows: Vec<String> = Vec::new();
    {
        let mut open = Tick(0);
        for doc in &docs {
            let tick = spec.tick_of(doc.timestamp);
            while open < tick {
                let trends = baseline.close_tick(open);
                baseline_rows.push(render_trends(&trends, t1, t2, pair));
                open = open.next();
            }
            baseline.observe_doc(doc);
        }
        let trends = baseline.close_tick(open);
        baseline_rows.push(render_trends(&trends, t1, t2, pair));
    }

    // Per-tick raw series.
    let mut series = vec![(0u64, 0u64, 0u64); 120];
    for doc in &docs {
        let t = spec.tick_of(doc.timestamp).0 as usize;
        if doc.has_tag(t1) {
            series[t].0 += 1;
        }
        if doc.has_tag(t2) {
            series[t].1 += 1;
        }
        if doc.has_tag(t1) && doc.has_tag(t2) {
            series[t].2 += 1;
        }
    }

    // Windowed Jaccard per tick (window = 12 ticks, same as the engine).
    let window = 12usize;
    let windowed_jaccard = |i: usize| -> f64 {
        let lo = i.saturating_sub(window - 1);
        let (mut a, mut b, mut ab) = (0u64, 0u64, 0u64);
        for &(x, y, z) in &series[lo..=i] {
            a += x;
            b += y;
            ab += z;
        }
        let union = a + b - ab;
        if union == 0 {
            0.0
        } else {
            ab as f64 / union as f64
        }
    };

    println!("F1 — Figure 1: interesting shift in correlation of two tags");
    println!("t1 peaks at ticks 30/60 (solo); intersection shift at tick 90\n");
    let table = Table::new(&[6, 8, 8, 8, 10, 12, 10, 28]);
    table.header(&[
        "tick",
        "|D(t1)|",
        "|D(t2)|",
        "|D∩|",
        "jaccard",
        "shift score",
        "rank",
        "baseline trends",
    ]);
    for (i, snap) in snapshots.iter().enumerate() {
        // Print the interesting region sparsely.
        let t = snap.tick.0;
        if !(t % 10 == 9
            || (28..=32).contains(&t)
            || (58..=62).contains(&t)
            || (88..=100).contains(&t))
        {
            continue;
        }
        let (a, b, ab) = series[i];
        table.row(&[
            &format!("{t}"),
            &format!("{a}"),
            &format!("{b}"),
            &format!("{ab}"),
            &f3(windowed_jaccard(i)),
            &snap.score_of(pair).map(f3).unwrap_or_else(|| "-".into()),
            &snap.rank_of(pair).map(|r| format!("#{}", r + 1)).unwrap_or_else(|| "-".into()),
            &baseline_rows[i],
        ]);
    }

    let first_hit = snapshots.iter().find(|s| s.contains_in_top(pair, 5));
    println!();
    match first_hit {
        Some(s) => println!(
            "EnBlogue first ranks the pair at tick {} (event onset: tick 90), rank #{}.",
            s.tick,
            s.rank_of(pair).unwrap() + 1
        ),
        None => println!("EnBlogue MISSED the shift — regression!"),
    }
    let baseline_saw_pair = baseline_rows.iter().skip(88).any(|r| r.contains("PAIR"));
    println!(
        "Burst baseline flagged t1's solo peaks at ticks 30/60: {}; saw the pair shift: {}.",
        baseline_rows[30].contains("t1") || baseline_rows[31].contains("t1"),
        baseline_saw_pair
    );
    let _ = engine; // the engine outlives the loop so pair histories stay inspectable
    println!("\nPaper claim: peaks of the popular tag do not move the overlap; the intersection");
    println!("growth 'can not be given solely by looking at the individual frequencies'. ✓");
}

fn render_trends(
    trends: &[enblogue::baseline::Trend],
    t1: TagId,
    t2: TagId,
    pair: TagPair,
) -> String {
    if trends.is_empty() {
        return "-".into();
    }
    let mut cells: Vec<String> = Vec::new();
    for trend in trends.iter().take(2) {
        let covered = trend.covered_pairs().contains(&pair);
        let label = if covered {
            "PAIR".to_string()
        } else if trend.tags.contains(&t1) {
            "t1".to_string()
        } else if trend.tags.contains(&t2) {
            "t2".to_string()
        } else {
            format!("{} tags", trend.tags.len())
        };
        cells.push(format!("{label}(z={:.1})", trend.score));
    }
    cells.join(" ")
}
