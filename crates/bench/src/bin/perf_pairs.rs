//! Experiment P6 — pair-tracking scaling: state and time vs seed count.
//!
//! Measures how the candidate-pair registry grows with S on a workload
//! with a heavy tag tail, and what eviction keeps live. Demonstrates the
//! O(active pairs) state bound claimed in DESIGN.md.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_pairs`

use enblogue::datagen::twitter::{TweetConfig, TweetStream};
use enblogue::prelude::*;
use enblogue_bench::{timed, Table};

fn main() {
    // A wider hashtag universe than the standard stream, to give the pair
    // registry something to chew on.
    let stream = TweetStream::generate(&TweetConfig {
        seed: 0xBEEF,
        hours: 24,
        tweets_per_minute: 30,
        n_hashtags: 2_000,
        n_terms: 500,
        planted_events: 3,
        sigmod_stunt: false,
    });
    println!("P6 — pair tracking vs seed count ({} tweets, 2000-tag universe)\n", stream.len());

    let table = Table::new(&[8, 14, 14, 14, 16, 12]);
    table.header(&["seeds", "discovered", "evicted", "live at end", "bytes/pair est", "wall (s)"]);
    for seeds in [8usize, 32, 128, 512] {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::minutely())
            .window_ticks(60)
            .seed_count(seeds)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .unwrap();
        let (metrics, secs) = timed(|| {
            let mut engine = EnBlogueEngine::new(config);
            engine.run_replay(&stream.docs);
            engine.metrics()
        });
        // Rough per-pair state: history ring (60 f64) + decay + bookkeeping.
        let bytes_per_pair = 60 * 8 + 64;
        table.row(&[
            &format!("{seeds}"),
            &format!("{}", metrics.pairs_discovered),
            &format!("{}", metrics.pairs_evicted),
            &format!("{}", metrics.pairs_tracked),
            &format!("~{}", bytes_per_pair),
            &format!("{secs:.2}"),
        ]);
    }
    println!("\nDiscovered pairs grow with S, but eviction (no window support) keeps the live");
    println!("set bounded — the \"pairs of tags that contain at least one seed tag\" candidate");
    println!("generation plus lifecycle management from DESIGN.md.");
}
