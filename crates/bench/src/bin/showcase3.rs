//! Experiment SC3 — Show Case 3: personalization.
//!
//! One stream, several users: category preferences and continuous keyword
//! queries produce "completely different or just differently ordered
//! emergent topics". Reports per-user toplists and rank-overlap metrics.
//!
//! Run: `cargo run --release -p enblogue-bench --bin showcase3`

use enblogue::prelude::*;
use enblogue_bench::{daily_config, f2, standard_archive, Table};

fn main() {
    let archive = standard_archive();
    let mut engine = EnBlogueEngine::new(daily_config());
    let snapshots = engine.run_replay(&archive.docs);
    // Pick a snapshot whose ranking spans two distinct categories so the
    // desks have something to disagree on.
    let cat_of = |pair: TagPair| {
        [pair.lo(), pair.hi()]
            .into_iter()
            .find(|&t| archive.interner.kind(t) == Some(TagKind::Category))
    };
    let (snap, cat_a, cat_b) = snapshots
        .iter()
        .rev()
        .filter(|s| s.ranked.len() >= 4)
        .find_map(|s| {
            let cats: Vec<TagId> = s.ranked.iter().filter_map(|&(p, _)| cat_of(p)).collect();
            let first = *cats.first()?;
            let second = cats.iter().copied().find(|&c| c != first)?;
            Some((s, first, second))
        })
        .expect("a tick ranking topics from two categories");
    println!(
        "SC3 — personalization on the ranking of {} ({} topics)\n",
        snap.tick,
        snap.ranked.len()
    );
    let keyword = archive.interner.display(snap.ranked[snap.ranked.len() - 1].0.hi());

    let profiles = [
        ("visitor", UserProfile::new("visitor")),
        ("desk-a", UserProfile::new("desk-a").with_category(cat_a).with_alpha(4.0)),
        ("desk-b", UserProfile::new("desk-b").with_category(cat_b).with_alpha(4.0)),
        (
            "searcher",
            UserProfile::new("searcher").with_keyword(&keyword).with_alpha(8.0).filter_only(),
        ),
    ];

    let views: Vec<(&str, PersonalizedRanking)> =
        profiles.iter().map(|(name, p)| (*name, personalize(snap, p, &archive.interner))).collect();

    for (name, view) in &views {
        println!(
            "{name} (interests: {})",
            match *name {
                "visitor" => "none".to_string(),
                "desk-a" => format!("category `{}`", archive.interner.display(cat_a)),
                "desk-b" => format!("category `{}`", archive.interner.display(cat_b)),
                _ => format!("keyword `{keyword}` (strict)"),
            }
        );
        if view.ranked.is_empty() {
            println!("   (no matching topics)");
        }
        for (rank, &(pair, score)) in view.ranked.iter().take(3).enumerate() {
            println!(
                "   #{} [{} + {}] {:.3}",
                rank + 1,
                archive.interner.display(pair.lo()),
                archive.interner.display(pair.hi()),
                score
            );
        }
        println!();
    }

    // Pairwise overlap@5 matrix.
    println!("pairwise jaccard overlap of top-5:");
    let table = Table::new(&[10, 10, 10, 10, 10]);
    let names: Vec<&str> = views.iter().map(|(n, _)| *n).collect();
    table.header(&["", names[0], names[1], names[2], names[3]]);
    for (name_i, view_i) in &views {
        let cells: Vec<String> =
            views.iter().map(|(_, view_j)| f2(jaccard_at_k(view_i, view_j, 5))).collect();
        table.row(&[name_i, &cells[0], &cells[1], &cells[2], &cells[3]]);
    }
    println!("\n1.00 on the diagonal; desks reorder shared topics; the strict searcher sees");
    println!("a filtered list — 'completely different or just differently ordered'. ✓");
}
