//! Checkpoint/restore performance — snapshot latency and size against the
//! tracked-pair population, plus an end-to-end crash-recovery drill.
//!
//! Three registry sizes are produced by replaying Zipf-skewed streams of
//! growing width; for each, the full engine state is checkpointed and
//! restored `repeats` times (best time kept) and the restored engine is
//! verified to be a perfect clone. The drill then simulates the failover
//! story: run with periodic checkpoints, kill mid-stream, resume from the
//! newest `checkpoint-<tick>.snap`, replay the tail through the parallel
//! ingestion pipeline, and require the recovered snapshot sequence to be
//! byte-identical to an uninterrupted run.
//!
//! Results land in `BENCH_snapshot.json` (schema in docs/BENCHMARKS.md).
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_snapshot`
//! Smoke mode (CI): append `-- --test` for a small workload + 1 repeat.

use enblogue::core::snapshot::latest_checkpoint;
use enblogue::datagen::zipf::Zipf;
use enblogue::prelude::*;
use enblogue_bench::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

struct Workload {
    ticks: u64,
    docs_per_tick: usize,
    tags: usize,
    tags_per_doc: usize,
}

/// Zipf-skewed background chatter — wide enough that the pair registry
/// fills with distinct co-occurrences.
fn generate(w: &Workload, seed: u64) -> Vec<Document> {
    let zipf = Zipf::new(w.tags, 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::with_capacity(w.ticks as usize * w.docs_per_tick);
    let mut id = 0u64;
    for tick in 0..w.ticks {
        for _ in 0..w.docs_per_tick {
            id += 1;
            let mut tags: Vec<TagId> = Vec::with_capacity(w.tags_per_doc);
            let mut guard = 0;
            while tags.len() < w.tags_per_doc && guard < 32 {
                guard += 1;
                let tag = TagId(zipf.sample(&mut rng) as u32);
                if !tags.contains(&tag) {
                    tags.push(tag);
                }
            }
            docs.push(Document::builder(id, Timestamp::from_hours(tick)).tags(tags).build());
        }
    }
    docs
}

fn config(shards: usize) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(6)
        .seed_count(40)
        .min_seed_count(2)
        .min_pair_support(1)
        .top_k(20)
        .max_tracked_pairs(500_000)
        .shards(shards)
        .parallel_close(false)
        .build()
        .unwrap()
}

struct Row {
    name: &'static str,
    tracked_pairs: usize,
    snapshot_bytes: u64,
    write_ms: f64,
    restore_ms: f64,
}

/// One measurement row: replay, then checkpoint + restore `repeats`
/// times, keeping the best wall-clock of each and verifying the restored
/// engine is a perfect clone.
fn measure(name: &'static str, w: &Workload, dir: &Path, repeats: usize) -> Row {
    let docs = generate(w, 0x5EED_0001 + w.docs_per_tick as u64);
    let cfg = config(8);
    let mut engine = EnBlogueEngine::new(cfg.clone());
    engine.run_replay(&docs);
    let path = dir.join(format!("{name}.snap"));

    let mut write_ms = f64::MAX;
    let mut snapshot_bytes = 0u64;
    for _ in 0..repeats {
        let started = Instant::now();
        let stats = engine.checkpoint(&path).expect("checkpoint write");
        write_ms = write_ms.min(started.elapsed().as_secs_f64() * 1e3);
        snapshot_bytes = stats.bytes;
    }

    let mut restore_ms = f64::MAX;
    let mut restored = None;
    for _ in 0..repeats {
        let started = Instant::now();
        restored = Some(EnBlogueEngine::resume(cfg.clone(), &path).expect("restore"));
        restore_ms = restore_ms.min(started.elapsed().as_secs_f64() * 1e3);
    }
    let restored = restored.expect("at least one repeat");
    assert_eq!(
        restored.pipeline().latest_snapshot(),
        engine.pipeline().latest_snapshot(),
        "{name}: the restored engine must be a perfect clone"
    );

    Row {
        name,
        tracked_pairs: engine.metrics().pairs_tracked,
        snapshot_bytes,
        write_ms,
        restore_ms,
    }
}

/// The failover drill: periodic checkpoints, crash mid-stream, resume
/// from the newest checkpoint, tail-replay through the ingestion
/// pipeline, verify byte-identical rankings. Returns the recovered tick
/// count (and panics loudly on any divergence — this is the CI gate).
fn recovery_drill(w: &Workload, dir: &Path) -> usize {
    let docs = generate(w, 0x5EED_C4A5);
    let cfg = config(4);

    let mut uninterrupted = EnBlogueEngine::new(cfg.clone());
    let baseline = uninterrupted.run_replay(&docs);

    // The doomed run: checkpoint every 4 ticks, killed two thirds in.
    let crash_dir = dir.join("recovery");
    let _ = std::fs::remove_dir_all(&crash_dir);
    let doomed_cfg = EnBlogueConfig {
        snapshot: SnapshotConfig::every(4, crash_dir.to_str().expect("utf-8 temp path")),
        ..cfg.clone()
    };
    let crash_tick = Tick(w.ticks * 2 / 3);
    let head = docs.partition_point(|d| doomed_cfg.tick_spec.tick_of(d.timestamp) <= crash_tick);
    let mut doomed = EnBlogueEngine::new(doomed_cfg);
    doomed.run_replay(&docs[..head]);
    assert!(doomed.metrics().snapshots_taken > 0, "the doomed run must have checkpointed");
    drop(doomed); // the "kill": everything in memory is gone

    // Recovery: newest checkpoint + tail replay (parallel ingestion).
    let file = latest_checkpoint(&crash_dir).expect("readable dir").expect("a checkpoint file");
    let mut recovered = EnBlogueEngine::resume(cfg, &file).expect("restore after crash");
    let resumed_ticks = recovered.metrics().ticks_closed as usize;
    let tail_from = docs.partition_point(|d| {
        recovered.config().tick_spec.tick_of(d.timestamp).0 < resumed_ticks as u64
    });
    let ingest = IngestConfig { batch_size: 128, queue_depth: 4, workers: 2 };
    let (tail, _) = recovered.run_replay_ingest(&docs[tail_from..], &ingest);
    assert_eq!(
        tail.as_slice(),
        &baseline[resumed_ticks..],
        "recovered rankings diverged from the uninterrupted run"
    );
    assert_eq!(recovered.pipeline().latest_snapshot(), uninterrupted.pipeline().latest_snapshot());
    let _ = std::fs::remove_dir_all(&crash_dir);
    baseline.len() - resumed_ticks
}

fn write_json(rows: &[Row], recovered_ticks: usize, path: &str) {
    let mut out = String::from("{\n  \"experiment\": \"snapshot\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"tracked_pairs\": {}, \"snapshot_bytes\": {}, \
             \"bytes_per_pair\": {:.1}, \"write_ms\": {:.2}, \"restore_ms\": {:.2}}}{}\n",
            row.name,
            row.tracked_pairs,
            row.snapshot_bytes,
            row.snapshot_bytes as f64 / row.tracked_pairs.max(1) as f64,
            row.write_ms,
            row.restore_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"recovery_replayed_ticks\": {recovered_ticks},\n"));
    out.push_str("  \"recovery_verified\": true\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("\nrows recorded to {path}");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let repeats = if smoke { 1 } else { 5 };
    let dir = std::env::temp_dir().join(format!("enblogue-perf-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let sizes: Vec<(&'static str, Workload)> = if smoke {
        vec![("small", Workload { ticks: 8, docs_per_tick: 300, tags: 400, tags_per_doc: 4 })]
    } else {
        vec![
            ("small", Workload { ticks: 12, docs_per_tick: 2_000, tags: 1_000, tags_per_doc: 4 }),
            ("medium", Workload { ticks: 12, docs_per_tick: 10_000, tags: 2_000, tags_per_doc: 4 }),
            ("large", Workload { ticks: 12, docs_per_tick: 30_000, tags: 4_000, tags_per_doc: 5 }),
        ]
    };
    println!("snapshot/restore latency vs tracked pairs{}\n", if smoke { " [smoke]" } else { "" });

    let table = Table::new(&[8, 10, 12, 10, 10, 10]);
    table.header(&["config", "pairs", "bytes", "B/pair", "write ms", "restore ms"]);
    let mut rows = Vec::new();
    for (name, workload) in &sizes {
        let row = measure(name, workload, &dir, repeats);
        table.row(&[
            row.name,
            &format!("{}", row.tracked_pairs),
            &format!("{}", row.snapshot_bytes),
            &format!("{:.1}", row.snapshot_bytes as f64 / row.tracked_pairs.max(1) as f64),
            &format!("{:.2}", row.write_ms),
            &format!("{:.2}", row.restore_ms),
        ]);
        rows.push(row);
    }

    // The crash-recovery drill doubles as the CI smoke gate: checkpoint,
    // kill, resume, verify byte-identical rankings.
    let drill = &sizes.last().expect("at least one size").1;
    let recovered_ticks = recovery_drill(drill, &dir);
    println!(
        "\ncrash recovery verified: resumed + {recovered_ticks} tail ticks, rankings identical"
    );

    write_json(&rows, recovered_ticks, "BENCH_snapshot.json");
    let _ = std::fs::remove_dir_all(&dir);
}
