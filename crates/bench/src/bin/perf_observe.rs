//! Cost of the observability layer itself: record-path nanoseconds,
//! exporter render times, journal throughput, and the end-to-end close
//! overhead of a live telemetry hub.
//!
//! The telemetry design contract is "cold registration, warm recording":
//! handles resolve names once, the hot path is a relaxed atomic (or one
//! branch when the hub is disabled). This bench prices every warm
//! operation the engine performs per tick —
//!
//! * counter increment, gauge store, histogram record (enabled and
//!   disabled — the disabled figure is what a telemetry-off engine pays);
//! * a full span (clock read + histogram record on drop);
//! * a journal event (ring write under a per-event mutex);
//! * one Prometheus / JSONL render over an engine-shaped registry
//!   (renders run off the hot path, at dump time);
//! * the close-throughput ratio of a telemetry-attached
//!   [`ShardedPairRegistry`] against its bare twin — the same number
//!   `perf_close --smoke` gates at 3%, recorded here for the JSON trail.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_observe`
//! Smoke mode (CI): append `-- --test` for reduced iteration counts.

use enblogue::core::pairs::ShardedPairRegistry;
use enblogue::prelude::*;
use enblogue::stats::predict::PredictorKind;
use enblogue::stats::shift::{ErrorNormalization, ShiftScorer};
use enblogue::telemetry::{EventKind, Histogram, Telemetry};
use enblogue::types::FxHashSet;
use enblogue_bench::Table;
use std::hint::black_box;
use std::time::Instant;

const WINDOW: usize = 6;

/// Nanoseconds per op over `iters` calls of `op` (one timed block; the
/// loop body is kept opaque to the optimizer).
fn ns_per_op(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        op(black_box(i));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Builds a hub shaped like a mid-run engine: the real metric names,
/// populated with enough samples that renders walk realistic state.
fn engine_shaped_hub() -> Telemetry {
    let telemetry = Telemetry::new(1024);
    let registry = telemetry.registry();
    let docs = registry.counter("engine.docs");
    let ticks = registry.counter("engine.ticks");
    registry.gauge("pairs.tracked").set(33_000);
    let mut histograms: Vec<Histogram> = vec![
        registry.histogram("close.score.ns"),
        registry.histogram("close.expiry.ns"),
        registry.histogram("close.rank.ns"),
        registry.histogram("snapshot.write.ns"),
        registry.histogram("ingest.stall.ns"),
    ];
    for stage in ["seed-select", "term-window", "pair-count", "shift-score", "rank-emit"] {
        histograms.push(registry.histogram_labeled("stage.close.ns", "stage", stage));
    }
    for shard in 0..4 {
        histograms.push(registry.histogram_labeled("close.shard.ns", "shard", shard));
    }
    docs.add(1_000_000);
    ticks.add(500);
    for (i, histogram) in histograms.iter().enumerate() {
        for sample in 0..500u64 {
            histogram.record(1_000 + sample * 37 * (i as u64 + 1));
        }
    }
    for tick in 0..600 {
        telemetry.journal().record(EventKind::TickClose, tick, 33_000, 10);
    }
    telemetry
}

/// One close cycle over a stable population, telemetry optionally
/// attached; returns pairs scored per second (ingest excluded from the
/// timer, as in `perf_close`).
fn close_run(live: usize, attach: bool, warmup: u64, measured: u64) -> f64 {
    let s = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
    let seeds: FxHashSet<TagId> = (0..live as u32).map(TagId).collect();
    let mut registry = ShardedPairRegistry::new(1, WINDOW, Timestamp::DAY, 1, live + 1);
    if attach {
        registry.attach_telemetry(&Telemetry::new(1024));
    }
    let mut close_secs = 0.0;
    for tick in 0..warmup + measured {
        let now = Timestamp::from_hours(tick);
        for i in 0..live as u32 {
            if (i as u64 + tick).is_multiple_of(WINDOW as u64 - 1) {
                registry.observe_pair(
                    Tick(tick),
                    TagPair::new(TagId(i), TagId(i + 1_000_000)).packed(),
                );
            }
        }
        let t0 = Instant::now();
        registry.advance_to(Tick(tick));
        registry.discover_seeded(&seeds, Tick(tick), 0, false);
        registry.score_all(Tick(tick), now, &s, false, |pair, ab| {
            ab as f64 / (4.0 + (pair.lo().0 % 7) as f64)
        });
        registry.evict_parallel(Tick(tick), now, false);
        if tick >= warmup {
            close_secs += t0.elapsed().as_secs_f64();
        }
    }
    assert_eq!(registry.len(), live, "population must be stable");
    (live as u64 * measured) as f64 / close_secs.max(1e-9)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let iters: u64 = if smoke { 200_000 } else { 5_000_000 };
    let renders: u32 = if smoke { 50 } else { 500 };
    println!(
        "observability cost sweep — {iters} record ops per row{}\n",
        if smoke { " [smoke]" } else { "" }
    );

    let telemetry = Telemetry::new(1024);
    let registry = telemetry.registry();
    let counter = registry.counter("bench.counter");
    let gauge = registry.gauge("bench.gauge");
    let histogram = registry.histogram("bench.histogram.ns");
    let disabled = Histogram::disabled();
    let journal_hub = Telemetry::new(1024);

    let table = Table::new(&[26, 12]);
    table.header(&["operation", "ns/op"]);
    let mut ops: Vec<(&'static str, f64)> = Vec::new();
    ops.push(("counter.inc", ns_per_op(iters, |_| counter.inc())));
    ops.push(("gauge.set", ns_per_op(iters, |i| gauge.set(i as i64))));
    ops.push(("histogram.record", ns_per_op(iters, |i| histogram.record(i * 17 + 1))));
    ops.push(("histogram.record(off)", ns_per_op(iters, |i| disabled.record(i * 17 + 1))));
    ops.push(("span(clock+record)", {
        ns_per_op(iters / 10, |_| {
            let span = histogram.start_span();
            span.finish();
        })
    }));
    ops.push(("journal.record", {
        let journal = journal_hub.journal();
        ns_per_op(iters, |i| journal.record(EventKind::TickClose, i, i, 0))
    }));
    for &(name, ns) in &ops {
        table.row(&[name, &format!("{ns:.1}")]);
    }
    let journal_events_per_sec =
        1e9 / ops.iter().find(|(n, _)| *n == "journal.record").expect("journal row").1;

    // Exporter renders over an engine-shaped registry.
    let hub = engine_shaped_hub();
    let prom_us = ns_per_op(renders as u64, |_| {
        black_box(hub.prometheus_text().len());
    }) / 1_000.0;
    let jsonl_us = ns_per_op(renders as u64, |_| {
        black_box(hub.metrics_jsonl().len());
    }) / 1_000.0;
    let prom_bytes = hub.prometheus_text().len();
    println!(
        "\nprometheus render: {prom_us:.1} µs ({prom_bytes} bytes), jsonl render: {jsonl_us:.1} µs"
    );

    // End-to-end close overhead, interleaved best-of-N both sides.
    let live = if smoke { 2_000 } else { 20_000 };
    let (warmup, measured) = (WINDOW as u64, if smoke { 4 } else { 12 });
    let repeats = if smoke { 3 } else { 5 };
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..repeats {
        best_off = best_off.max(close_run(live, false, warmup, measured));
        best_on = best_on.max(close_run(live, true, warmup, measured));
    }
    let overhead_ratio = best_on / best_off.max(1e-9);
    println!(
        "close throughput at {live} pairs: off {best_off:.0} pairs/s, on {best_on:.0} pairs/s \
         ({overhead_ratio:.3}x)"
    );

    let mut out = String::from("{\n  \"experiment\": \"observability_cost\",\n");
    out.push_str(&format!(
        "  \"machine_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"record_iters\": {iters},\n"));
    out.push_str("  \"record_ns_per_op\": {\n");
    for (i, &(name, ns)) in ops.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {ns:.1}{}\n",
            if i + 1 == ops.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"journal_events_per_sec\": {journal_events_per_sec:.0},\n"));
    out.push_str(&format!("  \"prometheus_render_us\": {prom_us:.1},\n"));
    out.push_str(&format!("  \"prometheus_render_bytes\": {prom_bytes},\n"));
    out.push_str(&format!("  \"jsonl_render_us\": {jsonl_us:.1},\n"));
    out.push_str(&format!("  \"close_pairs\": {live},\n"));
    out.push_str(&format!("  \"close_pairs_per_sec_telemetry_off\": {best_off:.0},\n"));
    out.push_str(&format!("  \"close_pairs_per_sec_telemetry_on\": {best_on:.0},\n"));
    out.push_str(&format!("  \"close_on_off_ratio\": {overhead_ratio:.3}\n}}\n"));
    if let Err(err) = std::fs::write("BENCH_observe.json", out) {
        eprintln!("warning: could not write BENCH_observe.json: {err}");
    } else {
        println!("\nrows recorded to BENCH_observe.json");
    }

    if smoke {
        // Sanity gates, deliberately loose (the hard 3% close gate lives
        // in perf_close --smoke where both sides share one process):
        // the disabled path must be far cheaper than the enabled one,
        // and exports must render the full engine-shaped metric set.
        let on = ops.iter().find(|(n, _)| *n == "histogram.record").expect("row").1;
        let off = ops.iter().find(|(n, _)| *n == "histogram.record(off)").expect("row").1;
        assert!(
            off <= on,
            "disabled record ({off:.1}ns) must not cost more than enabled ({on:.1}ns)"
        );
        assert!(hub.prometheus_text().contains("# TYPE enblogue_close_shard_ns summary"));
        assert!(hub.metrics_jsonl().lines().count() >= 14, "all series render");
        assert!(overhead_ratio > 0.5, "telemetry-on close collapsed ({overhead_ratio:.3}x)");
        println!("smoke: disabled path cheap, exports complete, overhead sane");
    }
}
