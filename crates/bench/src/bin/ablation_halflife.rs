//! Experiment P8 — half-life sensitivity.
//!
//! §3(iii) dampens past prediction errors "using an exponential decline
//! factor with a half life of approximately 2 days". This sweep shows what
//! the choice buys: short half-lives drop topics quickly (responsive,
//! forgetful), long ones keep them ranked (persistent, stale).
//!
//! Run: `cargo run --release -p enblogue-bench --bin ablation_halflife`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{f2, small_archive, Table};

fn main() {
    let archive = small_archive(0x4A1F);
    println!("P8 — half-life sensitivity ({} docs, 5 events)\n", archive.len());

    let table = Table::new(&[12, 10, 14, 14, 18]);
    table.header(&["half-life", "recall", "precision@10", "latency (d)", "mean dwell (d)"]);
    for (label, half_life) in [
        ("6h", 6 * Timestamp::HOUR),
        ("1d", Timestamp::DAY),
        ("2d (paper)", 2 * Timestamp::DAY),
        ("4d", 4 * Timestamp::DAY),
        ("8d", 8 * Timestamp::DAY),
    ] {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(7)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .half_life_ms(half_life)
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(config);
        let snaps = engine.run_replay(&archive.docs);
        let report = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);

        // Dwell: how many days a truth pair stays in the top-10 after its
        // first appearance (persistence of the decayed-max score).
        let mut dwell_total = 0.0;
        let mut dwell_n = 0;
        for event in archive.script.events() {
            let pair = event.pair();
            let days: Vec<u64> =
                snaps.iter().filter(|s| s.contains_in_top(pair, 10)).map(|s| s.tick.0).collect();
            if let (Some(&first), Some(&last)) = (days.first(), days.last()) {
                dwell_total += (last - first + 1) as f64;
                dwell_n += 1;
            }
        }
        let dwell = if dwell_n == 0 { 0.0 } else { dwell_total / dwell_n as f64 };
        table.row(&[
            label,
            &f2(report.recall),
            &f2(report.precision_at_k),
            &f2(report.mean_latency_ms / Timestamp::DAY as f64),
            &f2(dwell),
        ]);
    }
    println!("\nRecall/latency barely move (detection is driven by the instantaneous error);");
    println!("what the half-life controls is how long a detected topic *stays* ranked —");
    println!("dwell grows with the half-life. ≈2 days keeps topics visible for the lifetime");
    println!("of a typical news story without letting stale topics crowd out new ones.");
}
