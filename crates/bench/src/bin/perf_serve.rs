//! Cost of the serving tier: publish overhead at tick close, and
//! concurrent read throughput under live ingest.
//!
//! Two contracts are priced here:
//!
//! * **Publish is nearly free.** At the default `PublishDetail::Ranked`
//!   level a publish exports O(top-k) state into a pooled, preallocated
//!   view, so a serve-attached close must stay within a few percent of
//!   the bare close. Measured per-tick paired A/B (both closes
//!   back-to-back each tick, order alternating), min ratio across
//!   repeats; the smoke gate pins the ratio at ≤ 1.03.
//! * **Reads never block a close (and vice versa).** Reader threads
//!   hammer personalized queries through `Subscription`s over a shared
//!   `QueryHandle` while the main thread keeps ingesting and closing
//!   ticks. The read path acquires no locks, so closes keep landing
//!   under any reader population; reported as reads/sec plus the
//!   ingest-rate degradation at 1, 8, 64 and 1024 concurrent
//!   subscriptions (multiplexed over at most 8 OS threads).
//!
//! Results land in `BENCH_serve.json`.
//!
//! Run: `cargo run --release -p enblogue-bench --bin perf_serve`
//! Smoke mode (CI): append `-- --test` for short windows + gates.
//!
//! Caveat for the absolute numbers: on a single-hardware-thread runner
//! the reader threads and the ingest thread time-share one core, so
//! "degradation" largely measures the scheduler, not the serving tier;
//! the lock-freedom gates (closes progress, epochs monotonic, reads
//! progress) are what CI enforces.

use enblogue::prelude::*;
use enblogue::serve::{QueryHandle, ServeConfig};
use enblogue_bench::Table;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

const WINDOW: usize = 6;
const TAG_PAIRS: usize = 1024;

fn build_interner() -> (TagInterner, Vec<TagId>) {
    let interner = TagInterner::new();
    let tags = (0..TAG_PAIRS * 2)
        .map(|i| interner.intern(&format!("tag{i:04}"), TagKind::Hashtag))
        .collect();
    (interner, tags)
}

fn engine_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::hourly())
        .window_ticks(WINDOW)
        .seed_count(64)
        .top_k(10)
        .build()
        .unwrap()
}

/// One tick's documents: every pair observed 1–3 times (rotating), so
/// seeds stay above the floor and correlations keep shifting.
fn tick_docs(tags: &[TagId], t: u64, id: &mut u64) -> Vec<Document> {
    let mut docs = Vec::with_capacity(TAG_PAIRS * 2);
    for a in 0..TAG_PAIRS {
        for _ in 0..1 + (a as u64 + t) % 3 {
            *id += 1;
            docs.push(
                Document::builder(*id, Timestamp::from_hours(t))
                    .tag(tags[a])
                    .tag(tags[a + TAG_PAIRS])
                    .build(),
            );
        }
    }
    docs
}

/// Paired per-tick A/B of the publish cost: one bare engine and one
/// serve-attached engine replay the identical workload side by side,
/// and every tick both closes run back-to-back with alternating order —
/// the same noise-immunity idiom as `perf_close`'s telemetry gate, so
/// machine drift hits both sides of the ratio alike. Returns summed
/// (bare, serve) close seconds over the measured window (ingest
/// excluded; the serve close includes the publish).
fn paired_close_run(
    interner: &TagInterner,
    tags: &[TagId],
    warmup: u64,
    measured: u64,
) -> (f64, f64) {
    let mut bare = EnBlogueEngine::new(engine_config());
    let mut serve = EnBlogueEngine::new(engine_config());
    let handle = QueryHandle::attach(&mut serve, interner.clone(), ServeConfig::default());
    let (mut id_bare, mut id_serve) = (0u64, 0u64);
    let (mut bare_secs, mut serve_secs) = (0.0f64, 0.0f64);
    for t in 0..warmup + measured {
        bare.process_docs(&tick_docs(tags, t, &mut id_bare));
        serve.process_docs(&tick_docs(tags, t, &mut id_serve));
        let (mut first_secs, mut second_secs) = (0.0, 0.0);
        let (first, second): (&mut EnBlogueEngine, &mut EnBlogueEngine) =
            if t % 2 == 0 { (&mut bare, &mut serve) } else { (&mut serve, &mut bare) };
        let t0 = Instant::now();
        let snap_first = first.close_tick(Tick(t));
        first_secs += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let snap_second = second.close_tick(Tick(t));
        second_secs += t0.elapsed().as_secs_f64();
        let (b, s) = if t % 2 == 0 { (first_secs, second_secs) } else { (second_secs, first_secs) };
        if t >= warmup {
            bare_secs += b;
            serve_secs += s;
        }
        if t + 1 == warmup + measured {
            assert!(!snap_first.ranked.is_empty(), "the workload must rank pairs");
            assert_eq!(snap_first, snap_second, "the publish stage must not change rankings");
        }
    }
    assert_eq!(handle.epoch(), warmup + measured, "one publish per close");
    (bare_secs, serve_secs)
}

struct ReaderPhase {
    subscriptions: usize,
    threads: usize,
    reads_per_sec: f64,
    ingest_ticks_per_sec: f64,
}

/// Live-ingest phase: the main thread ingests and closes ticks for
/// `window_secs` while `subscriptions` personalized subscriptions
/// (spread over at most 8 threads) read as fast as they can.
fn reader_phase(
    interner: &TagInterner,
    tags: &[TagId],
    subscriptions: usize,
    window_secs: f64,
) -> ReaderPhase {
    let mut engine = EnBlogueEngine::new(engine_config());
    let handle = QueryHandle::attach(&mut engine, interner.clone(), ServeConfig::default());
    let mut id = 0u64;
    // Warm the window (and publish a first view) before the clock runs.
    for t in 0..WINDOW as u64 * 2 {
        engine.process_docs(&tick_docs(tags, t, &mut id));
        engine.close_tick(Tick(t));
    }

    let threads = subscriptions.clamp(1, 8);
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..threads)
        .map(|thread| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            let per_thread =
                subscriptions / threads + usize::from(thread < subscriptions % threads);
            std::thread::spawn(move || {
                let mut subs: Vec<_> = (0..per_thread)
                    .map(|i| {
                        let user = thread * 1000 + i;
                        handle
                            .subscribe(
                                UserProfile::new(format!("user{user}"))
                                    .try_with_weighted_keyword("tag", 2.0)
                                    .unwrap()
                                    .try_with_alpha(1.0 + (user % 5) as f64 * 0.5)
                                    .unwrap(),
                            )
                            .with_top_k(10)
                    })
                    .collect();
                let mut local = 0u64;
                while !stop.load(SeqCst) {
                    for sub in subs.iter_mut() {
                        let before = sub.last_epoch();
                        if let Some((epoch, _)) = sub.poll() {
                            assert!(epoch > before, "epochs never run backwards");
                        }
                        let ranking = sub.current().expect("a view is always published");
                        assert!(ranking.ranked.len() <= 10);
                        local += 2; // one poll + one current per sweep
                    }
                    reads.fetch_add(local, SeqCst);
                    local = 0;
                }
            })
        })
        .collect();

    // Ingest under fire.
    let t0 = Instant::now();
    let mut t = WINDOW as u64 * 2;
    let mut closes = 0u64;
    while t0.elapsed().as_secs_f64() < window_secs {
        engine.process_docs(&tick_docs(tags, t, &mut id));
        engine.close_tick(Tick(t));
        t += 1;
        closes += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, SeqCst);
    for reader in readers {
        reader.join().unwrap();
    }
    assert!(closes > 0, "ingest must progress under readers (reads never block a close)");
    assert_eq!(handle.epoch(), t, "every close under fire published");
    ReaderPhase {
        subscriptions,
        threads,
        reads_per_sec: reads.load(SeqCst) as f64 / elapsed,
        ingest_ticks_per_sec: closes as f64 / elapsed,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (interner, tags) = build_interner();
    println!(
        "serving-tier cost sweep — {TAG_PAIRS} pairs, top-10 rankings{}\n",
        if smoke { " [smoke]" } else { "" }
    );

    // Publish overhead: per-tick paired A/B (both closes back-to-back
    // each tick, order alternating), min ratio across repeats — a
    // scheduler preemption can only land on one side of one tick and
    // *inflate* a round's ratio, so the cleanest round is the
    // measurement (the same min-of-rounds idiom as `perf_close`'s
    // telemetry gate).
    let (warmup, measured) = (WINDOW as u64 * 2, if smoke { 16 } else { 32 });
    let repeats = if smoke { 5 } else { 7 };
    let mut best = (f64::MAX, 0.0f64, 0.0f64);
    for _ in 0..repeats {
        let (b, s) = paired_close_run(&interner, &tags, warmup, measured);
        let ratio = s / b.max(1e-12);
        if ratio < best.0 {
            best = (ratio, b, s);
        }
    }
    let (publish_ratio, bare_secs, serve_secs) = best;
    let (mean_bare, mean_serve) = (bare_secs / measured as f64, serve_secs / measured as f64);
    println!(
        "close: bare {:.1} µs, serve-attached {:.1} µs ({publish_ratio:.3}x)",
        mean_bare * 1e6,
        mean_serve * 1e6
    );

    // Reader throughput under live ingest.
    let window_secs = if smoke { 0.25 } else { 1.5 };
    let baseline = reader_phase(&interner, &tags, 0, window_secs);
    let phases: Vec<ReaderPhase> = [1usize, 8, 64, 1024]
        .iter()
        .map(|&s| reader_phase(&interner, &tags, s, window_secs))
        .collect();

    let table = Table::new(&[14, 9, 14, 16, 13]);
    table.header(&["subscriptions", "threads", "reads/s", "ingest ticks/s", "ingest ratio"]);
    table.row(&[
        "0 (baseline)",
        "0",
        "-",
        &format!("{:.1}", baseline.ingest_ticks_per_sec),
        "1.000",
    ]);
    for phase in &phases {
        table.row(&[
            &phase.subscriptions.to_string(),
            &phase.threads.to_string(),
            &format!("{:.0}", phase.reads_per_sec),
            &format!("{:.1}", phase.ingest_ticks_per_sec),
            &format!("{:.3}", phase.ingest_ticks_per_sec / baseline.ingest_ticks_per_sec.max(1e-9)),
        ]);
    }

    let mut out = String::from("{\n  \"experiment\": \"serving_tier\",\n");
    out.push_str(&format!(
        "  \"machine_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!("  \"pairs\": {TAG_PAIRS},\n"));
    out.push_str(&format!("  \"close_bare_us\": {:.1},\n", mean_bare * 1e6));
    out.push_str(&format!("  \"close_serve_us\": {:.1},\n", mean_serve * 1e6));
    out.push_str(&format!("  \"publish_close_ratio\": {publish_ratio:.3},\n"));
    out.push_str(&format!(
        "  \"ingest_ticks_per_sec_baseline\": {:.1},\n",
        baseline.ingest_ticks_per_sec
    ));
    out.push_str("  \"reader_phases\": [\n");
    for (i, phase) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"subscriptions\": {}, \"reader_threads\": {}, \"reads_per_sec\": {:.0}, \
             \"ingest_ticks_per_sec\": {:.1}, \"ingest_degradation\": {:.3}}}{}\n",
            phase.subscriptions,
            phase.threads,
            phase.reads_per_sec,
            phase.ingest_ticks_per_sec,
            phase.ingest_ticks_per_sec / baseline.ingest_ticks_per_sec.max(1e-9),
            if i + 1 == phases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write("BENCH_serve.json", out) {
        eprintln!("warning: could not write BENCH_serve.json: {err}");
    } else {
        println!("\nrows recorded to BENCH_serve.json");
    }

    if smoke {
        // The CI gates. Reads-never-block-a-close and
        // every-close-publishes are asserted inside `reader_phase`
        // itself; here: the publish must stay within 3% of the bare
        // close, and every reader population must have made progress.
        assert!(
            publish_ratio <= 1.03,
            "publish overhead {publish_ratio:.3}x exceeds the 3% close budget"
        );
        for phase in &phases {
            assert!(
                phase.reads_per_sec > 0.0,
                "{} subscriptions starved entirely",
                phase.subscriptions
            );
        }
        println!("smoke: publish within budget, closes progressed under every reader population");
    }
}
