//! Experiment SC2 — Show Case 2: live data and the SIGMOD-Athens stunt.
//!
//! Replays the synthetic tweet stream (time-lapse over a sliding window),
//! tracks the rank trajectory of every planted topic, and verifies the
//! paper's stunt: "we may be able to see a topic regarding SIGMOD and
//! Athens in a highly ranked position".
//!
//! Run: `cargo run --release -p enblogue-bench --bin showcase2`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{f2, rate, standard_tweets, timed, Table};

fn main() {
    let stream = standard_tweets();
    println!(
        "SC2 — live tweet stream: {} tweets over 48h, {} planted events (+ stunt)\n",
        stream.len(),
        stream.script.len() - 1
    );

    let config = EnBlogueConfig::builder()
        .tick_spec(TickSpec::new(30 * Timestamp::MINUTE))
        .window_ticks(24)
        .seed_count(40)
        .min_seed_count(5)
        .top_k(10)
        .build()
        .unwrap();
    let (snapshots, secs) = timed(|| {
        let mut engine = EnBlogueEngine::new(config);
        engine.run_replay(&stream.docs)
    });
    println!(
        "replayed at {} ({} half-hour ticks)\n",
        rate(stream.len() as u64, secs),
        snapshots.len()
    );

    // Per-event outcome table.
    let report = evaluate(&snapshots, &stream.script, 10, 2 * Timestamp::HOUR);
    let table = Table::new(&[16, 26, 10, 12, 12]);
    table.header(&["event", "pair", "start", "peak rank", "latency"]);
    for (event, outcome) in stream.script.events().iter().zip(&report.outcomes) {
        table.row(&[
            &event.name,
            &format!(
                "{} + {}",
                stream.interner.display(event.tag_a),
                stream.interner.display(event.tag_b)
            ),
            &format!("h{}", event.start.as_millis() / Timestamp::HOUR),
            &outcome.best_rank.map_or("miss".into(), |r| format!("#{}", r + 1)),
            &outcome
                .latency_ms
                .map_or("-".into(), |ms| format!("{:.1}h", ms as f64 / Timestamp::HOUR as f64)),
        ]);
    }
    println!("\nrecall {}   precision@10 {}\n", f2(report.recall), f2(report.precision_at_k));

    // The stunt's rank trajectory — the demo's time-lapse view.
    let (sigmod, athens) = stream.stunt_pair.expect("stunt enabled");
    let pair = TagPair::new(sigmod, athens);
    println!("rank trajectory of [#sigmod + #athens] (stunt starts at h24):");
    for snap in snapshots.iter().filter(|s| s.tick.0 % 4 == 0) {
        let hour = snap.time.as_millis() / Timestamp::HOUR;
        match snap.rank_of(pair) {
            Some(r) => println!("  h{hour:<3} #{:<2} {}", r + 1, "■".repeat(10 - r.min(9))),
            None => println!("  h{hour:<3} -"),
        }
    }
    let best = snapshots.iter().filter_map(|s| s.rank_of(pair)).min();
    println!(
        "\nstunt best rank: {} — paper's stunt {}",
        best.map_or("unranked".into(), |r| format!("#{}", r + 1)),
        if best.is_some_and(|r| r < 3) { "reproduced ✓" } else { "NOT reproduced ✗" }
    );
}
