//! Experiment SC1 — Show Case 1: revisiting historic events.
//!
//! Replays the synthetic NYT-style archive and reports, per scripted
//! historic event, whether/when/where it ranked, plus aggregate quality —
//! the quantitative version of letting demo visitors "judge whether the
//! rankings would be satisfactory". Also reports how the ranking changes
//! with different user-chosen time ranges (window lengths).
//!
//! Run: `cargo run --release -p enblogue-bench --bin showcase1`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{daily_config, f2, standard_archive, timed, Table};

fn main() {
    let archive = standard_archive();
    println!(
        "SC1 — historic events on an NYT-style archive ({} docs, {} days, {} events)\n",
        archive.len(),
        90,
        archive.script.len()
    );

    let ((snapshots, metrics), secs) = timed(|| {
        let mut engine = EnBlogueEngine::new(daily_config());
        let snaps = engine.run_replay(&archive.docs);
        (snaps, engine.metrics())
    });

    let report = evaluate(&snapshots, &archive.script, 10, 2 * Timestamp::DAY);

    let table = Table::new(&[14, 30, 10, 10, 12, 10]);
    table.header(&["event", "pair", "shape", "start", "peak rank", "latency"]);
    for (event, outcome) in archive.script.events().iter().zip(&report.outcomes) {
        table.row(&[
            &event.name,
            &format!(
                "{} + {}",
                archive.interner.display(event.tag_a),
                archive.interner.display(event.tag_b)
            ),
            event.shape.name(),
            &format!("d{}", event.start.as_millis() / Timestamp::DAY),
            &outcome.best_rank.map_or("miss".into(), |r| format!("#{}", r + 1)),
            &outcome
                .latency_ms
                .map_or("-".into(), |ms| format!("{:.1}d", ms as f64 / Timestamp::DAY as f64)),
        ]);
    }
    println!();
    println!("recall            {}", f2(report.recall));
    println!("precision@10      {}", f2(report.precision_at_k));
    println!("mean latency      {} days", f2(report.mean_latency_ms / Timestamp::DAY as f64));
    println!(
        "replay            {} docs in {:.2}s ({} docs/s), {} pairs discovered, {} tracked",
        metrics.docs_processed,
        secs,
        (metrics.docs_processed as f64 / secs) as u64,
        metrics.pairs_discovered,
        metrics.pairs_tracked
    );

    // "Users can specify their own time ranges and see how the ranking
    // changes with different time periods": sweep the window length.
    println!("\nranking sensitivity to the user-chosen time range (window length):");
    let table = Table::new(&[16, 10, 14, 14]);
    table.header(&["window", "recall", "precision@10", "latency (d)"]);
    for window_days in [3usize, 7, 14, 21] {
        let config = EnBlogueConfig::builder()
            .tick_spec(TickSpec::daily())
            .window_ticks(window_days)
            .seed_count(30)
            .min_seed_count(3)
            .top_k(10)
            .build()
            .unwrap();
        let mut engine = EnBlogueEngine::new(config);
        let snaps = engine.run_replay(&archive.docs);
        let r = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);
        table.row(&[
            &format!("{window_days} days"),
            &f2(r.recall),
            &f2(r.precision_at_k),
            &f2(r.mean_latency_ms / Timestamp::DAY as f64),
        ]);
    }
    println!("\nShort windows react faster but see noisier correlations; long windows smooth");
    println!("the series and delay detection — the trade-off the demo exposes interactively.");
}
