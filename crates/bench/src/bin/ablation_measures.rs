//! Experiment P9 — correlation-measure ablation.
//!
//! §3(ii): "There are multiple ways how to calculate a correlation measure
//! that reflects some notion of interestingness", including
//! information-theoretic measures over term distributions. This sweep
//! compares all six set-overlap measures plus the Jensen–Shannon
//! term-distribution variant on the standard event benchmark.
//!
//! Run: `cargo run --release -p enblogue-bench --bin ablation_measures`

use enblogue::datagen::eval::evaluate;
use enblogue::prelude::*;
use enblogue_bench::{f2, small_archive, timed, Table};

fn main() {
    println!("P9 — correlation-measure ablation (2 archives × 5 events)\n");
    let archives: Vec<_> = [0xAAu64, 0xBB].iter().map(|&s| small_archive(s)).collect();

    let mut kinds: Vec<MeasureKind> =
        CorrelationMeasure::ALL.iter().map(|&m| MeasureKind::Set(m)).collect();
    kinds.push(MeasureKind::JsDivergence);

    let table = Table::new(&[14, 10, 14, 14, 10]);
    table.header(&["measure", "recall", "precision@10", "latency (d)", "wall (s)"]);
    for kind in kinds {
        let ((recall, precision, latency), secs) = timed(|| {
            let mut recalls = 0.0;
            let mut precisions = 0.0;
            let mut latencies = 0.0;
            for archive in &archives {
                let config = EnBlogueConfig::builder()
                    .tick_spec(TickSpec::daily())
                    .window_ticks(7)
                    .seed_count(30)
                    .min_seed_count(3)
                    .top_k(10)
                    .min_pair_support(3)
                    .measure(kind)
                    .build()
                    .unwrap();
                let mut engine = EnBlogueEngine::new(config);
                let snaps = engine.run_replay(&archive.docs);
                let report = evaluate(&snaps, &archive.script, 10, 2 * Timestamp::DAY);
                recalls += report.recall;
                precisions += report.precision_at_k;
                latencies += report.mean_latency_ms / Timestamp::DAY as f64;
            }
            let n = archives.len() as f64;
            (recalls / n, precisions / n, latencies / n)
        });
        table.row(&[kind.name(), &f2(recall), &f2(precision), &f2(latency), &format!("{secs:.2}")]);
    }
    println!("\njaccard/dice/cosine/conditional are interchangeable on clean pair events (all");
    println!("monotone in the same counts, denominators dominated by the popular side); npmi");
    println!("is slightly conservative. overlap degrades badly: containment of a *rare* tag");
    println!("saturates at 1.0, so coincidence pairs flood the ranking — the reason Jaccard");
    println!("is the default. The JS-divergence variant detects only *language convergence*,");
    println!("a much weaker echo of these tag-level events, at ~100x the runtime — the");
    println!("\"more complex case\" the paper reserves for term-distribution inputs.");
}
