//! Shared harness utilities for the EnBlogue experiment suite.
//!
//! Every experiment in `EXPERIMENTS.md` (F1, SC1–SC3, P1–P9) is a binary
//! in `src/bin/` built from the helpers here: standard workloads, the
//! baseline-to-snapshot adapter, wall-clock measurement and fixed-width
//! table rendering, so the printed rows can be pasted into the report
//! verbatim.

use enblogue::baseline::burst::{BaselineConfig, BurstBaseline};
use enblogue::datagen::nyt::{NytArchive, NytConfig};
use enblogue::datagen::twitter::{TweetConfig, TweetStream};
use enblogue::prelude::*;
use std::time::Instant;

/// The standard Show-Case-1 archive used across experiments (fixed seed).
pub fn standard_archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 0xE_B106,
        days: 90,
        docs_per_day: 150,
        n_categories: 20,
        n_descriptors: 160,
        n_entities: 120,
        n_terms: 500,
        historic_events: 6,
    })
}

/// A smaller archive for sweeps that run many configurations.
pub fn small_archive(seed: u64) -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed,
        days: 60,
        docs_per_day: 120,
        n_categories: 20,
        n_descriptors: 150,
        n_entities: 80,
        n_terms: 400,
        historic_events: 5,
    })
}

/// The standard Show-Case-2 tweet stream (fixed seed, stunt enabled).
pub fn standard_tweets() -> TweetStream {
    TweetStream::generate(&TweetConfig {
        seed: 0x51_60_0d,
        hours: 48,
        tweets_per_minute: 15,
        n_hashtags: 400,
        n_terms: 800,
        planted_events: 3,
        sigmod_stunt: true,
    })
}

/// The engine configuration used for daily-tick archive experiments.
pub fn daily_config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(30)
        .min_seed_count(3)
        .top_k(10)
        .min_pair_support(3)
        .build()
        .expect("valid daily config")
}

/// Runs the TwitterMonitor-style baseline over `docs` and converts its
/// trends into ranking snapshots comparable with EnBlogue's.
pub fn baseline_snapshots(
    docs: &[Document],
    tick_spec: TickSpec,
    config: BaselineConfig,
    k: usize,
) -> Vec<RankingSnapshot> {
    let mut baseline = BurstBaseline::new(config);
    let mut snapshots = Vec::new();
    let mut open = Tick(0);
    let close = |baseline: &mut BurstBaseline, tick: Tick, snapshots: &mut Vec<RankingSnapshot>| {
        let trends = baseline.close_tick(tick);
        let mut ranked: Vec<(TagPair, f64)> = Vec::new();
        for trend in trends {
            for pair in trend.covered_pairs() {
                ranked.push((pair, trend.score));
            }
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        ranked.truncate(k);
        snapshots.push(RankingSnapshot { tick, time: tick_spec.end_of(tick), ranked });
    };
    for doc in docs {
        let tick = tick_spec.tick_of(doc.timestamp);
        while open < tick {
            close(&mut baseline, open, &mut snapshots);
            open = open.next();
        }
        baseline.observe_doc(doc);
    }
    close(&mut baseline, open, &mut snapshots);
    snapshots
}

/// Times `f`, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// A table whose columns have the given widths.
    pub fn new(widths: &[usize]) -> Self {
        Table { widths: widths.to_vec() }
    }

    /// Prints the header row followed by a rule.
    pub fn header(&self, cells: &[&str]) {
        self.row(cells);
        println!("{}", "-".repeat(self.widths.iter().sum::<usize>() + 2 * self.widths.len()));
    }

    /// Prints one row (first column left-aligned, rest right-aligned).
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (i, (cell, width)) in cells.iter().zip(&self.widths).enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<width$}  "));
            } else {
                line.push_str(&format!("{cell:>width$}  "));
            }
        }
        println!("{}", line.trim_end());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a rate (per second) with a unit suffix.
pub fn rate(count: u64, seconds: f64) -> String {
    let r = count as f64 / seconds.max(1e-9);
    if r >= 1e6 {
        format!("{:.2}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k/s", r / 1e3)
    } else {
        format!("{r:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_adapter_produces_tick_aligned_snapshots() {
        let archive = small_archive(1);
        let snaps =
            baseline_snapshots(&archive.docs, TickSpec::daily(), BaselineConfig::default(), 10);
        assert_eq!(snaps.len(), 60);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.tick, Tick(i as u64));
            assert!(s.ranked.len() <= 10);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(0.12345), "0.12");
        assert_eq!(rate(1000, 1.0), "1.0k/s");
        assert_eq!(rate(2_000_000, 1.0), "2.00M/s");
        assert_eq!(rate(500, 1.0), "500/s");
    }

    #[test]
    fn timed_measures_something() {
        let (value, secs) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
