//! Criterion micro-benchmarks for the window-crate synopses (supporting
//! experiment P5): exact counters vs Count-Min vs Space-Saving.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use enblogue::types::{TagId, Tick};
use enblogue::window::{CountMinSketch, ExponentialHistogram, SpaceSaving, WindowedCounter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn zipfish_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            // Crude Zipf-ish skew over 10k keys.
            ((1.0 / (r + 0.001) - 1.0) as u32) % 10_000
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let keys = zipfish_keys(100_000, 7);
    let mut group = c.benchmark_group("sketch_ingest_100k");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.sample_size(20);

    group.bench_function("windowed_counter_exact", |b| {
        b.iter(|| {
            let mut counter: WindowedCounter<TagId> = WindowedCounter::new(24);
            for (i, &k) in keys.iter().enumerate() {
                counter.increment(Tick((i / 4_000) as u64), TagId(k));
            }
            black_box(counter.distinct_keys())
        });
    });
    group.bench_function("count_min_1024x4", |b| {
        b.iter(|| {
            let mut cms = CountMinSketch::new(1024, 4);
            for &k in &keys {
                cms.increment(&k);
            }
            black_box(cms.total())
        });
    });
    group.bench_function("space_saving_256", |b| {
        b.iter(|| {
            let mut ss: SpaceSaving<u32> = SpaceSaving::new(256);
            for &k in &keys {
                ss.increment(k);
            }
            black_box(ss.len())
        });
    });
    group.bench_function("dgim_window_10k", |b| {
        b.iter(|| {
            let mut eh = ExponentialHistogram::new(10_000, 4);
            for i in 0..keys.len() as u64 {
                eh.record(i);
            }
            black_box(eh.bucket_count())
        });
    });
    group.finish();
}

fn bench_top_n(c: &mut Criterion) {
    let keys = zipfish_keys(100_000, 9);
    let mut counter: WindowedCounter<TagId> = WindowedCounter::new(24);
    let mut ss: SpaceSaving<u32> = SpaceSaving::new(256);
    for (i, &k) in keys.iter().enumerate() {
        counter.increment(Tick((i / 4_000) as u64), TagId(k));
        ss.increment(k);
    }
    let mut group = c.benchmark_group("seed_selection_top32");
    group.bench_function("exact_counter", |b| {
        b.iter(|| black_box(counter.top_n(32)));
    });
    group.bench_function("space_saving", |b| {
        b.iter(|| black_box(ss.top_n(32)));
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_top_n);
criterion_main!(benches);
