//! Criterion micro-benchmarks for the shift predictors (supporting
//! experiment P4): per-prediction cost over realistic history lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enblogue::prelude::*;
use enblogue::stats::shift::ShiftScorer;
use std::hint::black_box;

fn history(len: usize) -> Vec<f64> {
    (0..len).map(|i| 0.1 + 0.02 * (i as f64 * 0.7).sin()).collect()
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_one_step");
    let h = history(24);
    for kind in PredictorKind::ablation_set() {
        let predictor = kind.build();
        group.bench_with_input(BenchmarkId::new("predictor", predictor.name()), &h, |b, h| {
            b.iter(|| black_box(predictor.predict(black_box(h))));
        });
    }
    group.finish();
}

fn bench_predict_history_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ewma_history_length");
    for len in [6usize, 24, 96] {
        let h = history(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("len", len), &h, |b, h| {
            let predictor = PredictorKind::Ewma(0.3).build();
            b.iter(|| black_box(predictor.predict(black_box(h))));
        });
    }
    group.finish();
}

fn bench_score_series(c: &mut Criterion) {
    // The per-pair per-tick scoring path as the engine drives it.
    let scorer = ShiftScorer::new(PredictorKind::Ewma(0.3), ErrorNormalization::Absolute);
    let h = history(24);
    let mut group = c.benchmark_group("shift_score");
    group.bench_function("score_one_observation", |b| {
        b.iter(|| black_box(scorer.score(black_box(&h), black_box(0.31))));
    });
    group.finish();
}

criterion_group!(benches, bench_predict, bench_predict_history_length, bench_score_series);
criterion_main!(benches);
