//! Tick-close latency vs shard count (the shard-parallel close ablation).
//!
//! A warm engine (populated window, hundreds of tracked pairs) closes its
//! newest tick under shard counts 1/4/16, serial and shard-parallel. The
//! single-shard serial row is the pre-sharding baseline; rankings are
//! identical in every configuration (pinned by `tests/stage_parity.rs`),
//! so the rows differ only in wall time.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use enblogue::datagen::twitter::{TweetConfig, TweetStream};
use enblogue::prelude::*;
use std::hint::black_box;

fn tweet_docs() -> Vec<Document> {
    TweetStream::generate(&TweetConfig {
        seed: 0x71C_C0DE,
        hours: 2,
        tweets_per_minute: 12,
        n_hashtags: 400,
        n_terms: 300,
        planted_events: 3,
        sigmod_stunt: false,
    })
    .docs
}

fn config(shards: usize, parallel: bool) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::minutely())
        .window_ticks(30)
        .seed_count(64)
        .min_seed_count(3)
        .top_k(10)
        .shards(shards)
        .parallel_close(parallel)
        .build()
        .unwrap()
}

/// A warm engine plus the tick its open window is waiting to close.
fn warm_engine(shards: usize, parallel: bool, docs: &[Document]) -> (EnBlogueEngine, Tick) {
    let mut engine = EnBlogueEngine::new(config(shards, parallel));
    let split = docs.len() - 700;
    engine.run_replay(&docs[..split]);
    engine.process_docs(&docs[split..]);
    let last_tick = TickSpec::minutely().tick_of(docs.last().unwrap().timestamp);
    (engine, last_tick)
}

fn bench_close_by_shards(c: &mut Criterion) {
    let docs = tweet_docs();
    let mut group = c.benchmark_group("tick_close_shards");
    group.sample_size(15);
    for shards in [1usize, 4, 16] {
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "serial" };
            group.bench_with_input(
                BenchmarkId::new(label, shards),
                &(shards, parallel),
                |b, &(shards, parallel)| {
                    b.iter_batched(
                        || warm_engine(shards, parallel, &docs),
                        |(mut engine, tick)| black_box(engine.close_tick(tick)),
                        BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_close_by_shards);
criterion_main!(benches);
