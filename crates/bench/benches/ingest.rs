//! Ingestion throughput through the shard-partitioned `IngestPipeline`.
//!
//! Two sweeps over one NYT replay: worker count (1/2/4/8 at batch 256)
//! and batch size (1/64/512 at the machine's worker default). Rankings
//! are identical in every configuration (pinned by
//! `tests/stage_parity.rs`), so the rows differ only in docs/sec.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use enblogue::datagen::nyt::{NytArchive, NytConfig};
use enblogue::prelude::*;
use std::hint::black_box;

fn archive() -> NytArchive {
    NytArchive::generate(&NytConfig {
        seed: 0x1_E657,
        days: 30,
        docs_per_day: 150,
        n_categories: 16,
        n_descriptors: 120,
        n_entities: 80,
        n_terms: 400,
        historic_events: 3,
    })
}

fn config() -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::daily())
        .window_ticks(7)
        .seed_count(25)
        .min_seed_count(3)
        .top_k(10)
        .build()
        .unwrap()
}

fn bench_ingest_workers(c: &mut Criterion) {
    let archive = archive();
    let mut group = c.benchmark_group("ingest_workers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(archive.docs.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("batch256", workers), &workers, |b, &workers| {
            b.iter_batched(
                || EnBlogueEngine::new(config()),
                |mut engine| {
                    let ingest = IngestConfig { batch_size: 256, queue_depth: 8, workers };
                    black_box(engine.run_replay_ingest(&archive.docs, &ingest))
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_ingest_batch_size(c: &mut Criterion) {
    let archive = archive();
    let mut group = c.benchmark_group("ingest_batch_size");
    group.sample_size(10);
    group.throughput(Throughput::Elements(archive.docs.len() as u64));
    for batch_size in [1usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::new("auto_workers", batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter_batched(
                    || EnBlogueEngine::new(config()),
                    |mut engine| {
                        let ingest = IngestConfig { batch_size, queue_depth: 8, workers: 0 };
                        black_box(engine.run_replay_ingest(&archive.docs, &ingest))
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_workers, bench_ingest_batch_size);
criterion_main!(benches);
