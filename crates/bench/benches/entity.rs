//! Criterion micro-benchmarks for entity tagging (supporting experiment
//! P3): dictionary lookup cost vs dictionary size and text length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enblogue::datagen::entities::EntityUniverse;
use enblogue::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn sample_text(universe: &EntityUniverse, words: usize, seed: u64) -> String {
    let filler =
        ["the", "quick", "report", "says", "that", "today", "nothing", "new", "was", "found"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(words + 4);
    for i in 0..words {
        if i % 40 == 20 {
            out.push(universe.sample(&mut rng).name.clone());
        }
        out.push(filler[rng.gen_range(0..filler.len())].to_string());
    }
    out.join(" ")
}

fn bench_tagging_vs_dict_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("entity_tag_dict_size");
    for n_entities in [1_000usize, 10_000, 100_000] {
        let universe = EntityUniverse::generate(n_entities, 1);
        let tagger = EntityTagger::new(Arc::clone(&universe.gazetteer));
        let text = sample_text(&universe, 400, 2);
        group.throughput(Throughput::Elements(400));
        group.bench_with_input(BenchmarkId::new("entities", n_entities), &n_entities, |b, _| {
            b.iter(|| black_box(tagger.tag_text(black_box(&text))));
        });
    }
    group.finish();
}

fn bench_tagging_vs_text_length(c: &mut Criterion) {
    let universe = EntityUniverse::generate(10_000, 1);
    let tagger = EntityTagger::new(Arc::clone(&universe.gazetteer));
    let mut group = c.benchmark_group("entity_tag_text_length");
    for words in [50usize, 200, 1_000] {
        let text = sample_text(&universe, words, 3);
        group.throughput(Throughput::Elements(words as u64));
        group.bench_with_input(BenchmarkId::new("words", words), &words, |b, _| {
            b.iter(|| black_box(tagger.tag_text(black_box(&text))));
        });
    }
    group.finish();
}

fn bench_tokenize(c: &mut Criterion) {
    let universe = EntityUniverse::generate(100, 1);
    let text = sample_text(&universe, 1_000, 4);
    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("1000_words", |b| {
        b.iter(|| black_box(enblogue::entity::tokenize::tokenize(black_box(&text))));
    });
    group.finish();
}

criterion_group!(benches, bench_tagging_vs_dict_size, bench_tagging_vs_text_length, bench_tokenize);
criterion_main!(benches);
