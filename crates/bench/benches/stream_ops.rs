//! Criterion micro-benchmarks for the stream substrate (supporting
//! experiment P2): executor overhead per event and sharing effects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enblogue::prelude::*;
use enblogue::stream::ops::{CountingOp, PassThrough};
use std::hint::black_box;

fn docs(n: u64) -> Vec<Document> {
    (0..n)
        .map(|i| {
            Document::builder(i, Timestamp::from_secs(i))
                .tags([TagId((i % 50) as u32), TagId((i % 7) as u32 + 100)])
                .build()
        })
        .collect()
}

fn chain_graph(docs: Vec<Document>, depth: usize) -> Graph {
    let mut g = Graph::new(ReplaySource::new(docs, TickSpec::minutely()));
    let mut node = None;
    for i in 0..depth {
        node = Some(g.attach(node, PassThrough::new(format!("stage-{i}"))));
    }
    g.attach(node, CountingOp::new("sink"));
    g
}

fn bench_sync_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_executor");
    let input = docs(10_000);
    group.throughput(Throughput::Elements(input.len() as u64));
    group.sample_size(20);
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, &depth| {
            b.iter_batched(
                || chain_graph(input.clone(), depth),
                |mut g| black_box(run_graph(&mut g).unwrap()),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_threaded_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_executor");
    let input = docs(10_000);
    group.throughput(Throughput::Elements(input.len() as u64));
    group.sample_size(10);
    for depth in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, &depth| {
            b.iter_batched(
                || chain_graph(input.clone(), depth),
                |g| black_box(run_graph_threaded(g, 1024).unwrap()),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_fanout_sharing(c: &mut Criterion) {
    // One shared prefix feeding N sinks vs N private prefixes.
    let input = docs(10_000);
    let mut group = c.benchmark_group("plan_sharing_8_sinks");
    group.throughput(Throughput::Elements(input.len() as u64));
    group.sample_size(10);
    group.bench_function("shared_prefix", |b| {
        b.iter_batched(
            || {
                let mut g = Graph::new(ReplaySource::new(input.clone(), TickSpec::minutely()));
                let prefix = g.attach(None, PassThrough::new("prefix"));
                for i in 0..8 {
                    g.attach(Some(prefix), CountingOp::new(format!("sink-{i}")));
                }
                g
            },
            |mut g| black_box(run_graph(&mut g).unwrap()),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("private_prefixes", |b| {
        b.iter_batched(
            || {
                let mut g = Graph::new(ReplaySource::new(input.clone(), TickSpec::minutely()));
                for i in 0..8 {
                    let prefix = g.attach_unshared(None, PassThrough::new("prefix"));
                    g.attach(Some(prefix), CountingOp::new(format!("sink-{i}")));
                }
                g
            },
            |mut g| black_box(run_graph(&mut g).unwrap()),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_sync_executor, bench_threaded_executor, bench_fanout_sharing);
criterion_main!(benches);
