//! Criterion micro-benchmarks for the EnBlogue engine hot paths
//! (supporting experiment P1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enblogue::datagen::twitter::{TweetConfig, TweetStream};
use enblogue::prelude::*;
use std::hint::black_box;

fn tweet_docs(hours: u64) -> Vec<Document> {
    TweetStream::generate(&TweetConfig {
        seed: 0xB3,
        hours,
        tweets_per_minute: 10,
        n_hashtags: 300,
        n_terms: 300,
        planted_events: 2,
        sigmod_stunt: false,
    })
    .docs
}

fn config(seeds: usize) -> EnBlogueConfig {
    EnBlogueConfig::builder()
        .tick_spec(TickSpec::minutely())
        .window_ticks(30)
        .seed_count(seeds)
        .min_seed_count(3)
        .top_k(10)
        .build()
        .unwrap()
}

/// Full replay throughput at different seed counts.
fn bench_replay(c: &mut Criterion) {
    let docs = tweet_docs(2);
    let mut group = c.benchmark_group("engine_replay");
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.sample_size(10);
    for seeds in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("seeds", seeds), &seeds, |b, &seeds| {
            b.iter(|| {
                let mut engine = EnBlogueEngine::new(config(seeds));
                black_box(engine.run_replay(black_box(&docs)))
            });
        });
    }
    group.finish();
}

/// Per-document ingestion cost (no tick closes).
fn bench_process_doc(c: &mut Criterion) {
    let docs = tweet_docs(1);
    let mut group = c.benchmark_group("engine_process_doc");
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_function("ingest_stream", |b| {
        b.iter(|| {
            let mut engine = EnBlogueEngine::new(config(64));
            for doc in &docs {
                engine.process_doc(black_box(doc));
            }
            black_box(engine.metrics())
        });
    });
    group.finish();
}

/// Tick-close cost with a populated window (the per-tick pair loop).
fn bench_close_tick(c: &mut Criterion) {
    let docs = tweet_docs(2);
    let mut group = c.benchmark_group("engine_close_tick");
    group.sample_size(20);
    group.bench_function("close_after_warm_window", |b| {
        b.iter_batched(
            || {
                let mut engine = EnBlogueEngine::new(config(64));
                // Warm up: replay everything except the last tick's docs.
                let split = docs.len() - 600;
                engine.run_replay(&docs[..split]);
                for doc in &docs[split..] {
                    engine.process_doc(doc);
                }
                let last_tick = TickSpec::minutely().tick_of(docs.last().unwrap().timestamp);
                (engine, last_tick)
            },
            |(mut engine, tick)| black_box(engine.close_tick(tick)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_process_doc, bench_close_tick);
criterion_main!(benches);
