//! Criterion micro-benchmarks for correlation measures and divergences
//! (supporting experiment P9): per-pair evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enblogue::prelude::*;
use enblogue::stats::correlation::PairCounts;
use enblogue::stats::divergence::TermDistribution;
use std::hint::black_box;

fn bench_set_measures(c: &mut Criterion) {
    let counts = PairCounts::new(630, 105, 42, 5_000);
    let mut group = c.benchmark_group("correlation_measures");
    for measure in CorrelationMeasure::ALL {
        group.bench_with_input(
            BenchmarkId::new("measure", measure.name()),
            &counts,
            |b, &counts| {
                b.iter(|| black_box(measure.compute(black_box(counts))));
            },
        );
    }
    group.finish();
}

fn dist(n_terms: u32, total: u64, offset: u32) -> TermDistribution {
    let mut d = TermDistribution::new();
    for i in 0..n_terms {
        d.add(TagId(offset + i), 1 + total / n_terms as u64);
    }
    d
}

fn bench_divergences(c: &mut Criterion) {
    let mut group = c.benchmark_group("term_divergence");
    for vocab in [50u32, 500, 5_000] {
        let p = dist(vocab, 10_000, 0);
        let q = dist(vocab, 10_000, vocab / 2); // half-overlapping support
        group.bench_with_input(BenchmarkId::new("jsd_vocab", vocab), &(p, q), |b, (p, q)| {
            b.iter(|| black_box(p.jensen_shannon(black_box(q))));
        });
    }
    let p = dist(500, 10_000, 0);
    let q = dist(500, 10_000, 250);
    group.bench_function("kl_smoothed_vocab500", |b| {
        b.iter(|| black_box(p.kl_divergence(black_box(&q), 0.5)));
    });
    group.finish();
}

criterion_group!(benches, bench_set_measures, bench_divergences);
criterion_main!(benches);
