//! Offline stub for `crossbeam`.
//!
//! Implements the small slice of `crossbeam::channel` the workspace uses
//! (bounded MPSC channels between operator threads) on top of
//! `std::sync::mpsc::sync_channel`. Single-consumer is sufficient: every
//! receiver is owned by exactly one operator thread.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// The receiver hung up; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel; clonable.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }

        /// Enqueues without blocking, reporting a full queue instead of
        /// waiting (used for backpressure accounting: callers count
        /// [`TrySendError::Full`] before falling back to a blocking send).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                std::sync::mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                std::sync::mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// A bounded FIFO channel with capacity `cap` (min 1: a rendezvous
    /// channel is never what the executors want).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_send_recv_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
        });
        h.join().unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err(), "senders dropped");
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Disconnected(3)));
    }
}
