//! Offline stub for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and result
//! types for downstream consumers, but never serialises anything in-tree
//! (experiment output is hand-rendered text/JSON). With no crates.io
//! access, this stub keeps those derives compiling: the traits are empty
//! markers with blanket impls, and the derive macros (re-exported from the
//! sibling `serde_derive` stub) expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
