//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; try another input.
    Reject,
    /// A property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Deterministic xoshiro256** generator used for input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// [`run`] with an explicit case count (`0` = use the default).
pub fn run_cases<F>(name: &str, cases: usize, property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_inner(name, if cases == 0 { case_count() } else { cases }, property)
}

/// Runs `property` over deterministically generated cases.
///
/// The per-test seed is derived from `name`, so every test has its own
/// stable input stream; a failure reports the case index and seed for
/// replay. Rejected cases (failed `prop_assume!`) are retried and do not
/// count toward the case budget, up to a global rejection cap.
pub fn run<F>(name: &str, property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_inner(name, case_count(), property)
}

fn run_inner<F>(name: &str, cases: usize, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    let mut rejected = 0usize;
    let max_rejects = cases * 64;
    let mut case = 0usize;
    let mut stream = 0u64;
    while case < cases {
        let mut rng = TestRng::seed_from_u64(seed ^ stream);
        stream += 1;
        match property(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!("proptest stub: `{name}` rejected {rejected} inputs; assumptions too strict");
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest stub: `{name}` failed at case {case} (seed {:#x}):\n{message}",
                    seed ^ (stream - 1)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert!(a.unit_f64() < 1.0);
    }

    #[test]
    fn runner_counts_only_accepted_cases() {
        let mut accepted = 0;
        let mut seen = 0;
        run("runner_counts_only_accepted_cases", |rng| {
            seen += 1;
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::Reject);
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, case_count());
        assert!(seen >= accepted);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        run("failures_panic_with_context", |_| Err(TestCaseError::fail("boom".into())));
    }
}
