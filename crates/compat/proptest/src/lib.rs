//! Offline stub for `proptest`.
//!
//! A deterministic mini property-testing harness implementing the subset of
//! the proptest API this workspace's `tests/prop_*.rs` files use: the
//! [`proptest!`] macro, `prop_assert*`/`prop_assume!`, range and tuple
//! strategies, `prop_map`, `collection::{vec, hash_set}`, `sample::select`,
//! and a loose interpretation of string-regex strategies. There is **no
//! shrinking**: a failing case panics with its seed and case index so it
//! can be replayed (`PROPTEST_CASES` overrides the case count).

pub mod strategy;
pub mod test_runner;

pub use strategy::{collection, sample, Just, Strategy};

/// Module-path-compatible re-exports (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::strategy::collection;
    pub use crate::strategy::sample;
}

/// The names tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{collection, sample, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written inside the macro, as in real
/// proptest) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl! { cases = ($cfg).cases; $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl! { cases = 0; $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`]; `cases = 0` means "use the
/// runner default".
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), $cases, |__rng| {
                    $(let $p = $crate::Strategy::generate(&$strat, __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )+
    };
}

/// Skips the current case when `cond` is false (does not count as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}
