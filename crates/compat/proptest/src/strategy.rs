//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Generates random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy over empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u128 + 1;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Loose string-regex strategy.
///
/// Real proptest compiles the pattern; this stub only honours the shapes
/// used in-tree: an optional trailing `{m,n}` repetition count, with the
/// body treated as "any printable char" (`\PC`-style). Anything else
/// degrades to alphanumeric noise — fine for fuzzing tokenisers, wrong for
/// tests that rely on precise pattern structure (none do here).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 20));
        let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
        // Mix of ASCII, punctuation, whitespace and multi-byte chars so
        // char-boundary bugs get exercised.
        const POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', ' ', '-', '_', '.', ',', '!',
            '#', '@', 'é', 'ß', 'λ', '中', '🌋', '∂', 'ñ',
        ];
        (0..len).map(|_| POOL[(rng.next_u64() as usize) % POOL.len()]).collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Collection size specifications accepted by [`collection`] strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// `Vec` and `HashSet` strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for hash sets whose elements come from `element`.
    ///
    /// Sizes are best-effort: duplicate draws are retried a bounded number
    /// of times, so the set may come out smaller than requested when the
    /// element domain is tiny.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut super::TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::Strategy;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut super::TestRng) -> T {
            self.values[(rng.next_u64() as usize) % self.values.len()].clone()
        }
    }
}

// Re-exported here so `use proptest::strategy::*`-style paths resolve.
pub use collection::{HashSetStrategy, VecStrategy};
