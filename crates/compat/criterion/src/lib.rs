//! Offline stub for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the slice of the
//! criterion API the `benches/` targets use: groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched`, throughput annotation and the
//! `criterion_group!`/`criterion_main!` macros. No statistics beyond
//! mean-of-samples, no HTML reports — results are printed one line per
//! benchmark. `ENBLOGUE_BENCH_MS` tunes the per-sample time budget.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup cost is amortised (accepted, ignored: every batch is
/// one routine call here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id rendered as just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let ms =
            std::env::var("ENBLOGUE_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(50u64);
        Bencher { samples: Vec::new(), sample_size, budget: Duration::from_millis(ms) }
    }

    /// Times `routine`, repeating until the sample budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named set of related benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.criterion.report(&format!("{}/{}", self.name, id.id), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.criterion.report(&format!("{}/{}", self.name, id.id), &bencher, self.throughput);
        self
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        self.report(id, &bencher, None);
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
        let mean = bencher.mean();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("bench {id:<48} {:>12.3?} /iter ({} samples){rate}", mean, bencher.samples.len());
    }
}

/// Declares a benchmark group function calling each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench-target `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("p", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |n| black_box(n * 2), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
        c.bench_function("solo", |b| b.iter(|| black_box(1)));
    }
}
