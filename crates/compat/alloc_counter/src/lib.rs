//! A counting global-allocator shim for pinning allocation-free hot paths.
//!
//! Wraps the system allocator and counts every allocation, reallocation
//! and deallocation in process-global atomics. Install it as the global
//! allocator of a test binary and assert that a hot path performs zero
//! allocations once warm:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;
//!
//! let (result, allocs) = alloc_counter::measure(|| hot_path());
//! assert_eq!(allocs, 0, "steady state must not allocate");
//! ```
//!
//! The counters are process-global, so measurements are only meaningful
//! when nothing else allocates concurrently — put the measured section in
//! a test binary with a single `#[test]`, or serialize tests that measure.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] forwarding to [`System`] while counting every
/// allocation event (reallocations count as allocations).
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to the system allocator; the
// counter updates are lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events (allocations + reallocations) since process start.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deallocation events since process start.
pub fn deallocation_count() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator since process start.
pub fn bytes_allocated() -> u64 {
    BYTES_ALLOCATED.load(Ordering::Relaxed)
}

/// Runs `f`, returning its result and the number of allocation events it
/// performed (on this or any thread — see the crate docs on isolation).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocation_count();
    let result = f();
    (result, allocation_count() - before)
}

#[cfg(test)]
mod tests {
    // NOTE: the shim is *not* installed as this library's own global
    // allocator (tests here run under the default one), so these tests
    // only cover the counter arithmetic via the public accessors.
    use super::*;

    #[test]
    fn measure_reports_zero_without_the_shim_installed() {
        // Without `#[global_allocator]` the counters never move; measure
        // must still be well-formed and return the closure's result.
        let (value, allocs) = measure(|| 6 * 7);
        assert_eq!(value, 42);
        assert_eq!(allocs, 0);
        assert_eq!(deallocation_count(), 0);
        assert_eq!(bytes_allocated(), 0);
    }
}
