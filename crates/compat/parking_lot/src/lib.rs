//! Offline stub for `parking_lot`.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s API shape: `lock()` /
//! `read()` / `write()` return guards directly instead of `Result`s.
//! Poisoning is ignored (a poisoned lock yields its inner guard), matching
//! parking_lot's poison-free semantics closely enough for this workspace.

use std::sync::PoisonError;

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock; `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
