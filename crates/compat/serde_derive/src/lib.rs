//! Offline stub for `serde_derive`.
//!
//! The build environment has no crates.io access; the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as inert markers (nothing is ever
//! serialised at runtime), so the derives expand to nothing. The blanket
//! impls in the sibling `serde` stub keep any `T: Serialize` bounds
//! satisfied.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
