//! Offline stub for `rand`.
//!
//! Implements the subset of the `rand 0.8` API the datagen and bench
//! crates use — `StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range`
//! over integer/float ranges — on a xoshiro256** generator. Deterministic
//! across platforms and runs, which is all the synthetic workloads need;
//! no claim of statistical quality beyond that.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from ranges (subset of
/// `rand::distributions::uniform::SampleUniform`).
///
/// The blanket [`SampleRange`] impls below go through this trait — one
/// generic impl per range shape, exactly like real rand, so integer
/// literals in `gen_range(5..=12)` unify with the surrounding expression
/// instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range on empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "gen_range on empty range");
        if lo == hi {
            return lo;
        }
        // For non-degenerate float ranges the closed upper endpoint has
        // measure zero; the half-open draw is distributionally identical
        // and avoids bit-pattern arithmetic (which walks the wrong way
        // for negative `hi`).
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Raw 64-bit generator core (object-safe slice of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| StdRng::seed_from_u64(42).gen_range(0..100)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(same, other, "different seeds diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(3i64..=4);
            assert!((3..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn inclusive_float_ranges_handle_negatives_and_degenerates() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(-0.5f64..=-0.5), -0.5);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..=-0.5);
            assert!((-1.0..=-0.5).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 hits: {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
