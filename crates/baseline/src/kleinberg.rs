//! Kleinberg's two-state burst automaton (KDD 2002), batched form.
//!
//! The canonical burst-detection algorithm the trend-detection literature
//! (including TwitterMonitor) builds on: a hidden two-state automaton
//! emits events at base rate `p0` in the quiet state and `s·p0` in the
//! burst state; switching into the burst state costs `gamma`. The optimal
//! state sequence for an observed count series is computed by Viterbi
//! dynamic programming over the batched (enumerating) model: in batch `t`
//! with `d_t` relevant events out of `n_t` total, state `i ∈ {0, 1}` has
//! cost `−ln Binomial(n_t, d_t; p_i)`.
//!
//! Used as a second, stronger per-tag baseline in experiment P7: unlike
//! the mean+γσ gate it has a principled probabilistic footing — and it is
//! *equally blind* to correlation shifts that leave individual rates flat,
//! which is the point the comparison makes.

/// Batched two-state Kleinberg model.
#[derive(Debug, Clone)]
pub struct KleinbergConfig {
    /// Rate multiplier of the burst state (`s > 1`).
    pub s: f64,
    /// Cost of entering the burst state (per transition, in nats).
    pub gamma: f64,
}

impl Default for KleinbergConfig {
    fn default() -> Self {
        KleinbergConfig { s: 2.0, gamma: 1.0 }
    }
}

/// One detected burst interval (batch indices, inclusive start, exclusive
/// end) with its weight (total cost saved vs staying in the quiet state).
#[derive(Debug, Clone, PartialEq)]
pub struct Burst {
    /// First batch inside the burst.
    pub start: usize,
    /// One past the last batch inside the burst.
    pub end: usize,
    /// Burst weight: accumulated log-likelihood advantage of the burst
    /// state over the quiet state across the interval.
    pub weight: f64,
}

/// Detects burst intervals in a batched count series.
///
/// * `relevant` — per-batch counts of the monitored event (e.g. documents
///   carrying one tag),
/// * `totals` — per-batch totals (all documents).
///
/// Returns maximal burst intervals, in order.
///
/// # Panics
/// Panics if the slices differ in length, if any `relevant > total`, or
/// on a degenerate configuration (`s <= 1`, `gamma < 0`).
pub fn detect_bursts(relevant: &[u64], totals: &[u64], config: &KleinbergConfig) -> Vec<Burst> {
    assert_eq!(relevant.len(), totals.len(), "series must align");
    assert!(config.s > 1.0, "burst state must be faster than the base state");
    assert!(config.gamma >= 0.0, "transition cost cannot be negative");
    let n = relevant.len();
    if n == 0 {
        return Vec::new();
    }
    let total_relevant: u64 = relevant.iter().sum();
    let total_all: u64 = totals.iter().sum();
    if total_relevant == 0 || total_all == 0 {
        return Vec::new();
    }
    for (&d, &t) in relevant.iter().zip(totals) {
        assert!(d <= t, "relevant count exceeds total");
    }
    // Base rate p0 = overall share; burst rate p1 = s·p0 capped below 1.
    let p0 = (total_relevant as f64 / total_all as f64).clamp(1e-12, 1.0 - 1e-12);
    let p1 = (config.s * p0).clamp(p0 + 1e-12, 1.0 - 1e-9);

    // Per-batch emission costs: −[d·ln p + (n−d)·ln(1−p)] (the binomial
    // coefficient is state-independent and cancels).
    let cost = |d: u64, t: u64, p: f64| -> f64 {
        let d = d as f64;
        let t = t as f64;
        -(d * p.ln() + (t - d) * (1.0 - p).ln())
    };

    // Viterbi over 2 states; transition cost gamma only for 0 → 1.
    let mut cost0 = cost(relevant[0], totals[0], p0);
    let mut cost1 = cost(relevant[0], totals[0], p1) + config.gamma;
    // Backpointers: prev[t][state].
    let mut prev: Vec<[u8; 2]> = Vec::with_capacity(n);
    prev.push([0, 0]);
    for t in 1..n {
        let e0 = cost(relevant[t], totals[t], p0);
        let e1 = cost(relevant[t], totals[t], p1);
        // Into state 0: from 0 (free) or from 1 (free).
        let (from0, c_into0) = if cost0 <= cost1 { (0u8, cost0) } else { (1u8, cost1) };
        // Into state 1: from 1 (free) or from 0 (pay gamma).
        let (from1, c_into1) =
            if cost1 <= cost0 + config.gamma { (1u8, cost1) } else { (0u8, cost0 + config.gamma) };
        prev.push([from0, from1]);
        cost0 = c_into0 + e0;
        cost1 = c_into1 + e1;
    }
    // Backtrack.
    let mut states = vec![0u8; n];
    states[n - 1] = if cost1 < cost0 { 1 } else { 0 };
    for t in (1..n).rev() {
        states[t - 1] = prev[t][states[t] as usize];
    }

    // Extract maximal burst intervals with their weights.
    let mut bursts = Vec::new();
    let mut t = 0;
    while t < n {
        if states[t] == 1 {
            let start = t;
            let mut weight = 0.0;
            while t < n && states[t] == 1 {
                weight += cost(relevant[t], totals[t], p0) - cost(relevant[t], totals[t], p1);
                t += 1;
            }
            bursts.push(Burst { start, end: t, weight: weight.max(0.0) });
        } else {
            t += 1;
        }
    }
    bursts
}

/// Whether batch `index` lies inside any of `bursts`.
pub fn in_burst(bursts: &[Burst], index: usize) -> bool {
    bursts.iter().any(|b| b.start <= index && index < b.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> KleinbergConfig {
        KleinbergConfig { s: 3.0, gamma: 1.0 }
    }

    #[test]
    fn flat_series_has_no_bursts() {
        let relevant = vec![5u64; 30];
        let totals = vec![100u64; 30];
        assert!(detect_bursts(&relevant, &totals, &config()).is_empty());
    }

    #[test]
    fn clear_burst_is_found_with_correct_extent() {
        let mut relevant = vec![5u64; 30];
        for r in relevant.iter_mut().take(20).skip(10) {
            *r = 40;
        }
        let totals = vec![100u64; 30];
        let bursts = detect_bursts(&relevant, &totals, &config());
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        let b = &bursts[0];
        assert!(b.start >= 9 && b.start <= 11, "start {b:?}");
        assert!(b.end >= 19 && b.end <= 21, "end {b:?}");
        assert!(b.weight > 0.0);
        assert!(in_burst(&bursts, 15));
        assert!(!in_burst(&bursts, 5));
    }

    #[test]
    fn two_separate_bursts() {
        let mut relevant = vec![4u64; 40];
        for r in relevant.iter_mut().take(10).skip(5) {
            *r = 30;
        }
        for r in relevant.iter_mut().take(32).skip(25) {
            *r = 30;
        }
        let totals = vec![100u64; 40];
        let bursts = detect_bursts(&relevant, &totals, &config());
        assert_eq!(bursts.len(), 2, "{bursts:?}");
        assert!(bursts[0].end <= bursts[1].start);
    }

    #[test]
    fn gamma_suppresses_marginal_blips() {
        let mut relevant = vec![5u64; 30];
        relevant[15] = 9; // less than the s=3 burst rate
        let totals = vec![100u64; 30];
        let strict = KleinbergConfig { s: 3.0, gamma: 5.0 };
        assert!(detect_bursts(&relevant, &totals, &strict).is_empty());
    }

    #[test]
    fn higher_weight_for_stronger_bursts() {
        let totals = vec![100u64; 20];
        let mut weak = vec![5u64; 20];
        let mut strong = vec![5u64; 20];
        for i in 8..12 {
            weak[i] = 18;
            strong[i] = 50;
        }
        let w = detect_bursts(&weak, &totals, &config());
        let s = detect_bursts(&strong, &totals, &config());
        assert!(!w.is_empty() && !s.is_empty());
        assert!(s[0].weight > w[0].weight);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(detect_bursts(&[], &[], &config()).is_empty());
        assert!(detect_bursts(&[0, 0], &[10, 10], &config()).is_empty(), "no events at all");
        // All mass in one batch of a two-batch series is a burst there.
        let bursts = detect_bursts(&[0, 30], &[100, 100], &config());
        assert!(in_burst(&bursts, 1));
        assert!(!in_burst(&bursts, 0));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = detect_bursts(&[1, 2], &[10], &config());
    }

    #[test]
    #[should_panic(expected = "faster than the base state")]
    fn s_must_exceed_one() {
        let _ = detect_bursts(&[1], &[10], &KleinbergConfig { s: 1.0, gamma: 1.0 });
    }
}
