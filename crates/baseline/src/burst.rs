//! Per-tag burst detection over tick-aligned arrival counts.

use crate::grouping::group_bursty_tags;
use enblogue_types::{Document, FxHashMap, TagId, TagPair, Tick};
use enblogue_window::{SlidingStats, WindowedCounter};

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Ticks of history used for each tag's mean/stddev.
    pub history_ticks: usize,
    /// Ticks of the co-occurrence window used for grouping.
    pub window_ticks: usize,
    /// Burst threshold: count > mean + gamma·stddev.
    pub gamma: f64,
    /// Minimum per-tick count for a burst (suppresses 0→1 "bursts").
    pub min_support: u64,
    /// Jaccard threshold for putting two bursty tags in one trend.
    pub group_jaccard: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            history_ticks: 24,
            window_ticks: 6,
            gamma: 3.0,
            min_support: 5,
            group_jaccard: 0.1,
        }
    }
}

/// A bursting tag with its burst strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstInfo {
    /// The bursting tag.
    pub tag: TagId,
    /// Z-score of the current tick count against the tag's history.
    pub zscore: f64,
    /// The current tick count.
    pub count: u64,
}

/// One detected trend: a group of co-occurring bursty tags.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Member tags, sorted.
    pub tags: Vec<TagId>,
    /// Aggregate strength (sum of member z-scores).
    pub score: f64,
}

impl Trend {
    /// All tag pairs covered by this trend (a trend of one tag covers no
    /// pair). Used to compare against EnBlogue's pair-level ground truth.
    pub fn covered_pairs(&self) -> Vec<TagPair> {
        let mut pairs = Vec::new();
        for i in 0..self.tags.len() {
            for j in i + 1..self.tags.len() {
                pairs.push(TagPair::new(self.tags[i], self.tags[j]));
            }
        }
        pairs
    }
}

/// The TwitterMonitor-style detector.
///
/// Feed documents with [`BurstBaseline::observe_doc`]; close each tick
/// with [`BurstBaseline::close_tick`], which returns the trends detected
/// at that boundary, strongest first.
pub struct BurstBaseline {
    config: BaselineConfig,
    /// Per-tag count in the open tick.
    current: FxHashMap<TagId, u64>,
    /// Per-tag history statistics over closed ticks.
    history: FxHashMap<TagId, SlidingStats>,
    /// Tag counts over the grouping window (for Jaccard denominators).
    window_counts: WindowedCounter<TagId>,
    /// Pair co-occurrence counts over the grouping window.
    ///
    /// Key: packed [`TagPair`]. Co-occurrence is only recorded between tags
    /// that appear together in a document, which is sparse in practice; the
    /// windowed counter evicts stale pairs automatically.
    window_pairs: WindowedCounter<u64>,
    open_tick: Option<Tick>,
}

impl BurstBaseline {
    /// A detector with the given configuration.
    ///
    /// # Panics
    /// Panics on degenerate window sizes.
    pub fn new(config: BaselineConfig) -> Self {
        assert!(config.history_ticks >= 2, "history must span at least two ticks");
        assert!(config.window_ticks >= 1, "grouping window must be at least one tick");
        BurstBaseline {
            window_counts: WindowedCounter::new(config.window_ticks),
            window_pairs: WindowedCounter::new(config.window_ticks),
            config,
            current: FxHashMap::default(),
            history: FxHashMap::default(),
            open_tick: None,
        }
    }

    /// Accumulates one document into the open tick.
    ///
    /// Tags and entities are treated uniformly (the baseline monitors
    /// keywords; EnBlogue's combined annotation view is the fair input).
    pub fn observe_doc(&mut self, doc: &Document) {
        let tick = self.open_tick.unwrap_or(Tick::ZERO);
        let annotations: Vec<TagId> = doc.annotations().collect();
        for &tag in &annotations {
            *self.current.entry(tag).or_insert(0) += 1;
            self.window_counts.increment(tick, tag);
        }
        for i in 0..annotations.len() {
            for j in i + 1..annotations.len() {
                let pair = TagPair::new(annotations[i], annotations[j]);
                self.window_pairs.increment(tick, pair.packed());
            }
        }
    }

    /// Closes `tick`, returning detected trends (strongest first) and
    /// advancing all windows.
    pub fn close_tick(&mut self, tick: Tick) -> Vec<Trend> {
        // 1. Burst detection against each tag's own history.
        let mut bursting: Vec<BurstInfo> = Vec::new();
        for (&tag, &count) in &self.current {
            if count < self.config.min_support {
                continue;
            }
            let stats = self.history.get(&tag);
            let (mean, sd, n) = match stats {
                Some(s) => (s.mean(), s.stddev(), s.len()),
                None => (0.0, 0.0, 0),
            };
            // A tag with no history cannot burst: there is nothing to
            // deviate from (mirrors TwitterMonitor's warm-up behaviour).
            if n < 2 {
                continue;
            }
            let threshold = mean + self.config.gamma * sd;
            if (count as f64) > threshold && count as f64 > mean {
                let z = if sd > f64::EPSILON {
                    (count as f64 - mean) / sd
                } else {
                    // Deviation from a perfectly flat history: scale by the
                    // relative jump so scores stay comparable.
                    (count as f64 - mean) / mean.max(1.0)
                };
                bursting.push(BurstInfo { tag, zscore: z, count });
            }
        }

        // 2. Update histories with the closing tick (tags absent this tick
        //    contribute zero to their history).
        let mut seen: Vec<TagId> = self.current.keys().copied().collect();
        seen.sort_unstable();
        for tag in seen {
            let count = self.current[&tag];
            self.history
                .entry(tag)
                .or_insert_with(|| SlidingStats::new(self.config.history_ticks))
                .push(count as f64);
        }
        // Tags with history but no arrivals this tick get a zero sample.
        let absent: Vec<TagId> =
            self.history.keys().filter(|t| !self.current.contains_key(t)).copied().collect();
        for tag in absent {
            self.history.get_mut(&tag).expect("key from same map").push(0.0);
        }
        self.current.clear();

        // 3. Group bursty tags by windowed co-occurrence.
        let trends = group_bursty_tags(
            &bursting,
            &self.window_counts,
            &self.window_pairs,
            self.config.group_jaccard,
        );

        // 4. Advance windows past the closed tick.
        self.open_tick = Some(tick.next());
        self.window_counts.advance_to(tick.next());
        self.window_pairs.advance_to(tick.next());
        trends
    }

    /// Number of tags currently carrying history state.
    pub fn tracked_tags(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enblogue_types::{Document, Timestamp};

    fn doc(id: u64, tags: &[u32]) -> Document {
        Document::builder(id, Timestamp::ZERO).tags(tags.iter().map(|&t| TagId(t))).build()
    }

    fn feed_tick(b: &mut BurstBaseline, tick: u64, docs: &[&[u32]]) -> Vec<Trend> {
        for (i, tags) in docs.iter().enumerate() {
            b.observe_doc(&doc(tick * 1000 + i as u64, tags));
        }
        b.close_tick(Tick(tick))
    }

    fn config() -> BaselineConfig {
        BaselineConfig {
            history_ticks: 8,
            window_ticks: 4,
            gamma: 2.0,
            min_support: 3,
            group_jaccard: 0.2,
        }
    }

    #[test]
    fn steady_rate_never_bursts() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..20 {
            let trends = feed_tick(&mut b, tick, &[&[1], &[1], &[1], &[1]]);
            assert!(trends.is_empty(), "steady tag burst at tick {tick}");
        }
    }

    #[test]
    fn sudden_spike_bursts() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..10 {
            feed_tick(&mut b, tick, &[&[1], &[1], &[1], &[1]]);
        }
        // Tick 10: tag 1 spikes from 4/tick to 20/tick.
        let docs: Vec<&[u32]> = (0..20).map(|_| &[1u32][..]).collect();
        let trends = feed_tick(&mut b, 10, &docs);
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].tags, vec![TagId(1)]);
        assert!(trends[0].score > 2.0);
    }

    #[test]
    fn warmup_does_not_burst() {
        let mut b = BurstBaseline::new(config());
        // First-ever tick with large counts: no history, no burst.
        let docs: Vec<&[u32]> = (0..20).map(|_| &[1u32][..]).collect();
        let trends = feed_tick(&mut b, 0, &docs);
        assert!(trends.is_empty());
    }

    #[test]
    fn min_support_suppresses_tiny_bursts() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..10 {
            feed_tick(&mut b, tick, &[&[1]]);
        }
        // 1 → 2 docs is a big relative jump but below min_support = 3.
        let trends = feed_tick(&mut b, 10, &[&[1], &[1]]);
        assert!(trends.is_empty());
    }

    #[test]
    fn co_bursting_co_occurring_tags_group() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..10 {
            feed_tick(&mut b, tick, &[&[1], &[2], &[1], &[2]]);
        }
        // Both tags spike *in the same documents*.
        let docs: Vec<&[u32]> = (0..15).map(|_| &[1u32, 2u32][..]).collect();
        let trends = feed_tick(&mut b, 10, &docs);
        assert_eq!(trends.len(), 1, "one merged trend, got {trends:?}");
        assert_eq!(trends[0].tags, vec![TagId(1), TagId(2)]);
        assert_eq!(trends[0].covered_pairs(), vec![TagPair::new(TagId(1), TagId(2))]);
    }

    #[test]
    fn co_bursting_unrelated_tags_stay_separate() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..10 {
            feed_tick(&mut b, tick, &[&[1], &[2], &[1], &[2]]);
        }
        // Both spike but never share a document.
        let mut docs: Vec<&[u32]> = Vec::new();
        for _ in 0..10 {
            docs.push(&[1]);
            docs.push(&[2]);
        }
        let trends = feed_tick(&mut b, 10, &docs);
        assert_eq!(trends.len(), 2, "unrelated bursts must not merge: {trends:?}");
        for t in &trends {
            assert_eq!(t.tags.len(), 1);
            assert!(t.covered_pairs().is_empty());
        }
    }

    #[test]
    fn figure1_blind_spot_intersection_growth_without_burst() {
        // The paper's core claim: growth in the *intersection* with flat
        // individual rates is invisible to burst detection.
        let mut b = BurstBaseline::new(config());
        // Tags 1 and 2 each appear in 6 docs/tick, never together.
        for tick in 0..10 {
            let mut docs: Vec<&[u32]> = Vec::new();
            for _ in 0..6 {
                docs.push(&[1]);
                docs.push(&[2]);
            }
            feed_tick(&mut b, tick, &docs);
        }
        // Now the same 6+6 volume, but 5 of each are the same documents:
        // intersection jumps from 0 to 5 while per-tag counts stay 6.
        for tick in 10..14 {
            let mut docs: Vec<&[u32]> = vec![&[1], &[2]];
            for _ in 0..5 {
                docs.push(&[1, 2]);
            }
            let trends = feed_tick(&mut b, tick, &docs);
            assert!(
                trends.is_empty(),
                "baseline must NOT see the correlation shift at tick {tick}: {trends:?}"
            );
        }
    }

    #[test]
    fn trends_ranked_by_score() {
        let mut b = BurstBaseline::new(config());
        for tick in 0..10 {
            feed_tick(&mut b, tick, &[&[1], &[1], &[2], &[2]]);
        }
        // Tag 1 spikes harder than tag 2; both burst, disjoint docs.
        let mut docs: Vec<&[u32]> = Vec::new();
        for _ in 0..30 {
            docs.push(&[1]);
        }
        for _ in 0..8 {
            docs.push(&[2]);
        }
        let trends = feed_tick(&mut b, 10, &docs);
        assert_eq!(trends.len(), 2);
        assert_eq!(trends[0].tags, vec![TagId(1)], "stronger burst first");
        assert!(trends[0].score > trends[1].score);
    }

    #[test]
    fn entities_count_as_keywords() {
        let mut b = BurstBaseline::new(config());
        let d = Document::builder(1, Timestamp::ZERO).tag(TagId(1)).entity(TagId(100)).build();
        b.observe_doc(&d);
        b.close_tick(Tick(0));
        assert_eq!(b.tracked_tags(), 2);
    }
}
