//! TwitterMonitor-style burst-detection baseline.
//!
//! The paper positions EnBlogue against Mathioudakis & Koudas' Twitter
//! Monitor (SIGMOD 2010): "their Twitter Monitor system discovers topic
//! trends in tweets, by detecting bursts of tags or tag groups. Tag groups
//! are formed by clustering co-occurring tags … unlike looking solely for
//! bursty tags, we detect shifts in tag correlations as they dynamically
//! arise."
//!
//! This crate implements that published recipe faithfully enough to serve
//! as the comparator in experiments F1 and P7:
//!
//! 1. **Burst detection** ([`burst`]) — a tag bursts when its per-tick
//!    arrival count exceeds `mean + γ·stddev` of its own history,
//! 2. **Grouping** ([`grouping`]) — concurrent bursty tags are clustered
//!    by windowed co-occurrence into trends,
//! 3. **Kleinberg automaton** ([`kleinberg`]) — the principled two-state
//!    burst model (KDD 2002) underlying the trend-detection literature,
//!    as a second, stronger per-tag detector.
//!
//! The crucial behavioural difference the experiments expose: a pair whose
//! *intersection* grows while neither member bursts individually (Figure 1)
//! is invisible to both baselines, and a popular tag's solo peaks raise
//! false trends that EnBlogue's correlation shifts ignore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod grouping;
pub mod kleinberg;

pub use burst::{BaselineConfig, BurstBaseline, BurstInfo, Trend};
pub use kleinberg::{detect_bursts, Burst, KleinbergConfig};
